//! k-core decomposition (Matula–Beck / Batagelj–Zaveršnik peeling).
//!
//! The core number of a node is the largest `k` such that the node belongs
//! to a subgraph of minimum degree `k`. Core numbers summarize the density
//! hierarchy of a complex network and are a standard companion statistic to
//! community structure (dense communities live in high cores; the hubs of
//! scale-free instances concentrate there).

use crate::graph::{Graph, Node};

/// Result of a k-core decomposition.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// Core number per node.
    pub core: Vec<u32>,
    /// The degeneracy: the maximum core number (0 for edgeless graphs).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// Runs the linear-time peeling algorithm (self-loops ignored).
    pub fn run(g: &Graph) -> Self {
        let n = g.node_count();
        if n == 0 {
            return Self {
                core: Vec::new(),
                degeneracy: 0,
            };
        }
        // simple degrees without self-loops
        let mut degree: Vec<u32> = (0..n as Node)
            .map(|u| g.neighbors(u).iter().filter(|&&v| v != u).count() as u32) // audit:allow(lossy-cast): bounded by the u32 node id space
            .collect();
        let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

        // bucket sort nodes by degree
        let mut bin = vec![0usize; max_degree + 2];
        for &d in &degree {
            bin[d as usize] += 1;
        }
        let mut start = 0;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        let mut pos = vec![0usize; n];
        let mut vert = vec![0 as Node; n];
        {
            let mut cursor = bin.clone();
            for v in 0..n {
                let d = degree[v] as usize;
                pos[v] = cursor[d];
                vert[cursor[d]] = v as Node;
                cursor[d] += 1;
            }
        }

        // peel in non-decreasing degree order
        let mut core = vec![0u32; n];
        for i in 0..n {
            let v = vert[i];
            core[v as usize] = degree[v as usize];
            for &u in g.neighbors(v) {
                if u == v {
                    continue;
                }
                let du = degree[u as usize];
                if du > degree[v as usize] {
                    // move u one bucket down: swap with the first node of
                    // its bucket, then shrink the bucket
                    let pu = pos[u as usize];
                    let bucket_start = bin[du as usize];
                    let w = vert[bucket_start];
                    if u != w {
                        vert[pu] = w;
                        vert[bucket_start] = u;
                        pos[u as usize] = bucket_start;
                        pos[w as usize] = pu;
                    }
                    bin[du as usize] += 1;
                    degree[u as usize] -= 1;
                }
            }
        }
        let degeneracy = core.iter().copied().max().unwrap_or(0);
        Self { core, degeneracy }
    }

    /// Nodes with core number at least `k`.
    pub fn k_core_members(&self, k: u32) -> Vec<Node> {
        self.core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as Node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn clique_core_numbers() {
        // K5: every node has core number 4
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_unweighted_edge(u, v);
            }
        }
        let d = CoreDecomposition::run(&b.build());
        assert_eq!(d.degeneracy, 4);
        assert!(d.core.iter().all(|&c| c == 4));
    }

    #[test]
    fn path_is_one_core() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = CoreDecomposition::run(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_pendant() {
        // triangle + pendant: triangle in 2-core, pendant in 1-core
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let d = CoreDecomposition::run(&g);
        assert_eq!(d.core, vec![2, 2, 2, 1]);
        assert_eq!(d.k_core_members(2), vec![0, 1, 2]);
        assert_eq!(d.k_core_members(3), Vec::<Node>::new());
    }

    #[test]
    fn star_is_one_core() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let d = CoreDecomposition::run(&g);
        assert_eq!(d.degeneracy, 1);
        assert_eq!(d.core[0], 1); // the hub peels down to 1
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        let d = CoreDecomposition::run(&g);
        assert_eq!(d.core[2], 0);
        assert_eq!(d.k_core_members(0).len(), 3);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 3.0);
        b.add_edge(0, 1, 1.0);
        let d = CoreDecomposition::run(&b.build());
        assert_eq!(d.core, vec![1, 1]);
    }

    #[test]
    fn empty_graph() {
        let d = CoreDecomposition::run(&GraphBuilder::new(0).build());
        assert_eq!(d.degeneracy, 0);
        assert!(d.core.is_empty());
    }

    #[test]
    fn two_cliques_bridge() {
        // two K4s joined by one edge: all clique nodes 3-core
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_unweighted_edge(base + i, base + j);
                }
            }
        }
        b.add_unweighted_edge(3, 4);
        let d = CoreDecomposition::run(&b.build());
        assert_eq!(d.degeneracy, 3);
        assert!(d.core.iter().all(|&c| c == 3));
    }

    #[test]
    fn agrees_with_naive_peeling_on_random_graph() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 120;
        let mut b = GraphBuilder::new(n);
        for _ in 0..500 {
            let u = rng.gen_range(0..n as Node);
            let v = rng.gen_range(0..n as Node);
            if u != v {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.build();
        let fast = CoreDecomposition::run(&g);

        // naive: repeatedly remove min-degree nodes
        let mut alive = vec![true; n];
        let mut deg: Vec<i64> = (0..n as Node)
            .map(|u| g.neighbors(u).iter().filter(|&&v| v != u).count() as i64)
            .collect();
        let mut naive = vec![0u32; n];
        let mut k = 0i64;
        for _ in 0..n {
            let (v, &d) = deg
                .iter()
                .enumerate()
                .filter(|&(v, _)| alive[v])
                .min_by_key(|&(_, d)| *d)
                .unwrap();
            k = k.max(d);
            naive[v] = k as u32;
            alive[v] = false;
            for &u in g.neighbors(v as Node) {
                if alive[u as usize] && u as usize != v {
                    deg[u as usize] -= 1;
                }
            }
        }
        assert_eq!(fast.core, naive);
    }
}
