//! Breadth-first traversal utilities.
//!
//! Used by tests (small-world diameter sanity checks on generators) and by
//! downstream analyses; not on any algorithm hot path.

use crate::graph::{Graph, Node};
use std::collections::VecDeque;

/// Hop distance from `source` to every node (`u32::MAX` if unreachable).
pub fn bfs_distances(g: &Graph, source: Node) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Largest finite BFS distance from `source` (eccentricity within its
/// component).
pub fn eccentricity(g: &Graph, source: Node) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Nodes reachable from `source`, including itself.
pub fn reachable_count(g: &Graph, source: Node) -> usize {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn distances_on_path() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(eccentricity(&g, 0), 3);
        assert_eq!(eccentricity(&g, 1), 2);
    }

    #[test]
    fn unreachable_marked_max() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(reachable_count(&g, 0), 2);
    }

    #[test]
    fn cycle_distances() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 1]);
    }

    #[test]
    fn isolated_source() {
        let g = GraphBuilder::new(2).build();
        assert_eq!(reachable_count(&g, 0), 1);
        assert_eq!(eccentricity(&g, 0), 0);
    }
}
