//! Induced subgraph extraction.
//!
//! Used to restrict analysis to a node subset — most commonly the largest
//! connected component, the standard preprocessing step for community
//! detection corpora (PGPgiantcompo in Table I *is* the giant component of
//! a larger network).

use crate::builder::GraphBuilder;
use crate::components::ConnectedComponents;
use crate::graph::{Graph, Node};

/// An induced subgraph together with the id mappings in both directions.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced subgraph with compact node ids `0..k`.
    pub graph: Graph,
    /// Original id of each subgraph node.
    pub to_original: Vec<Node>,
    /// Subgraph id of each original node (`None` if excluded).
    pub from_original: Vec<Option<Node>>,
}

/// Extracts the subgraph induced by `nodes` (duplicates ignored; order
/// defines the new ids). Panics on out-of-range ids.
pub fn induced_subgraph(g: &Graph, nodes: &[Node]) -> Subgraph {
    let n = g.node_count();
    let mut from_original: Vec<Option<Node>> = vec![None; n];
    let mut to_original: Vec<Node> = Vec::with_capacity(nodes.len());
    for &v in nodes {
        assert!((v as usize) < n, "node {v} out of range");
        if from_original[v as usize].is_none() {
            from_original[v as usize] = Some(to_original.len() as Node); // audit:allow(lossy-cast): bounded by the u32 node id space
            to_original.push(v);
        }
    }

    let mut b = GraphBuilder::new(to_original.len());
    for (new_u, &orig_u) in to_original.iter().enumerate() {
        for (orig_v, w) in g.edges_of(orig_u) {
            if orig_v < orig_u {
                continue; // visit each edge once (self-loops included via ==)
            }
            if let Some(new_v) = from_original[orig_v as usize] {
                b.add_edge(new_u as Node, new_v, w);
            }
        }
    }
    Subgraph {
        graph: b.build(),
        to_original,
        from_original,
    }
}

/// Extracts the largest connected component of `g`.
pub fn largest_component_subgraph(g: &Graph) -> Subgraph {
    let cc = ConnectedComponents::run(g);
    induced_subgraph(g, &cc.largest_component())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // triangle 0-1-2, pendant 3 on 2, isolated 4, self-loop at 1
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(0, 2, 3.0);
        b.add_edge(2, 3, 4.0);
        b.add_edge(1, 1, 5.0);
        b.build()
    }

    #[test]
    fn extracts_triangle() {
        let g = sample();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 4); // 3 triangle edges + loop at 1
        assert_eq!(sub.graph.edge_weight(0, 1), Some(1.0));
        assert_eq!(sub.graph.self_loop_weight(1), 5.0);
        assert!(!sub.graph.has_edge(2, 0) || sub.graph.edge_weight(0, 2) == Some(3.0));
    }

    #[test]
    fn mappings_are_inverse() {
        let g = sample();
        let sub = induced_subgraph(&g, &[3, 1, 0]);
        assert_eq!(sub.to_original, vec![3, 1, 0]);
        for (new_id, &orig) in sub.to_original.iter().enumerate() {
            assert_eq!(sub.from_original[orig as usize], Some(new_id as Node));
        }
        assert_eq!(sub.from_original[2], None);
        // edge 1-3 does not exist; only 0-1 survives
        assert_eq!(sub.graph.edge_count(), 2); // 0-1 plus self-loop at 1
    }

    #[test]
    fn duplicates_ignored() {
        let g = sample();
        let sub = induced_subgraph(&g, &[0, 0, 1, 1]);
        assert_eq!(sub.graph.node_count(), 2);
    }

    #[test]
    fn empty_selection() {
        let g = sample();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.node_count(), 0);
    }

    #[test]
    fn largest_component_extraction() {
        let g = sample();
        let sub = largest_component_subgraph(&g);
        assert_eq!(sub.graph.node_count(), 4); // 0,1,2,3
        assert!(!sub.to_original.contains(&4));
        assert_eq!(sub.graph.edge_count(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_ids() {
        induced_subgraph(&sample(), &[9]);
    }

    #[test]
    fn weights_preserved() {
        let g = sample();
        let sub = induced_subgraph(&g, &[2, 3]);
        assert_eq!(sub.graph.edge_weight(0, 1), Some(4.0));
    }
}
