//! The immutable CSR graph.
//!
//! `Graph` stores an undirected, weighted graph in compressed sparse row
//! layout: for every node the sorted list of neighbors and the parallel list
//! of edge weights. Each undirected edge `{u, v}` with `u != v` appears in
//! both adjacency rows; a self-loop `{u, u}` appears once in `u`'s row.
//!
//! Conventions (matching the paper's §III definitions):
//!
//! * `total_edge_weight` is ω(E): the sum of edge weights with self-loops
//!   counted **once**.
//! * `weighted_degree(u)` is the sum of weights of `u`'s adjacency row
//!   (self-loop counted once).
//! * `volume(u)` = weighted_degree(u) + self_loop_weight(u), i.e. self-loops
//!   count **twice** — exactly the paper's `vol(u)`. Consequently
//!   `Σ_u volume(u) = 2 ω(E)`.

use rayon::prelude::*;

/// Node identifier. Graphs are limited to `u32::MAX` nodes, which halves the
/// memory traffic of adjacency scans compared to `usize` ids.
pub type Node = u32;

/// An immutable, undirected, weighted graph in CSR layout.
///
/// # Examples
///
/// ```
/// use parcom_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_unweighted_edge(0, 1);
/// b.add_edge(1, 2, 2.5);
/// let g = b.build();
///
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.weighted_degree(1), 3.5);
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    /// Row offsets; `offsets[u]..offsets[u+1]` indexes `u`'s adjacency.
    offsets: Vec<usize>,
    /// Concatenated, per-row-sorted neighbor lists.
    targets: Vec<Node>,
    /// Edge weights parallel to `targets`.
    weights: Vec<f64>,
    /// Cached per-node sum of incident weights (self-loop once).
    weighted_degrees: Vec<f64>,
    /// Cached per-node self-loop weight (0.0 for most nodes).
    self_loops: Vec<f64>,
    /// ω(E): total edge weight, self-loops counted once.
    total_weight: f64,
    /// Number of undirected edges (self-loops count one).
    num_edges: usize,
}

/// Owned CSR arrays plus the derived caches — the exact fields of [`Graph`],
/// exposed so a deserializer can hand a fully-materialized graph to
/// [`Graph::from_cached_parts`] without re-deriving anything.
#[derive(Clone, Debug)]
pub struct CsrParts {
    /// Row offsets; length `n + 1`, `offsets[0] == 0`.
    pub offsets: Vec<usize>,
    /// Concatenated, per-row-sorted neighbor lists.
    pub targets: Vec<Node>,
    /// Edge weights parallel to `targets`.
    pub weights: Vec<f64>,
    /// Per-node sum of incident weights (self-loop once); length `n`.
    pub weighted_degrees: Vec<f64>,
    /// Per-node self-loop weight; length `n`.
    pub self_loops: Vec<f64>,
    /// ω(E): total edge weight, self-loops counted once.
    pub total_weight: f64,
    /// Number of undirected edges (self-loops count one).
    pub num_edges: usize,
}

/// Borrowed view of every CSR array and derived cache of a [`Graph`] — what a
/// serializer reads to write the graph without re-deriving anything.
#[derive(Clone, Copy, Debug)]
pub struct CsrView<'a> {
    /// Row offsets; length `n + 1`.
    pub offsets: &'a [usize],
    /// Concatenated, per-row-sorted neighbor lists.
    pub targets: &'a [Node],
    /// Edge weights parallel to `targets`.
    pub weights: &'a [f64],
    /// Per-node sum of incident weights (self-loop once).
    pub weighted_degrees: &'a [f64],
    /// Per-node self-loop weight.
    pub self_loops: &'a [f64],
    /// ω(E): total edge weight, self-loops counted once.
    pub total_weight: f64,
    /// Number of undirected edges (self-loops count one).
    pub num_edges: usize,
}

impl Graph {
    /// Assembles a graph from raw CSR arrays. Rows must be sorted by target
    /// and free of duplicate targets; every non-loop edge must appear in both
    /// endpoint rows with equal weight. [`crate::GraphBuilder`] guarantees
    /// this; `debug_assert`s verify it in test builds.
    pub(crate) fn from_csr(offsets: Vec<usize>, targets: Vec<Node>, weights: Vec<f64>) -> Self {
        let n = offsets.len() - 1;
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());

        let mut weighted_degrees = vec![0.0; n];
        let mut self_loops = vec![0.0; n];
        let mut loop_total = 0.0;
        let mut directed_weight = 0.0;
        let mut num_loops = 0usize;
        for u in 0..n {
            let row = offsets[u]..offsets[u + 1];
            let mut wd = 0.0;
            for i in row {
                wd += weights[i];
                if targets[i] as usize == u {
                    self_loops[u] += weights[i];
                    loop_total += weights[i];
                    num_loops += 1;
                }
            }
            weighted_degrees[u] = wd;
            directed_weight += wd;
        }
        // Non-loop edges are stored twice, loops once.
        let total_weight = (directed_weight - loop_total) / 2.0 + loop_total;
        let num_edges = (targets.len() - num_loops) / 2 + num_loops;

        let g = Self {
            offsets,
            targets,
            weights,
            weighted_degrees,
            self_loops,
            total_weight,
            num_edges,
        };
        // Postcondition of every construction path (GraphBuilder::build and
        // coarsening both land here): the full validator in debug builds or
        // when the `validate` feature is on.
        #[cfg(any(debug_assertions, feature = "validate"))]
        if let Err(e) = g.validate() {
            panic!("construction produced an inconsistent CSR graph: {e}");
        }
        g
    }

    /// Assembles a graph from raw CSR arrays *plus* the derived caches,
    /// skipping the O(n + m) cache recomputation of [`Self::from_csr`] —
    /// the zero-parse reopen path of the binary graph format
    /// (`parcom_io::binfmt`). The caches are trusted (the binary format
    /// checksums them); what is re-verified is every invariant whose
    /// violation could panic later code: array lengths, monotone offsets
    /// ending at `targets.len()`, and every target id in range. In debug
    /// builds and under the `validate` feature the full [`Self::validate`]
    /// runs as well, so tests exercise the complete contract.
    pub fn from_cached_parts(parts: CsrParts) -> Result<Self, String> {
        let CsrParts {
            offsets,
            targets,
            weights,
            weighted_degrees,
            self_loops,
            total_weight,
            num_edges,
        } = parts;
        if offsets.is_empty() {
            return Err("offsets must have length n + 1 (is empty)".into());
        }
        let n = offsets.len() - 1;
        if offsets[0] != 0 {
            return Err(format!("offsets[0] = {} (want 0)", offsets[0]));
        }
        if targets.len() != weights.len() {
            return Err(format!(
                "targets/weights length mismatch: {} vs {}",
                targets.len(),
                weights.len()
            ));
        }
        if *offsets.last().unwrap() != targets.len() {
            return Err(format!(
                "offsets end at {} but there are {} adjacency entries",
                offsets.last().unwrap(),
                targets.len()
            ));
        }
        if weighted_degrees.len() != n || self_loops.len() != n {
            return Err(format!(
                "degree caches have length {}/{} for {n} nodes",
                weighted_degrees.len(),
                self_loops.len()
            ));
        }
        if let Some(u) = (0..n).find(|&u| offsets[u] > offsets[u + 1]) {
            return Err(format!(
                "offsets not monotone at node {u}: {} > {}",
                offsets[u],
                offsets[u + 1]
            ));
        }
        if let Some(&v) = targets.iter().find(|&&v| v as usize >= n) {
            return Err(format!("target id {v} out of range (n = {n})"));
        }
        let g = Self {
            offsets,
            targets,
            weights,
            weighted_degrees,
            self_loops,
            total_weight,
            num_edges,
        };
        #[cfg(any(debug_assertions, feature = "validate"))]
        g.validate()?;
        Ok(g)
    }

    /// Borrows every CSR array and derived cache at once — what a binary
    /// serializer needs to write the graph without re-deriving anything.
    pub fn csr_view(&self) -> CsrView<'_> {
        CsrView {
            offsets: &self.offsets,
            targets: &self.targets,
            weights: &self.weights,
            weighted_degrees: &self.weighted_degrees,
            self_loops: &self.self_loops,
            total_weight: self.total_weight,
            num_edges: self.num_edges,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m` (self-loops count one).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// ω(E): total edge weight with self-loops counted once.
    #[inline]
    pub fn total_edge_weight(&self) -> f64 {
        self.total_weight
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> std::ops::Range<Node> {
        0..self.node_count() as Node // audit:allow(lossy-cast): bounded by the u32 node id space
    }

    /// Parallel iterator over all node ids.
    #[inline]
    // audit:allow(budget-propagation): constructs a lazy parallel iterator; no work runs until the caller drives it
    pub fn par_nodes(&self) -> rayon::range::Iter<Node> {
        (0..self.node_count() as Node).into_par_iter() // audit:allow(lossy-cast): bounded by the u32 node id space
    }

    /// Unweighted degree of `u` (number of adjacency entries; a self-loop
    /// contributes one).
    #[inline]
    pub fn degree(&self, u: Node) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Sorted neighbor ids of `u`.
    #[inline]
    pub fn neighbors(&self, u: Node) -> &[Node] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Neighbor ids and the parallel slice of edge weights.
    #[inline]
    pub fn neighbors_and_weights(&self, u: Node) -> (&[Node], &[f64]) {
        let row = self.offsets[u as usize]..self.offsets[u as usize + 1];
        (&self.targets[row.clone()], &self.weights[row])
    }

    /// Iterator over `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn edges_of(&self, u: Node) -> impl Iterator<Item = (Node, f64)> + '_ {
        let (t, w) = self.neighbors_and_weights(u);
        t.iter().copied().zip(w.iter().copied())
    }

    /// Weight of the edge `{u, v}`, or `None` if absent. O(log deg(u)).
    pub fn edge_weight(&self, u: Node, v: Node) -> Option<f64> {
        let (t, w) = self.neighbors_and_weights(u);
        t.binary_search(&v).ok().map(|i| w[i])
    }

    /// Whether the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Sum of incident edge weights of `u` (self-loop counted once).
    #[inline]
    pub fn weighted_degree(&self, u: Node) -> f64 {
        self.weighted_degrees[u as usize]
    }

    /// Self-loop weight ω(u, u) (0 if no loop).
    #[inline]
    pub fn self_loop_weight(&self, u: Node) -> f64 {
        self.self_loops[u as usize]
    }

    /// The paper's `vol(u)`: incident weight with self-loops counted twice.
    #[inline]
    pub fn volume(&self, u: Node) -> f64 {
        self.weighted_degrees[u as usize] + self.self_loops[u as usize]
    }

    /// Maximum unweighted degree over all nodes.
    // audit:allow(budget-propagation): one bounded degree scan; callers (coloring preflight) check the budget per round
    pub fn max_degree(&self) -> usize {
        self.par_nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Visits every undirected edge exactly once as `(u, v, w)` with `u <= v`.
    pub fn for_edges(&self, mut f: impl FnMut(Node, Node, f64)) {
        for u in self.nodes() {
            for (v, w) in self.edges_of(u) {
                if v >= u {
                    f(u, v, w);
                }
            }
        }
    }

    /// Collects every undirected edge once as `(u, v, w)` with `u <= v`,
    /// in parallel.
    pub fn par_collect_edges(&self) -> Vec<(Node, Node, f64)> {
        self.par_nodes()
            .flat_map_iter(|u| {
                self.edges_of(u)
                    .filter(move |&(v, _)| v >= u)
                    .map(move |(v, w)| (u, v, w))
            })
            .collect()
    }

    /// Parallel sum over undirected edges of `f(u, v, w)` (each edge once).
    pub fn par_edge_sum(&self, f: impl Fn(Node, Node, f64) -> f64 + Sync) -> f64 {
        self.par_nodes()
            .map(|u| {
                self.edges_of(u)
                    .filter(|&(v, _)| v >= u)
                    .map(|(v, w)| f(u, v, w))
                    .sum::<f64>()
            })
            .sum()
    }

    /// Applies `f` to every node in parallel.
    pub fn par_for_nodes(&self, f: impl Fn(Node) + Send + Sync) {
        self.par_nodes().for_each(f);
    }

    /// Full structural validation with diagnostics. Verifies every CSR
    /// invariant the rest of the workspace relies on:
    ///
    /// * offsets are monotone, start at 0 and end at `targets.len()`;
    ///   `targets` and `weights` are parallel arrays;
    /// * every adjacency row is strictly sorted (no duplicate targets) and
    ///   every target id is in range;
    /// * edge weights are finite and non-negative;
    /// * undirected symmetry: every non-loop entry `(u → v, w)` has the
    ///   mirror entry `(v → u, w)`; self-loops appear exactly once, in
    ///   their own row (the workspace's self-loop convention);
    /// * the cached `weighted_degrees`, `self_loops`, `total_weight` and
    ///   `num_edges` agree with a recomputation from the raw arrays.
    ///
    /// Compiled only in debug builds or with the `validate` feature; the
    /// parallel algorithms call it as a postcondition through
    /// [`Self::check_consistency`]-style debug hooks.
    #[cfg(any(debug_assertions, feature = "validate"))]
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_count();
        if self.offsets.len() != n + 1 {
            return Err(format!(
                "offsets has length {} for {n} nodes (want n + 1)",
                self.offsets.len()
            ));
        }
        if self.offsets[0] != 0 {
            return Err(format!("offsets[0] = {} (want 0)", self.offsets[0]));
        }
        if self.targets.len() != self.weights.len() {
            return Err(format!(
                "targets/weights length mismatch: {} vs {}",
                self.targets.len(),
                self.weights.len()
            ));
        }
        if *self.offsets.last().unwrap() != self.targets.len() {
            return Err(format!(
                "offsets end at {} but there are {} adjacency entries",
                self.offsets.last().unwrap(),
                self.targets.len()
            ));
        }
        if self.weighted_degrees.len() != n || self.self_loops.len() != n {
            return Err("cached degree arrays have wrong length".into());
        }
        let mut loop_total = 0.0;
        let mut directed_weight = 0.0;
        let mut num_loops = 0usize;
        for u in 0..n {
            if self.offsets[u] > self.offsets[u + 1] {
                return Err(format!(
                    "offsets not monotone at node {u}: {} > {}",
                    self.offsets[u],
                    self.offsets[u + 1]
                ));
            }
            let row = &self.targets[self.offsets[u]..self.offsets[u + 1]];
            let row_weights = &self.weights[self.offsets[u]..self.offsets[u + 1]];
            if let Some(w) = row.windows(2).find(|w| w[0] >= w[1]) {
                return Err(format!(
                    "row of node {u} not strictly sorted: {} then {}",
                    w[0], w[1]
                ));
            }
            let mut wd = 0.0;
            for (&v, &w) in row.iter().zip(row_weights) {
                if v as usize >= n {
                    return Err(format!("node {u} has out-of-range neighbor {v} (n = {n})"));
                }
                if !w.is_finite() || w < 0.0 {
                    return Err(format!(
                        "edge {{{u}, {v}}} has invalid weight {w} (want finite, non-negative)"
                    ));
                }
                wd += w;
                if v as usize == u {
                    loop_total += w;
                    num_loops += 1;
                } else if self.edge_weight(v, u as Node) != Some(w) {
                    return Err(format!(
                        "asymmetric edge: {u} → {v} has weight {w}, reverse entry {:?}",
                        self.edge_weight(v, u as Node)
                    ));
                }
            }
            directed_weight += wd;
            if (self.weighted_degrees[u] - wd).abs() > 1e-9 * wd.abs().max(1.0) {
                return Err(format!(
                    "cached weighted_degree of {u} is {} (recomputed {wd})",
                    self.weighted_degrees[u]
                ));
            }
            let self_loop: f64 = row
                .iter()
                .zip(row_weights)
                .filter(|(&v, _)| v as usize == u)
                .map(|(_, &w)| w)
                .sum();
            if (self.self_loops[u] - self_loop).abs() > 1e-9 * self_loop.abs().max(1.0) {
                return Err(format!(
                    "cached self-loop weight of {u} is {} (recomputed {self_loop})",
                    self.self_loops[u]
                ));
            }
        }
        let total = (directed_weight - loop_total) / 2.0 + loop_total;
        if (self.total_weight - total).abs() > 1e-9 * total.abs().max(1.0) {
            return Err(format!(
                "cached total_weight is {} (recomputed {total})",
                self.total_weight
            ));
        }
        let edges = (self.targets.len() - num_loops) / 2 + num_loops;
        if self.num_edges != edges {
            return Err(format!(
                "cached num_edges is {} (recomputed {edges})",
                self.num_edges
            ));
        }
        Ok(())
    }

    /// Structural invariants; used by tests and `debug_assert` on build.
    pub fn check_consistency(&self) -> bool {
        let n = self.node_count();
        if self.offsets.len() != n + 1 || self.offsets[0] != 0 {
            return false;
        }
        for u in 0..n {
            if self.offsets[u] > self.offsets[u + 1] {
                return false;
            }
            let row = &self.targets[self.offsets[u]..self.offsets[u + 1]];
            // sorted, no duplicates, in range
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            if row.iter().any(|&v| v as usize >= n) {
                return false;
            }
        }
        // symmetry
        for u in 0..n as Node {
            for (v, w) in self.edges_of(u) {
                if v != u && self.edge_weight(v, u) != Some(w) {
                    return false;
                }
            }
        }
        true
    }
}

/// Corrupted-CSR fixtures: every class of invariant breakage must be
/// rejected by [`Graph::validate`]. Lives in this module because only here
/// can a `Graph` be assembled field by field, bypassing the builder.
#[cfg(test)]
mod validate_tests {
    use super::Graph;
    use crate::GraphBuilder;

    /// A valid path 0-1-2 as raw parts, ready to be corrupted.
    fn intact() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.build()
    }

    #[test]
    fn intact_graph_validates() {
        assert!(intact().validate().is_ok());
    }

    #[test]
    fn rejects_non_monotone_offsets() {
        let mut g = intact();
        g.offsets[1] = 3; // 3 > offsets[2] = 3? make it regress: offsets = [0,3,1,4]
        g.offsets[2] = 1;
        let err = g.validate().unwrap_err();
        assert!(err.contains("monotone") || err.contains("sorted"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_target() {
        let mut g = intact();
        g.targets[0] = 7;
        let err = g.validate().unwrap_err();
        assert!(
            err.contains("out-of-range") || err.contains("asymmetric"),
            "{err}"
        );
    }

    #[test]
    fn rejects_asymmetric_edge() {
        let mut g = intact();
        // 1's row is [0, 2]; retarget the mirror entry of {0,1} to 2 → dup,
        // instead retarget 0's single entry from 1 to 2 (row stays sorted)
        g.targets[0] = 2;
        let err = g.validate().unwrap_err();
        assert!(err.contains("asymmetric"), "{err}");
    }

    #[test]
    fn rejects_nan_and_negative_weights() {
        let mut g = intact();
        g.weights[0] = f64::NAN;
        assert!(g.validate().unwrap_err().contains("invalid weight"));
        let mut g = intact();
        g.weights[0] = -1.0;
        assert!(g.validate().unwrap_err().contains("invalid weight"));
        let mut g = intact();
        g.weights[0] = f64::INFINITY;
        assert!(g.validate().unwrap_err().contains("invalid weight"));
    }

    #[test]
    fn rejects_stale_caches() {
        let mut g = intact();
        g.total_weight = 99.0;
        assert!(g.validate().unwrap_err().contains("total_weight"));
        let mut g = intact();
        g.weighted_degrees[1] = 0.5;
        assert!(g.validate().unwrap_err().contains("weighted_degree"));
        let mut g = intact();
        g.num_edges = 5;
        assert!(g.validate().unwrap_err().contains("num_edges"));
        let mut g = intact();
        g.self_loops[0] = 1.0;
        assert!(g.validate().unwrap_err().contains("self-loop"));
    }

    #[test]
    fn rejects_duplicate_targets() {
        let mut g = intact();
        // 1's row is [0, 2] at indices 1..3; duplicate the first entry
        g.targets[2] = 0;
        g.weights[2] = 1.0;
        let err = g.validate().unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle_with_loop() -> crate::Graph {
        // triangle 0-1-2 plus self-loop at 2 with weight 5
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(0, 2, 3.0);
        b.add_edge(2, 2, 5.0);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_with_loop();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.total_edge_weight(), 11.0);
    }

    #[test]
    fn degrees_and_volumes() {
        let g = triangle_with_loop();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3); // 0, 1 and the loop entry
        assert_eq!(g.weighted_degree(0), 4.0);
        assert_eq!(g.weighted_degree(2), 10.0); // 2 + 3 + 5
        assert_eq!(g.volume(2), 15.0); // loop counted twice
        assert_eq!(g.self_loop_weight(2), 5.0);
        assert_eq!(g.self_loop_weight(0), 0.0);
    }

    #[test]
    fn volume_sums_to_twice_total_weight() {
        let g = triangle_with_loop();
        let vol: f64 = g.nodes().map(|u| g.volume(u)).sum();
        assert!((vol - 2.0 * g.total_edge_weight()).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_and_weighted() {
        let g = triangle_with_loop();
        assert_eq!(g.neighbors(2), &[0, 1, 2]);
        assert_eq!(g.edge_weight(2, 0), Some(3.0));
        assert_eq!(g.edge_weight(0, 2), Some(3.0));
        assert_eq!(g.edge_weight(2, 2), Some(5.0));
        assert_eq!(g.edge_weight(0, 0), None);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn for_edges_visits_each_once() {
        let g = triangle_with_loop();
        let mut edges = vec![];
        g.for_edges(|u, v, w| edges.push((u, v, w)));
        edges.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.total_cmp(&b.2)));
        assert_eq!(
            edges,
            vec![(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0), (2, 2, 5.0)]
        );
    }

    #[test]
    fn par_collect_edges_matches_sequential() {
        let g = triangle_with_loop();
        let mut seq = vec![];
        g.for_edges(|u, v, w| seq.push((u, v, w)));
        let mut par = g.par_collect_edges();
        let key = |a: &(u32, u32, f64), b: &(u32, u32, f64)| {
            a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.total_cmp(&b.2))
        };
        seq.sort_by(key);
        par.sort_by(key);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_edge_sum_counts_weights() {
        let g = triangle_with_loop();
        assert_eq!(g.par_edge_sum(|_, _, w| w), 11.0);
        assert_eq!(g.par_edge_sum(|_, _, _| 1.0), 4.0);
    }

    #[test]
    fn max_degree() {
        let g = triangle_with_loop();
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_edge_weight(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.volume(3), 0.0);
    }

    #[test]
    fn consistency_holds() {
        assert!(triangle_with_loop().check_consistency());
    }
}
