//! Connected components (the `comp.` column of Table I).
//!
//! Union-find with path halving and union by size; edges are scanned once.

use crate::graph::{Graph, Node};
use crate::partition::Partition;

/// Disjoint-set forest over node ids.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Result of a connected-components run.
#[derive(Clone, Debug)]
pub struct ConnectedComponents {
    /// Component id per node (dense, `0..count`).
    pub assignment: Partition,
    /// Number of components.
    pub count: usize,
}

impl ConnectedComponents {
    /// Computes the connected components of `g`.
    pub fn run(g: &Graph) -> Self {
        let n = g.node_count();
        let mut uf = UnionFind::new(n);
        for u in g.nodes() {
            for v in g.neighbors(u) {
                if *v > u {
                    uf.union(u, *v);
                }
            }
        }
        let mut assignment =
            Partition::from_vec((0..n as u32).map(|v| uf.find(v)).collect::<Vec<_>>());
        let count = assignment.compact();
        Self { assignment, count }
    }

    /// Node ids of the largest component (ties broken by lowest id).
    pub fn largest_component(&self) -> Vec<Node> {
        let sizes = self.assignment.subset_sizes();
        let Some((best, _)) = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, s)| (*s, std::cmp::Reverse(i)))
        else {
            return Vec::new();
        };
        (0..self.assignment.len() as Node) // audit:allow(lossy-cast): bounded by the u32 node id space
            .filter(|&v| self.assignment.subset_of(v) as usize == best)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn single_component_path() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cc = ConnectedComponents::run(&g);
        assert_eq!(cc.count, 1);
        assert_eq!(cc.largest_component().len(), 4);
    }

    #[test]
    fn counts_isolated_nodes() {
        let g = GraphBuilder::from_edges(5, &[(0, 1)]);
        let cc = ConnectedComponents::run(&g);
        assert_eq!(cc.count, 4); // {0,1}, {2}, {3}, {4}
    }

    #[test]
    fn two_components() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let cc = ConnectedComponents::run(&g);
        assert_eq!(cc.count, 2);
        assert!(cc.assignment.in_same_subset(0, 2));
        assert!(!cc.assignment.in_same_subset(2, 3));
    }

    #[test]
    fn largest_component_found() {
        let g = GraphBuilder::from_edges(7, &[(0, 1), (2, 3), (3, 4), (4, 5)]);
        let cc = ConnectedComponents::run(&g);
        assert_eq!(cc.largest_component(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn self_loops_do_not_connect() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 1.0);
        let g = b.build();
        let cc = ConnectedComponents::run(&g);
        assert_eq!(cc.count, 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let cc = ConnectedComponents::run(&g);
        assert_eq!(cc.count, 0);
        assert!(cc.largest_component().is_empty());
    }

    #[test]
    fn union_find_semantics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_size(0), 2);
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.set_size(2), 4);
        assert_eq!(uf.find(0), uf.find(3));
    }
}
