#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-graph — parallel graph substrate
//!
//! This crate provides the data-structure layer that the community detection
//! algorithms in `parcom-core` are built on, mirroring the role the NetworKit
//! graph class plays in the paper *Engineering Parallel Algorithms for
//! Community Detection in Massive Networks* (Staudt & Meyerhenke):
//!
//! * [`Graph`] — an immutable, undirected, weighted graph in CSR layout with
//!   cache-friendly neighbor scans and rayon-based parallel iteration.
//! * [`GraphBuilder`] — incremental construction with parallel-edge merging.
//! * [`Partition`] / [`AtomicPartition`] — community assignments, the latter a
//!   lock-free label array shared between threads (the paper's benign-race
//!   label updates, made data-race-free with relaxed atomics).
//! * [`coarsening`] — the parallel coarsening scheme of §III-B: contract a
//!   graph according to a partition, folding intra-community weight into
//!   self-loops.
//! * [`coloring`] — deterministic parallel greedy distance-1 coloring with
//!   degree-1 vertex following, driving the conflict-free PLM move phase.
//! * [`scratch`] — generation-stamped flat scratch maps ([`SparseWeightMap`])
//!   replacing hash maps in the label/move kernels' neighborhood
//!   aggregation, with a pool ([`ScratchPool`]) for per-thread reuse.
//! * Analytics used by the experiments: connected components, local
//!   clustering coefficients, degree statistics (Table I columns).
//!
//! Node identifiers are `u32` ([`Node`]); edge weights are `f64`.

pub mod assortativity;
pub mod atomicf64;
pub mod builder;
pub mod clustering;
pub mod coarsening;
pub mod coloring;
pub mod components;
pub mod cores;
pub mod graph;
pub mod hashing;
pub mod parallel;
pub mod partition;
pub mod relabel;
pub mod scratch;
pub mod stats;
pub mod subgraph;
pub mod traversal;

pub use assortativity::degree_assortativity;
pub use atomicf64::AtomicF64;
pub use builder::GraphBuilder;
pub use coarsening::{coarsen, coarsen_with, Coarsening};
pub use coloring::Coloring;
pub use cores::CoreDecomposition;
pub use graph::{CsrParts, CsrView, Graph, Node};
pub use partition::{AtomicPartition, Partition};
pub use relabel::Relabeling;
pub use scratch::{ScratchPool, SparseWeightMap};
pub use subgraph::{induced_subgraph, largest_component_subgraph, Subgraph};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::coarsening::{coarsen, coarsen_with, Coarsening};
    pub use crate::graph::{Graph, Node};
    pub use crate::partition::{AtomicPartition, Partition};
    pub use crate::scratch::{ScratchPool, SparseWeightMap};
}
