//! Thread-pool helpers for scaling experiments.
//!
//! The paper's strong/weak scaling experiments (Figs. 2, 3, 10) sweep the
//! number of OpenMP threads from 1 to 32. The rayon equivalent is running the
//! algorithm inside a dedicated pool of the requested size; [`with_threads`]
//! encapsulates that.

/// Runs `f` on a rayon pool with exactly `threads` worker threads.
///
/// A fresh pool is built per call; construction cost is microseconds and
/// irrelevant next to the graph workloads measured with it.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    assert!(threads >= 1, "need at least one thread");
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Number of threads rayon would use by default in the current context.
pub fn default_threads() -> usize {
    rayon::current_num_threads()
}

/// Splits `0..len` into at most `parts` contiguous, near-equal ranges.
///
/// Used where an algorithm wants explicit per-thread chunks (e.g. the
/// per-thread partial coarse graphs of §III-B) rather than rayon's adaptive
/// splitting.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Splits `slice` into one sub-slice per range in `ranges`.
///
/// The ranges must tile a prefix of the slice (contiguous, in order,
/// starting at 0) — exactly what [`chunk_ranges`] produces. The returned
/// sub-slices are disjoint, so they can be handed to different threads;
/// this is how the CSR assembly distributes per-node-range regions of the
/// flat arrays without `unsafe`.
pub fn split_by_ranges<'a, T>(
    mut slice: &'a mut [T],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut expect = 0;
    for r in ranges {
        assert_eq!(r.start, expect, "ranges must tile the slice in order");
        let (head, tail) = slice.split_at_mut(r.len());
        out.push(head);
        slice = tail;
        expect = r.end;
    }
    out
}

/// Exclusive parallel prefix sum: returns `out` of length `xs.len() + 1`
/// with `out[i] = Σ_{j<i} xs[j]` (so `out[len]` is the total).
///
/// The classic two-pass scheme: per-part totals in parallel, a sequential
/// scan over the (few) part totals, then a parallel pass writing each
/// part's local prefix offset by its base. `parts` bounds the number of
/// concurrent parts; pass 1 for a sequential scan.
pub fn exclusive_prefix_sum(xs: &[u32], parts: usize) -> Vec<usize> {
    use rayon::prelude::*;
    let ranges = chunk_ranges(xs.len(), parts);
    let totals: Vec<usize> = ranges
        .par_iter()
        .map(|r| xs[r.clone()].iter().map(|&x| x as usize).sum())
        .collect();
    let mut bases = Vec::with_capacity(ranges.len());
    let mut acc = 0usize;
    for t in &totals {
        bases.push(acc);
        acc += t;
    }
    let mut out = vec![0usize; xs.len() + 1];
    out[xs.len()] = acc;
    {
        let pieces = split_by_ranges(&mut out[..xs.len()], &ranges);
        ranges
            .iter()
            .zip(pieces)
            .zip(bases)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|((r, piece), base)| {
                let mut acc = base;
                for (slot, &x) in piece.iter_mut().zip(&xs[r.clone()]) {
                    *slot = acc;
                    acc += x as usize;
                }
            });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_runs_closure() {
        let sum: u64 = with_threads(2, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn with_threads_controls_pool_size() {
        let t = with_threads(3, rayon::current_num_threads);
        assert_eq!(t, 3);
        let t = with_threads(1, rayon::current_num_threads);
        assert_eq!(t, 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        with_threads(0, || ());
    }

    #[test]
    fn chunk_ranges_cover_everything() {
        for len in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                assert_eq!(expect, len);
                // near-equal: sizes differ by at most one
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_never_exceed_parts() {
        assert_eq!(chunk_ranges(4, 8).len(), 4);
        assert_eq!(chunk_ranges(100, 8).len(), 8);
    }

    #[test]
    fn split_by_ranges_is_a_partition() {
        let mut data: Vec<u32> = (0..17).collect();
        let ranges = chunk_ranges(17, 4);
        let pieces = split_by_ranges(&mut data, &ranges);
        assert_eq!(pieces.len(), 4);
        let flat: Vec<u32> = pieces.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(flat, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn exclusive_prefix_sum_matches_sequential() {
        for len in [0usize, 1, 2, 7, 100, 1000] {
            let xs: Vec<u32> = (0..len).map(|i| (i as u32 * 7 + 3) % 11).collect();
            for parts in [1usize, 2, 3, 8] {
                let got = exclusive_prefix_sum(&xs, parts);
                let mut expect = Vec::with_capacity(len + 1);
                let mut acc = 0usize;
                for &x in &xs {
                    expect.push(acc);
                    acc += x as usize;
                }
                expect.push(acc);
                assert_eq!(got, expect, "len={len} parts={parts}");
            }
        }
    }
}
