//! Degree-ordered node relabeling for cache locality.
//!
//! The kernels in `parcom-core` spend most of their time streaming adjacency
//! rows and gathering per-neighbor labels/community weights. When node ids
//! are assigned in input order, a hub's neighbors are scattered across the
//! whole label array and every gather is a cache miss. Relabeling nodes so
//! that high-degree nodes come first (and their neighbors therefore cluster
//! in the hot front of every per-node array) is the classic fix — the
//! BigClam speed-up lineage attributes most of its ~5× to exactly this kind
//! of locality work.
//!
//! A [`Relabeling`] is a permutation kept *with* the relabeled graph:
//! detection runs on the new ids, and partitions/reports are mapped back to
//! original ids at the emission boundary via [`Relabeling::to_original`], so
//! callers never observe the reordering.

use crate::graph::{CsrParts, Graph, Node};
use crate::parallel::{chunk_ranges, default_threads, exclusive_prefix_sum, split_by_ranges};
use crate::partition::Partition;
use rayon::prelude::*;
use std::cmp::Reverse;

/// Below this node count the permutation is applied sequentially; spawning
/// threads costs more than the copy (matches the CSR-assembly threshold).
const SEQ_THRESHOLD: usize = 4096;

/// A bijection between *original* node ids (input order) and *new* node ids
/// (the order the relabeled graph stores), with both directions
/// materialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<Node>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<Node>,
}

impl Relabeling {
    /// The hub-first ordering: new id 0 is the highest-degree node, ties
    /// broken by original id, so the ordering is deterministic and
    /// independent of thread count.
    pub fn degree_ordered(g: &Graph) -> Self {
        let n = g.node_count();
        let mut old_of_new: Vec<Node> = (0..n as Node).collect();
        // Keys are unique (id breaks ties), so an unstable sort is
        // deterministic here.
        old_of_new.sort_unstable_by_key(|&v| (Reverse(g.degree(v)), v));
        let mut new_of_old = vec![0 as Node; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as Node;
        }
        Self {
            new_of_old,
            old_of_new,
        }
    }

    /// Rebuilds a relabeling from its stored forward map (the binary graph
    /// format persists only `new_of_old`), validating that it is a
    /// permutation.
    pub fn from_new_of_old(new_of_old: Vec<Node>) -> Result<Self, String> {
        let n = new_of_old.len();
        let mut old_of_new = vec![Node::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            let slot = old_of_new.get_mut(new as usize).ok_or_else(|| {
                format!("relabeling maps node {old} to {new}, out of range (n = {n})")
            })?;
            if *slot != Node::MAX {
                return Err(format!(
                    "relabeling is not a permutation: nodes {} and {old} both map to {new}",
                    *slot
                ));
            }
            *slot = old as Node;
        }
        Ok(Self {
            new_of_old,
            old_of_new,
        })
    }

    /// The identity relabeling on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<Node> = (0..n as Node).collect();
        Self {
            new_of_old: ids.clone(),
            old_of_new: ids,
        }
    }

    /// Number of nodes the permutation covers.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True if the permutation covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// True if the permutation maps every node to itself.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(old, &new)| old as Node == new)
    }

    /// `new_of_old[old] = new` — the map the binary format persists.
    pub fn new_of_old(&self) -> &[Node] {
        &self.new_of_old
    }

    /// `old_of_new[new] = old`.
    pub fn old_of_new(&self) -> &[Node] {
        &self.old_of_new
    }

    /// New id of an original node.
    #[inline]
    pub fn to_new_id(&self, old: Node) -> Node {
        self.new_of_old[old as usize]
    }

    /// Original id of a new node.
    #[inline]
    pub fn to_old_id(&self, new: Node) -> Node {
        self.old_of_new[new as usize]
    }

    /// Applies the permutation to a graph: node `old` of `g` becomes node
    /// `new_of_old[old]` of the result, with identical edges and weights.
    ///
    /// The rebuild is cache-blocked: new-id node ranges are processed in
    /// contiguous chunks, each chunk writing its own disjoint slice of the
    /// new adjacency arrays (no atomics, no post-hoc stitching). Rows are
    /// re-sorted per node since the target mapping permutes their order.
    pub fn apply(&self, g: &Graph) -> Graph {
        let n = g.node_count();
        assert_eq!(
            n,
            self.len(),
            "relabeling covers {} nodes, graph has {n}",
            self.len()
        );

        // New row lengths, then new offsets by prefix sum.
        let parts = if n < SEQ_THRESHOLD {
            1
        } else {
            default_threads()
        };
        let degrees: Vec<u32> = self
            .old_of_new
            .iter()
            .map(|&old| g.degree(old) as u32)
            .collect();
        let offsets = exclusive_prefix_sum(&degrees, parts);
        let adj = *offsets.last().unwrap_or(&0);

        let mut targets = vec![0 as Node; adj];
        let mut weights = vec![0.0f64; adj];
        let node_ranges = chunk_ranges(n, parts);
        // The adjacency slice each node-chunk owns.
        let adj_ranges: Vec<std::ops::Range<usize>> = node_ranges
            .iter()
            .map(|r| offsets[r.start]..offsets[r.end])
            .collect();
        {
            let t_parts = split_by_ranges(&mut targets, &adj_ranges);
            let w_parts = split_by_ranges(&mut weights, &adj_ranges);
            node_ranges
                .iter()
                .zip(t_parts.into_iter().zip(w_parts))
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|(range, (t_out, w_out))| {
                    let base = offsets[range.start];
                    let mut row: Vec<(Node, f64)> = Vec::new();
                    for new_u in range.clone() {
                        let old_u = self.old_of_new[new_u];
                        row.clear();
                        row.extend(
                            g.edges_of(old_u)
                                .map(|(v, w)| (self.new_of_old[v as usize], w)),
                        );
                        // Unique targets within a row, so the unstable sort
                        // is deterministic.
                        row.sort_unstable_by_key(|&(v, _)| v);
                        let lo = offsets[new_u] - base;
                        for (i, &(v, w)) in row.iter().enumerate() {
                            t_out[lo + i] = v;
                            w_out[lo + i] = w;
                        }
                    }
                });
        }

        // Per-node caches permute directly; the totals are order-free.
        let weighted_degrees: Vec<f64> = self
            .old_of_new
            .iter()
            .map(|&old| g.weighted_degree(old))
            .collect();
        let self_loops: Vec<f64> = self
            .old_of_new
            .iter()
            .map(|&old| g.self_loop_weight(old))
            .collect();

        match Graph::from_cached_parts(CsrParts {
            offsets,
            targets,
            weights,
            weighted_degrees,
            self_loops,
            total_weight: g.total_edge_weight(),
            num_edges: g.edge_count(),
        }) {
            Ok(g) => g,
            Err(e) => panic!("relabeling produced an inconsistent CSR graph: {e}"),
        }
    }

    /// Maps a partition over the *relabeled* graph back to original ids:
    /// `out[old] = p[new_of_old[old]]`. Community ids are unchanged, so
    /// modularity and community sizes are identical by construction.
    pub fn to_original(&self, p: &Partition) -> Partition {
        assert_eq!(p.len(), self.len());
        Partition::from_vec(
            self.new_of_old
                .iter()
                .map(|&new| p.subset_of(new))
                .collect(),
        )
    }

    /// Maps a partition over the *original* graph to new ids:
    /// `out[new] = p[old_of_new[new]]`. Inverse of [`Self::to_original`].
    pub fn to_new(&self, p: &Partition) -> Partition {
        assert_eq!(p.len(), self.len());
        Partition::from_vec(
            self.old_of_new
                .iter()
                .map(|&old| p.subset_of(old))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn star_plus_path() -> Graph {
        // Node 3 is the hub (degree 4); 0-1-2 a path hanging off it.
        let mut b = GraphBuilder::new(5);
        b.add_unweighted_edge(3, 0);
        b.add_unweighted_edge(3, 1);
        b.add_unweighted_edge(3, 2);
        b.add_unweighted_edge(3, 4);
        b.add_edge(0, 1, 2.0);
        b.build()
    }

    #[test]
    fn degree_ordered_puts_hub_first() {
        let g = star_plus_path();
        let r = Relabeling::degree_ordered(&g);
        assert_eq!(r.to_new_id(3), 0, "hub gets new id 0");
        // Ties (degree-2 nodes 0 and 1, then degree-1 nodes 2 and 4) break
        // by original id.
        assert_eq!(r.to_new_id(0), 1);
        assert_eq!(r.to_new_id(1), 2);
        assert_eq!(r.to_new_id(2), 3);
        assert_eq!(r.to_new_id(4), 4);
    }

    #[test]
    fn apply_preserves_structure() {
        let g = star_plus_path();
        let r = Relabeling::degree_ordered(&g);
        let h = r.apply(&g);
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(h.total_edge_weight(), g.total_edge_weight());
        // audit:allow(lossy-cast): bounded by the u32 node id space
        for old in 0..g.node_count() as Node {
            let new = r.to_new_id(old);
            assert_eq!(h.degree(new), g.degree(old));
            assert_eq!(h.weighted_degree(new), g.weighted_degree(old));
            let mut want: Vec<Node> = g.neighbors(old).iter().map(|&v| r.to_new_id(v)).collect();
            want.sort_unstable();
            assert_eq!(h.neighbors(new), &want[..]);
            for &v_new in h.neighbors(new) {
                let v_old = r.to_old_id(v_new);
                assert_eq!(h.edge_weight(new, v_new), g.edge_weight(old, v_old));
            }
        }
    }

    #[test]
    fn identity_roundtrip() {
        let g = star_plus_path();
        let r = Relabeling::identity(g.node_count());
        assert!(r.is_identity());
        let h = r.apply(&g);
        // audit:allow(lossy-cast): bounded by the u32 node id space
        for u in 0..g.node_count() as Node {
            assert_eq!(h.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn partition_mapping_roundtrips() {
        let g = star_plus_path();
        let r = Relabeling::degree_ordered(&g);
        let on_new = Partition::from_vec(vec![0, 0, 1, 1, 2]);
        let on_old = r.to_original(&on_new);
        assert_eq!(r.to_new(&on_old), on_new);
        for old in 0..5 {
            assert_eq!(on_old.subset_of(old), on_new.subset_of(r.to_new_id(old)));
        }
    }

    #[test]
    fn from_new_of_old_validates() {
        assert!(Relabeling::from_new_of_old(vec![1, 0, 2]).is_ok());
        let dup = Relabeling::from_new_of_old(vec![0, 0, 2]);
        assert!(dup.unwrap_err().contains("not a permutation"));
        let oob = Relabeling::from_new_of_old(vec![0, 5, 2]);
        assert!(oob.unwrap_err().contains("out of range"));
        let r = Relabeling::from_new_of_old(vec![2, 0, 1]).unwrap();
        assert_eq!(r.old_of_new(), &[1, 2, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let r = Relabeling::degree_ordered(&g);
        assert!(r.is_empty());
        let h = r.apply(&g);
        assert_eq!(h.node_count(), 0);
    }

    #[test]
    fn self_loops_survive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 0, 3.0);
        b.add_unweighted_edge(0, 1);
        b.add_unweighted_edge(1, 2);
        let g = b.build();
        let r = Relabeling::degree_ordered(&g);
        let h = r.apply(&g);
        let new0 = r.to_new_id(0);
        assert_eq!(h.self_loop_weight(new0), 3.0);
        assert_eq!(h.total_edge_weight(), g.total_edge_weight());
        assert_eq!(h.volume(new0), g.volume(0));
    }
}
