//! An atomic `f64` built on `AtomicU64` bit-casting.
//!
//! PLM keeps one incrementally-updated quantity per community — its volume —
//! and updates it concurrently from the parallel move phase (§III-B: "The
//! current implementation only stores and updates the volume of each
//! community"). A compare-and-swap loop over the bit pattern provides the
//! required atomic add without locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `f64` that can be read and updated atomically.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new atomic float.
    #[inline]
    pub fn new(value: f64) -> Self {
        Self {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Loads the current value (relaxed: PLM tolerates stale reads).
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Stores a new value.
    #[inline]
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` and returns the previous value.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically subtracts `delta` and returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, delta: f64) -> f64 {
        self.fetch_add(-delta)
    }
}

impl Clone for AtomicF64 {
    fn clone(&self) -> Self {
        Self::new(self.load())
    }
}

impl From<f64> for AtomicF64 {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn new_load_store() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.fetch_add(2.0), 1.0);
        assert_eq!(a.load(), 3.0);
        assert_eq!(a.fetch_sub(0.5), 3.0);
        assert_eq!(a.load(), 2.5);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let a = AtomicF64::new(0.0);
        (0..10_000).into_par_iter().for_each(|_| {
            a.fetch_add(1.0);
        });
        assert_eq!(a.load(), 10_000.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicF64::default().load(), 0.0);
    }

    #[test]
    fn clone_snapshots_value() {
        let a = AtomicF64::new(7.0);
        let b = a.clone();
        a.store(9.0);
        assert_eq!(b.load(), 7.0);
    }
}
