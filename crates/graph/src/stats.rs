//! Graph summary statistics — the columns of the paper's Table I.

use crate::clustering::sampled_average_local_clustering;
use crate::components::ConnectedComponents;
use crate::graph::Graph;

/// The structural overview reported per instance in Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of undirected edges `m`.
    pub edges: usize,
    /// Maximum degree (`max.d.` — load-balancing indicator).
    pub max_degree: usize,
    /// Number of connected components (`comp.`).
    pub components: usize,
    /// Average local clustering coefficient (`LCC` — density indicator).
    pub avg_lcc: f64,
}

/// Controls for [`summarize`].
#[derive(Clone, Copy, Debug)]
pub struct SummaryOptions {
    /// Max nodes sampled for the LCC estimate (exact when `n` is below this).
    pub lcc_sample: usize,
    /// RNG seed for the LCC sample.
    pub seed: u64,
}

impl Default for SummaryOptions {
    fn default() -> Self {
        Self {
            lcc_sample: 20_000,
            seed: 1,
        }
    }
}

/// Computes the Table-I row for `g`.
pub fn summarize(g: &Graph, opts: SummaryOptions) -> GraphSummary {
    GraphSummary {
        nodes: g.node_count(),
        edges: g.edge_count(),
        max_degree: g.max_degree(),
        components: ConnectedComponents::run(g).count,
        avg_lcc: sampled_average_local_clustering(g, opts.lcc_sample, opts.seed),
    }
}

/// Mean unweighted degree `2m / n` (0 for the empty graph).
pub fn average_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    // each non-loop edge contributes 2 endpoint slots, loops contribute 1
    let endpoint_slots: usize = g.nodes().map(|u| g.degree(u)).sum();
    endpoint_slots as f64 / g.node_count() as f64
}

/// Degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for u in g.nodes() {
        hist[g.degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn summary_of_two_triangles() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let s = summarize(&g, SummaryOptions::default());
        assert_eq!(
            s,
            GraphSummary {
                nodes: 6,
                edges: 6,
                max_degree: 2,
                components: 2,
                avg_lcc: 1.0
            }
        );
    }

    #[test]
    fn average_degree_path() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert!((average_degree(&g) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_star() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(degree_histogram(&g), vec![0, 3, 0, 1]);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build();
        let s = summarize(&g, SummaryOptions::default());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(average_degree(&g), 0.0);
    }
}
