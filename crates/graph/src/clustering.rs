//! Local clustering coefficients (the `LCC` column of Table I).
//!
//! The local clustering coefficient of a node is the fraction of closed
//! wedges among its neighbor pairs. Triangles are counted by intersecting
//! sorted adjacency rows, parallel over nodes. For massive graphs an optional
//! uniform node sample bounds the cost.

use crate::graph::{Graph, Node};
use rayon::prelude::*;

/// Number of triangles through `u` (self-loops ignored).
fn triangles_at(g: &Graph, u: Node) -> u64 {
    let nu: Vec<Node> = g.neighbors(u).iter().copied().filter(|&v| v != u).collect();
    let mut count = 0u64;
    for &v in &nu {
        // count common neighbors of u and v, both adjacency rows sorted
        let nv = g.neighbors(v);
        let (mut i, mut j) = (0usize, 0usize);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if nu[i] != u && nu[i] != v {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    // every triangle at u counted once per incident neighbor edge direction
    count / 2
}

/// Local clustering coefficient of node `u` in `[0, 1]`.
pub fn local_clustering_coefficient(g: &Graph, u: Node) -> f64 {
    let d = g.neighbors(u).iter().filter(|&&v| v != u).count();
    if d < 2 {
        return 0.0;
    }
    let wedges = (d * (d - 1) / 2) as f64;
    triangles_at(g, u) as f64 / wedges
}

/// Average local clustering coefficient over all nodes (exact, parallel).
pub fn average_local_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = g
        .par_nodes()
        .map(|u| local_clustering_coefficient(g, u))
        .sum();
    sum / n as f64
}

/// Approximate average LCC from a uniform sample of `sample` nodes
/// (deterministic given `seed`). Exact if `sample >= n`.
pub fn sampled_average_local_clustering(g: &Graph, sample: usize, seed: u64) -> f64 {
    use rand::{rngs::SmallRng, seq::index::sample as index_sample, SeedableRng};
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    if sample >= n {
        return average_local_clustering(g);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let picks = index_sample(&mut rng, n, sample).into_vec();
    let sum: f64 = picks
        .par_iter()
        .map(|&u| local_clustering_coefficient(g, u as Node))
        .sum();
    sum / sample as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_has_full_clustering() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        for u in g.nodes() {
            assert_eq!(local_clustering_coefficient(&g, u), 1.0);
        }
        assert_eq!(average_local_clustering(&g), 1.0);
    }

    #[test]
    fn path_has_zero_clustering() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(average_local_clustering(&g), 0.0);
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: LCC(1)=1, LCC(3)=1, LCC(0)=LCC(2)=2/3
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert!((local_clustering_coefficient(&g, 1) - 1.0).abs() < 1e-12);
        assert!((local_clustering_coefficient(&g, 0) - 2.0 / 3.0).abs() < 1e-12);
        let expect = (1.0 + 1.0 + 2.0 / 3.0 + 2.0 / 3.0) / 4.0;
        assert!((average_local_clustering(&g) - expect).abs() < 1e-12);
    }

    #[test]
    fn degree_one_nodes_count_zero() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(local_clustering_coefficient(&g, 1), 0.0);
        assert_eq!(local_clustering_coefficient(&g, 0), 0.0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 0, 9.0);
        let g = b.build();
        assert_eq!(local_clustering_coefficient(&g, 0), 1.0);
    }

    #[test]
    fn sampled_equals_exact_when_sample_covers() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let exact = average_local_clustering(&g);
        assert_eq!(sampled_average_local_clustering(&g, 100, 1), exact);
    }

    #[test]
    fn sampled_is_close_on_clique() {
        let mut b = GraphBuilder::new(20);
        for u in 0..20u32 {
            for v in (u + 1)..20 {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.build();
        assert!((sampled_average_local_clustering(&g, 5, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(average_local_clustering(&g), 0.0);
        assert_eq!(sampled_average_local_clustering(&g, 10, 0), 0.0);
    }
}
