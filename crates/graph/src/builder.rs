//! Incremental graph construction.
//!
//! [`GraphBuilder`] accumulates edges in any order and assembles the CSR
//! [`Graph`] fully in parallel and in place: per-thread degree histograms
//! merged with a parallel prefix sum, a partitioned scatter where each
//! thread owns a disjoint node range (and therefore a disjoint contiguous
//! region of the flat arrays — no `unsafe`, no atomics), in-place per-row
//! sort + duplicate merge, and compaction driven by a second prefix sum.
//! Parallel edges are merged by summing their weights — the convention
//! graph coarsening relies on (§III-B) — in a canonical order (sorted by
//! neighbor, then weight bit pattern), so the merged `f64` is bit-identical
//! regardless of edge insertion order. See DESIGN.md §10.

use crate::graph::{Graph, Node};
use crate::parallel::{chunk_ranges, exclusive_prefix_sum, split_by_ranges};
use rayon::prelude::*;

/// Below this many pending edges the assembly runs as a single part; the
/// parallel machinery degenerates to the sequential loop without spawning.
const MIN_EDGES_PER_PART: usize = 1 << 13;

/// Builds a [`Graph`] from a stream of edges.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Edges as added, canonicalized to `u <= v`.
    edges: Vec<(Node, Node, f64)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "node count exceeds u32 id space");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before duplicate merging).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight `w`. Duplicate edges are
    /// merged at build time by summing weights. Panics if an endpoint is out
    /// of range or the weight is not finite and positive.
    pub fn add_edge(&mut self, u: Node, v: Node, w: f64) {
        assert!((u as usize) < self.n, "node {u} out of range");
        assert!((v as usize) < self.n, "node {v} out of range");
        assert!(
            w.is_finite() && w > 0.0,
            "edge weight must be positive and finite"
        );
        self.edges.push(if u <= v { (u, v, w) } else { (v, u, w) });
    }

    /// Adds an unweighted (weight 1) edge.
    #[inline]
    pub fn add_unweighted_edge(&mut self, u: Node, v: Node) {
        self.add_edge(u, v, 1.0);
    }

    /// Bulk-adds unweighted edges.
    pub fn extend_unweighted(&mut self, edges: impl IntoIterator<Item = (Node, Node)>) {
        for (u, v) in edges {
            self.add_unweighted_edge(u, v);
        }
    }

    /// Bulk-adds weighted edges from a parallel iterator: validation and
    /// canonicalization run on the worker threads and the per-part results
    /// concatenate in input order, so generators and parsers can feed
    /// edges straight from rayon without a serial `add_edge` loop.
    /// Panics (propagated from the workers) on the same conditions as
    /// [`add_edge`](Self::add_edge).
    pub fn par_extend<P>(&mut self, edges: P)
    where
        P: ParallelIterator<Item = (Node, Node, f64)>,
    {
        let n = self.n;
        let mut canon: Vec<(Node, Node, f64)> = edges
            .map(move |(u, v, w)| {
                assert!((u as usize) < n, "node {u} out of range");
                assert!((v as usize) < n, "node {v} out of range");
                assert!(
                    w.is_finite() && w > 0.0,
                    "edge weight must be positive and finite"
                );
                if u <= v {
                    (u, v, w)
                } else {
                    (v, u, w)
                }
            })
            .collect();
        if self.edges.is_empty() {
            self.edges = canon;
        } else {
            self.edges.append(&mut canon);
        }
    }

    /// Bulk-adds an owned edge vector: validation and canonicalization run
    /// in place (a parallel read-modify-write pass, no intermediate
    /// collect), and the vector itself is moved into the builder when it
    /// is the first batch — the zero-copy path the chunked parsers use to
    /// hand over their per-chunk edge lists. Panics on the same conditions
    /// as [`add_edge`](Self::add_edge).
    pub fn extend_edges(&mut self, mut edges: Vec<(Node, Node, f64)>) {
        let n = self.n;
        edges.par_iter_mut().for_each(|e| {
            let (u, v, w) = *e;
            assert!((u as usize) < n, "node {u} out of range");
            assert!((v as usize) < n, "node {v} out of range");
            assert!(
                w.is_finite() && w > 0.0,
                "edge weight must be positive and finite"
            );
            if u > v {
                *e = (v, u, w);
            }
        });
        self.take_or_append(edges);
    }

    /// Moves an edge vector into the builder with no validation pass:
    /// every edge must already be canonical (`u <= v`) with in-range
    /// endpoints and a positive finite weight — the contract the chunked
    /// parsers establish while parsing (a METIS adjacency line for node
    /// `u` only keeps neighbors `v >= u`, range-checked on the spot).
    /// The contract is re-checked in debug builds; use
    /// [`extend_edges`](Self::extend_edges) for edges of unknown
    /// provenance.
    pub fn extend_canonical(&mut self, edges: Vec<(Node, Node, f64)>) {
        #[cfg(debug_assertions)]
        for &(u, v, w) in &edges {
            debug_assert!(u <= v, "edge ({u}, {v}) is not canonical");
            debug_assert!((v as usize) < self.n, "node {v} out of range");
            debug_assert!(
                w.is_finite() && w > 0.0,
                "edge weight must be positive and finite"
            );
        }
        self.take_or_append(edges);
    }

    /// Keeps the zero-copy promise of the bulk paths: the first batch's
    /// vector is moved in whole (unless a larger reservation already
    /// exists), later batches append.
    fn take_or_append(&mut self, mut edges: Vec<(Node, Node, f64)>) {
        if self.edges.is_empty() && self.edges.capacity() < edges.len() {
            self.edges = edges;
        } else {
            self.edges.append(&mut edges);
        }
    }

    /// Convenience: build a graph straight from a parallel edge stream
    /// (weighted). The parallel counterpart of
    /// [`from_weighted_edges`](Self::from_weighted_edges).
    pub fn from_edges_par<P>(n: usize, edges: P) -> Graph
    where
        P: ParallelIterator<Item = (Node, Node, f64)>,
    {
        let mut b = Self::new(n);
        b.par_extend(edges);
        b.build()
    }

    /// Consumes the builder and assembles the CSR graph in parallel.
    ///
    /// The result is bit-identical to [`build_reference`](Self::build_reference)
    /// for every edge multiset, independent of insertion order and thread
    /// count: rows are sorted by `(neighbor, weight bit pattern)` before
    /// duplicate weights are summed, which fixes one canonical summation
    /// order per row.
    pub fn build(self) -> Graph {
        parcom_guard::faultpoint!("graph/csr-assembly");
        let n = self.n;
        let edges = self.edges;
        let m = edges.len();

        // Histogram counts are u32; cap part sizes so a per-part count can
        // never overflow, and leave the (out-of-memory-territory) huge-m
        // case to the reference assembly.
        if m >= (1usize << 31) {
            return Self { n, edges }.build_reference();
        }

        let threads = rayon::current_num_threads().max(1);
        let parts = threads.min(m.div_ceil(MIN_EDGES_PER_PART)).max(1);

        // Phase 1a: per-part degree histograms over disjoint edge chunks.
        let edge_ranges = chunk_ranges(m, parts);
        let histograms: Vec<Vec<u32>> = edge_ranges
            .par_iter()
            .map(|r| {
                let mut counts = vec![0u32; n];
                for &(u, v, _) in &edges[r.clone()] {
                    counts[u as usize] += 1;
                    if u != v {
                        counts[v as usize] += 1;
                    }
                }
                counts
            })
            .collect();

        // Phase 1b: merge histograms into per-node degrees, parallel over
        // disjoint node ranges.
        let node_ranges = chunk_ranges(n, parts);
        let mut degree = vec![0u32; n];
        {
            let pieces = split_by_ranges(&mut degree, &node_ranges);
            node_ranges
                .iter()
                .zip(pieces)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|(r, piece)| {
                    for h in &histograms {
                        for (slot, &c) in piece.iter_mut().zip(&h[r.clone()]) {
                            *slot += c;
                        }
                    }
                });
        }
        drop(histograms);

        // Phase 1c: row offsets via a parallel exclusive prefix sum.
        let offsets = exclusive_prefix_sum(&degree, parts);
        drop(degree);
        let total = offsets[n];

        // Phase 2+3: partitioned scatter, then in-place per-row sort and
        // duplicate merge. Each part owns a contiguous node range and hence
        // a contiguous region of the flat arrays; it scans the whole edge
        // list but writes only rows it owns, in insertion order, so the
        // scatter itself is deterministic. `merged_len[u]` is the row length
        // after duplicate merging.
        let mut targets = vec![0 as Node; total];
        let mut weights = vec![0.0f64; total];
        let mut merged_len = vec![0u32; n];
        {
            let region_bounds: Vec<std::ops::Range<usize>> = node_ranges
                .iter()
                .map(|r| offsets[r.start]..offsets[r.end])
                .collect();
            let t_regions = split_by_ranges(&mut targets, &region_bounds);
            let w_regions = split_by_ranges(&mut weights, &region_bounds);
            let l_regions = split_by_ranges(&mut merged_len, &node_ranges);
            let edges = &edges;
            let offsets = &offsets;
            node_ranges
                .iter()
                .zip(t_regions)
                .zip(w_regions)
                .zip(l_regions)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|(((nodes, t_reg), w_reg), l_reg)| {
                    let base = offsets[nodes.start];
                    // Region-relative write cursors, one per owned node.
                    let mut cursor: Vec<usize> = offsets[nodes.start..nodes.end]
                        .iter()
                        .map(|&o| o - base)
                        .collect();
                    let mut place = |node: Node, other: Node, w: f64| {
                        let i = node as usize - nodes.start;
                        let at = cursor[i];
                        t_reg[at] = other;
                        w_reg[at] = w;
                        cursor[i] = at + 1;
                    };
                    for &(u, v, w) in edges {
                        if nodes.contains(&(u as usize)) {
                            place(u, v, w);
                        }
                        if u != v && nodes.contains(&(v as usize)) {
                            place(v, u, w);
                        }
                    }

                    // Per-row sort + merge, reusing one scratch buffer for
                    // the whole region (no per-row allocation). Sorting by
                    // (neighbor, weight bits) fixes the duplicate summation
                    // order, making the merged weight order-independent.
                    let mut scratch: Vec<(Node, f64)> = Vec::new();
                    for u in nodes.clone() {
                        let row = offsets[u] - base..offsets[u + 1] - base;
                        scratch.clear();
                        scratch.extend(
                            t_reg[row.clone()]
                                .iter()
                                .copied()
                                .zip(w_reg[row.clone()].iter().copied()),
                        );
                        scratch.sort_unstable_by_key(|&(v, w)| (v, w.to_bits()));
                        let mut out = row.start;
                        for &(v, w) in scratch.iter() {
                            if out > row.start && t_reg[out - 1] == v {
                                w_reg[out - 1] += w;
                            } else {
                                t_reg[out] = v;
                                w_reg[out] = w;
                                out += 1;
                            }
                        }
                        l_reg[u - nodes.start] = (out - row.start) as u32;
                    }

                    // Phase 4a: region-local compaction — shift merged rows
                    // left so the region's live entries are contiguous at
                    // its base. Pure no-op when nothing merged.
                    let mut dst = 0usize;
                    for u in nodes.clone() {
                        let src = offsets[u] - base;
                        let len = l_reg[u - nodes.start] as usize;
                        if src != dst {
                            t_reg.copy_within(src..src + len, dst);
                            w_reg.copy_within(src..src + len, dst);
                        }
                        dst += len;
                    }
                });
        }
        drop(edges);

        // Phase 4b: final offsets via the second prefix sum, then stitch
        // the per-region compacted blocks together. Every block moves left
        // (compaction only shrinks), so in-order `copy_within` is safe and
        // no reassembly allocation is needed.
        let new_offsets = exclusive_prefix_sum(&merged_len, parts);
        let new_total = new_offsets[n];
        if new_total != total {
            for r in &node_ranges {
                let src = offsets[r.start];
                let dst = new_offsets[r.start];
                let len = new_offsets[r.end] - new_offsets[r.start];
                if src != dst && len > 0 {
                    targets.copy_within(src..src + len, dst);
                    weights.copy_within(src..src + len, dst);
                }
            }
            targets.truncate(new_total);
            weights.truncate(new_total);
        }

        Graph::from_csr(new_offsets, targets, weights)
    }

    /// The retained sequential reference assembly (the pre-parallel
    /// implementation, plus the canonical duplicate ordering): counting
    /// sort into rows, per-row sort by `(neighbor, weight bits)`, merge by
    /// summing, reassemble. Differential tests pin [`build`](Self::build)
    /// against this, and the `ingest` benchmarks use it as the baseline.
    pub fn build_reference(self) -> Graph {
        let n = self.n;
        let edges = self.edges;

        // Count row sizes: each non-loop edge lands in both rows, loops once.
        let mut counts = vec![0usize; n + 1];
        for &(u, v, _) in &edges {
            counts[u as usize + 1] += 1;
            if u != v {
                counts[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts; // offsets[u]..offsets[u+1] is row u (after scatter)

        // Scatter.
        let total = *offsets.last().unwrap();
        let mut targets = vec![0 as Node; total];
        let mut weights = vec![0.0f64; total];
        let mut cursor = offsets.clone();
        for &(u, v, w) in &edges {
            let i = cursor[u as usize];
            targets[i] = v;
            weights[i] = w;
            cursor[u as usize] += 1;
            if u != v {
                let j = cursor[v as usize];
                targets[j] = u;
                weights[j] = w;
                cursor[v as usize] += 1;
            }
        }

        // Per-row sort + merge duplicates. Sorting by (neighbor, weight
        // bits) fixes the summation order of parallel edges, so the merged
        // f64 cannot depend on insertion order (float addition is not
        // associative).
        let mut rows: Vec<(Vec<Node>, Vec<f64>)> = Vec::with_capacity(n);
        for u in 0..n {
            let row = offsets[u]..offsets[u + 1];
            let mut pairs: Vec<(Node, f64)> = targets[row.clone()]
                .iter()
                .copied()
                .zip(weights[row].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(v, w)| (v, w.to_bits()));
            let mut ts = Vec::with_capacity(pairs.len());
            let mut ws: Vec<f64> = Vec::with_capacity(pairs.len());
            for (v, w) in pairs {
                if ts.last() == Some(&v) {
                    *ws.last_mut().unwrap() += w;
                } else {
                    ts.push(v);
                    ws.push(w);
                }
            }
            rows.push((ts, ws));
        }

        // Reassemble compacted CSR.
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0usize);
        let mut acc = 0usize;
        for (ts, _) in &rows {
            acc += ts.len();
            new_offsets.push(acc);
        }
        let mut new_targets = Vec::with_capacity(acc);
        let mut new_weights = Vec::with_capacity(acc);
        for (ts, ws) in rows.drain(..) {
            new_targets.extend(ts);
            new_weights.extend(ws);
        }

        Graph::from_csr(new_offsets, new_targets, new_weights)
    }

    /// Convenience: build a graph straight from an unweighted edge list.
    pub fn from_edges(n: usize, edges: &[(Node, Node)]) -> Graph {
        let mut b = Self::with_capacity(n, edges.len());
        for &(u, v) in edges {
            b.add_unweighted_edge(u, v);
        }
        b.build()
    }

    /// Convenience: build a graph from a weighted edge list.
    pub fn from_weighted_edges(n: usize, edges: &[(Node, Node, f64)]) -> Graph {
        let mut b = Self::with_capacity(n, edges.len());
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_path() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.check_consistency());
    }

    #[test]
    fn merges_parallel_edges_by_summing() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 2.5);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
        assert_eq!(g.total_edge_weight(), 3.5);
    }

    #[test]
    fn merges_duplicate_self_loops() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 0, 2.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.self_loop_weight(0), 3.0);
        assert_eq!(g.volume(0), 6.0);
        assert_eq!(g.total_edge_weight(), 3.0);
    }

    #[test]
    fn edge_order_does_not_matter() {
        let g1 = GraphBuilder::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let g2 = GraphBuilder::from_edges(4, &[(1, 2), (0, 1), (3, 2)]);
        for u in g1.nodes() {
            assert_eq!(g1.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    fn duplicate_merge_is_order_independent_bitwise() {
        // Summing f64 is not associative: these three weights produce
        // different bit patterns depending on addition order, so the
        // builder must fix one canonical order.
        let ws = [0.1, 0.2, 0.3, 1e-17, 1.0];
        let forward = GraphBuilder::from_weighted_edges(
            2,
            &ws.iter().map(|&w| (0, 1, w)).collect::<Vec<_>>(),
        );
        let reversed = GraphBuilder::from_weighted_edges(
            2,
            &ws.iter().rev().map(|&w| (1, 0, w)).collect::<Vec<_>>(),
        );
        let a = forward.edge_weight(0, 1).unwrap();
        let b = reversed.edge_weight(0, 1).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        for u in forward.nodes() {
            assert_eq!(forward.neighbors(u), reversed.neighbors(u));
            let (_, wa) = forward.neighbors_and_weights(u);
            let (_, wb) = reversed.neighbors_and_weights(u);
            let bits = |ws: &[f64]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(wa), bits(wb));
        }
    }

    #[test]
    fn parallel_and_reference_builds_are_bit_identical() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 200;
        let mut edges = Vec::new();
        for _ in 0..3000 {
            let u = rng.gen_range(0..n as Node);
            let v = rng.gen_range(0..n as Node);
            edges.push((u, v, rng.gen_range(0.1..2.0)));
        }
        let mut a = GraphBuilder::with_capacity(n, edges.len());
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        for &(u, v, w) in &edges {
            a.add_edge(u, v, w);
            b.add_edge(u, v, w);
        }
        let ga = a.build();
        let gb = b.build_reference();
        assert_eq!(ga.node_count(), gb.node_count());
        assert_eq!(ga.edge_count(), gb.edge_count());
        for u in ga.nodes() {
            let (ta, wa) = ga.neighbors_and_weights(u);
            let (tb, wb) = gb.neighbors_and_weights(u);
            assert_eq!(ta, tb);
            assert_eq!(
                wa.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                wb.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn par_extend_matches_sequential_adds() {
        let edges: Vec<(Node, Node, f64)> = (0..1000)
            .map(|i| ((i % 50) as Node, ((i * 7 + 1) % 50) as Node, 1.5))
            .collect();
        let mut a = GraphBuilder::new(50);
        a.par_extend(edges.clone().into_par_iter());
        let ga = a.build();
        let gb = GraphBuilder::from_weighted_edges(50, &edges);
        for u in ga.nodes() {
            assert_eq!(ga.neighbors(u), gb.neighbors(u));
        }
        assert_eq!(ga.total_edge_weight(), gb.total_edge_weight());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn par_extend_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.par_extend(vec![(0 as Node, 5 as Node, 1.0)].into_par_iter());
    }

    #[test]
    fn from_edges_par_builds() {
        let g = GraphBuilder::from_edges_par(
            3,
            vec![(0 as Node, 1 as Node, 1.0), (1, 2, 1.0)].into_par_iter(),
        );
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nan_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn with_capacity_counts() {
        let mut b = GraphBuilder::with_capacity(3, 10);
        assert_eq!(b.node_count(), 3);
        b.add_unweighted_edge(0, 1);
        assert_eq!(b.pending_edges(), 1);
    }

    #[test]
    fn large_random_graph_is_consistent() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 500;
        let mut b = GraphBuilder::new(n);
        for _ in 0..5000 {
            let u = rng.gen_range(0..n as Node);
            let v = rng.gen_range(0..n as Node);
            b.add_edge(u, v, rng.gen_range(0.1..2.0));
        }
        let g = b.build();
        assert!(g.check_consistency());
        let vol: f64 = g.nodes().map(|u| g.volume(u)).sum();
        assert!((vol - 2.0 * g.total_edge_weight()).abs() < 1e-9 * vol.abs());
    }
}
