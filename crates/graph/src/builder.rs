//! Incremental graph construction.
//!
//! [`GraphBuilder`] accumulates edges in any order and assembles the CSR
//! [`Graph`] in one pass: counting sort into rows (parallel over nodes),
//! per-row sort, and merging of parallel edges by summing their weights —
//! the convention graph coarsening relies on (§III-B).

use crate::graph::{Graph, Node};
use rayon::prelude::*;

/// Builds a [`Graph`] from a stream of edges.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Edges as added, canonicalized to `u <= v`.
    edges: Vec<(Node, Node, f64)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "node count exceeds u32 id space");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before duplicate merging).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight `w`. Duplicate edges are
    /// merged at build time by summing weights. Panics if an endpoint is out
    /// of range or the weight is not finite and positive.
    pub fn add_edge(&mut self, u: Node, v: Node, w: f64) {
        assert!((u as usize) < self.n, "node {u} out of range");
        assert!((v as usize) < self.n, "node {v} out of range");
        assert!(
            w.is_finite() && w > 0.0,
            "edge weight must be positive and finite"
        );
        self.edges.push(if u <= v { (u, v, w) } else { (v, u, w) });
    }

    /// Adds an unweighted (weight 1) edge.
    #[inline]
    pub fn add_unweighted_edge(&mut self, u: Node, v: Node) {
        self.add_edge(u, v, 1.0);
    }

    /// Bulk-adds unweighted edges.
    pub fn extend_unweighted(&mut self, edges: impl IntoIterator<Item = (Node, Node)>) {
        for (u, v) in edges {
            self.add_unweighted_edge(u, v);
        }
    }

    /// Consumes the builder and assembles the CSR graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        let edges = self.edges;

        // Count row sizes: each non-loop edge lands in both rows, loops once.
        let mut counts = vec![0usize; n + 1];
        for &(u, v, _) in &edges {
            counts[u as usize + 1] += 1;
            if u != v {
                counts[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts; // offsets[u]..offsets[u+1] is row u (after scatter)

        // Scatter.
        let total = *offsets.last().unwrap();
        let mut targets = vec![0 as Node; total];
        let mut weights = vec![0.0f64; total];
        let mut cursor = offsets.clone();
        for &(u, v, w) in &edges {
            let i = cursor[u as usize];
            targets[i] = v;
            weights[i] = w;
            cursor[u as usize] += 1;
            if u != v {
                let j = cursor[v as usize];
                targets[j] = u;
                weights[j] = w;
                cursor[v as usize] += 1;
            }
        }

        // Per-row sort + merge duplicates, in parallel. Each row is an
        // independent slice, so split the flat arrays row by row.
        let mut rows: Vec<(Vec<Node>, Vec<f64>)> = {
            let mut t_rest: &mut [Node] = &mut targets;
            let mut w_rest: &mut [f64] = &mut weights;
            let mut slices = Vec::with_capacity(n);
            for u in 0..n {
                let len = offsets[u + 1] - offsets[u];
                let (t_row, t_next) = t_rest.split_at_mut(len);
                let (w_row, w_next) = w_rest.split_at_mut(len);
                t_rest = t_next;
                w_rest = w_next;
                slices.push((t_row, w_row));
            }
            slices
                .into_par_iter()
                .map(|(t_row, w_row)| {
                    let mut pairs: Vec<(Node, f64)> =
                        t_row.iter().copied().zip(w_row.iter().copied()).collect();
                    pairs.sort_unstable_by_key(|&(v, _)| v);
                    let mut ts = Vec::with_capacity(pairs.len());
                    let mut ws = Vec::with_capacity(pairs.len());
                    for (v, w) in pairs {
                        if ts.last() == Some(&v) {
                            *ws.last_mut().unwrap() += w;
                        } else {
                            ts.push(v);
                            ws.push(w);
                        }
                    }
                    (ts, ws)
                })
                .collect()
        };

        // Reassemble compacted CSR.
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0usize);
        let mut acc = 0usize;
        for (ts, _) in &rows {
            acc += ts.len();
            new_offsets.push(acc);
        }
        let mut new_targets = Vec::with_capacity(acc);
        let mut new_weights = Vec::with_capacity(acc);
        for (ts, ws) in rows.drain(..) {
            new_targets.extend(ts);
            new_weights.extend(ws);
        }

        Graph::from_csr(new_offsets, new_targets, new_weights)
    }

    /// Convenience: build a graph straight from an unweighted edge list.
    pub fn from_edges(n: usize, edges: &[(Node, Node)]) -> Graph {
        let mut b = Self::with_capacity(n, edges.len());
        for &(u, v) in edges {
            b.add_unweighted_edge(u, v);
        }
        b.build()
    }

    /// Convenience: build a graph from a weighted edge list.
    pub fn from_weighted_edges(n: usize, edges: &[(Node, Node, f64)]) -> Graph {
        let mut b = Self::with_capacity(n, edges.len());
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_path() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.check_consistency());
    }

    #[test]
    fn merges_parallel_edges_by_summing() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 2.5);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
        assert_eq!(g.total_edge_weight(), 3.5);
    }

    #[test]
    fn merges_duplicate_self_loops() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 0, 2.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.self_loop_weight(0), 3.0);
        assert_eq!(g.volume(0), 6.0);
        assert_eq!(g.total_edge_weight(), 3.0);
    }

    #[test]
    fn edge_order_does_not_matter() {
        let g1 = GraphBuilder::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let g2 = GraphBuilder::from_edges(4, &[(1, 2), (0, 1), (3, 2)]);
        for u in g1.nodes() {
            assert_eq!(g1.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nan_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn with_capacity_counts() {
        let mut b = GraphBuilder::with_capacity(3, 10);
        assert_eq!(b.node_count(), 3);
        b.add_unweighted_edge(0, 1);
        assert_eq!(b.pending_edges(), 1);
    }

    #[test]
    fn large_random_graph_is_consistent() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 500;
        let mut b = GraphBuilder::new(n);
        for _ in 0..5000 {
            let u = rng.gen_range(0..n as Node);
            let v = rng.gen_range(0..n as Node);
            b.add_edge(u, v, rng.gen_range(0.1..2.0));
        }
        let g = b.build();
        assert!(g.check_consistency());
        let vol: f64 = g.nodes().map(|u| g.volume(u)).sum();
        assert!((vol - 2.0 * g.total_edge_weight()).abs() < 1e-9 * vol.abs());
    }
}
