//! Parallel graph coarsening by community contraction (§III-B).
//!
//! Given a graph `G` and a partition ζ, every community becomes a single
//! coarse node. An edge between coarse nodes carries the summed weight of all
//! inter-community edges; intra-community weight (including existing
//! self-loops) becomes a self-loop on the coarse node. The mapping π from
//! fine to coarse nodes is returned so solutions on the coarse graph can be
//! *prolonged* back.
//!
//! The parallel scheme mirrors the paper's: threads scan disjoint portions of
//! the edge set, producing partial coarse edge lists that are then merged —
//! here by a parallel sort over `(cu, cv)` keys followed by a segmented
//! weight reduction directly into CSR.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Node};
use crate::hashing::FxHashMap;
use crate::partition::Partition;
use parcom_obs::Recorder;
use rayon::prelude::*;

/// Result of contracting a graph by a partition.
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The contracted graph `G'` (one node per non-empty community).
    pub coarse: Graph,
    /// π: fine node -> coarse node (dense ids `0..coarse.node_count()`).
    pub fine_to_coarse: Vec<Node>,
}

impl Coarsening {
    /// Prolongs a solution on the coarse graph to the fine graph:
    /// `ζ(v) = ζ'(π(v))`.
    // audit:allow(budget-propagation): one bounded parallel map per level; callers check the budget at level boundaries
    pub fn prolong(&self, coarse_solution: &Partition) -> Partition {
        assert_eq!(coarse_solution.len(), self.coarse.node_count());
        let data: Vec<u32> = self
            .fine_to_coarse
            .par_iter()
            .map(|&c| coarse_solution.subset_of(c))
            .collect();
        Partition::from_vec(data)
    }
}

/// Contracts `g` according to `zeta` (parallel).
///
/// # Examples
///
/// ```
/// use parcom_graph::{coarsen, GraphBuilder, Partition};
///
/// // a path 0-1-2-3 contracted into two pairs
/// let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let zeta = Partition::from_vec(vec![0, 0, 1, 1]);
/// let c = coarsen(&g, &zeta);
///
/// assert_eq!(c.coarse.node_count(), 2);
/// assert_eq!(c.coarse.self_loop_weight(0), 1.0); // intra edge 0-1
/// assert_eq!(c.coarse.edge_weight(0, 1), Some(1.0)); // the cut edge 1-2
/// ```
pub fn coarsen(g: &Graph, zeta: &Partition) -> Coarsening {
    coarsen_with(g, zeta, &Recorder::disabled())
}

/// [`coarsen`] with phase-level instrumentation: wraps the contraction in
/// a `coarsen` span and records the merge count (fine nodes absorbed into
/// other nodes) plus the coarse graph's size on it. With a disabled
/// recorder this is exactly `coarsen`.
// audit:allow(budget-propagation): one contraction per level; callers check the budget at level boundaries
pub fn coarsen_with(g: &Graph, zeta: &Partition, rec: &Recorder) -> Coarsening {
    assert_eq!(zeta.len(), g.node_count());
    let span = rec.span("coarsen");

    // Dense community ids in first-seen order (the renumbering `compact`
    // applies), written straight into the mapping vector — no clone of the
    // caller's partition, no rewrite of its assignment array.
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    let mut fine_to_coarse: Vec<Node> = Vec::with_capacity(zeta.len());
    for &c in zeta.as_slice() {
        let next = remap.len() as u32; // audit:allow(lossy-cast): bounded by the u32 node id space
        fine_to_coarse.push(*remap.entry(c).or_insert(next));
    }
    let k = remap.len();

    // Each undirected fine edge once, mapped to a canonical coarse pair.
    // rayon's fold gives the per-thread partial edge lists of the paper's
    // scheme; the reduce-by-sort merges them.
    let f2c = &fine_to_coarse;
    let mut coarse_edges: Vec<(Node, Node, f64)> = g
        .par_nodes()
        .flat_map_iter(|u| {
            let cu = f2c[u as usize];
            g.edges_of(u)
                .filter(move |&(v, _)| v >= u)
                .map(move |(v, w)| {
                    let cv = f2c[v as usize];
                    if cu <= cv {
                        (cu, cv, w)
                    } else {
                        (cv, cu, w)
                    }
                })
        })
        .collect();

    // Total order including the weight: an unstable sort may permute
    // equal-key entries differently across thread counts, and the segmented
    // sum below adds floats in sorted order — without the weight in the key
    // the coarse weights (and everything downstream) would not be
    // bit-identical run to run.
    coarse_edges.par_sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));

    parcom_guard::faultpoint!("graph/coarsen-merge");
    // Segmented sum of weights over equal (cu, cv) keys.
    let mut b = GraphBuilder::with_capacity(k, coarse_edges.len().min(k * 8));
    let mut it = coarse_edges.into_iter();
    if let Some((mut cu, mut cv, mut acc)) = it.next() {
        for (u, v, w) in it {
            if u == cu && v == cv {
                acc += w;
            } else {
                b.add_edge(cu, cv, acc);
                cu = u;
                cv = v;
                acc = w;
            }
        }
        b.add_edge(cu, cv, acc);
    }

    let result = Coarsening {
        coarse: b.build(),
        fine_to_coarse,
    };
    span.counter(
        "merges",
        (g.node_count() - result.coarse.node_count()) as u64,
    );
    span.counter("coarse-nodes", result.coarse.node_count() as u64);
    span.counter("coarse-edges", result.coarse.edge_count() as u64);
    #[cfg(any(debug_assertions, feature = "validate"))]
    if let Err(e) = validate_coarsening(g, &result) {
        panic!("coarsen() postcondition violated: {e}");
    }
    result
}

/// Cross-checks a contraction against its fine graph: the mapping covers
/// every fine node with in-range coarse ids, and contraction conserved the
/// total edge weight (inter-community weight moved onto coarse edges,
/// intra-community weight onto self-loops — nothing lost, nothing double
/// counted). Compiled in debug builds or with the `validate` feature.
#[cfg(any(debug_assertions, feature = "validate"))]
pub fn validate_coarsening(fine: &Graph, c: &Coarsening) -> Result<(), String> {
    if c.fine_to_coarse.len() != fine.node_count() {
        return Err(format!(
            "fine-to-coarse mapping covers {} nodes, fine graph has {}",
            c.fine_to_coarse.len(),
            fine.node_count()
        ));
    }
    let k = c.coarse.node_count();
    for (v, &cv) in c.fine_to_coarse.iter().enumerate() {
        if cv as usize >= k {
            return Err(format!(
                "fine node {v} maps to coarse node {cv}, coarse graph has {k} nodes"
            ));
        }
    }
    let fine_total = fine.total_edge_weight();
    let coarse_total = c.coarse.total_edge_weight();
    if (fine_total - coarse_total).abs() > 1e-9 * fine_total.abs().max(1.0) {
        return Err(format!(
            "contraction changed the total edge weight: fine {fine_total}, coarse {coarse_total}"
        ));
    }
    c.coarse.validate()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two triangles joined by one edge; partition = the two triangles.
    fn two_triangles() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let p = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        (g, p)
    }

    #[test]
    fn contracts_to_community_graph() {
        let (g, p) = two_triangles();
        let c = coarsen(&g, &p);
        assert_eq!(c.coarse.node_count(), 2);
        // intra weight 3 per triangle becomes a self-loop; one cut edge
        assert_eq!(c.coarse.self_loop_weight(0), 3.0);
        assert_eq!(c.coarse.self_loop_weight(1), 3.0);
        assert_eq!(c.coarse.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn preserves_total_edge_weight() {
        let (g, p) = two_triangles();
        let c = coarsen(&g, &p);
        assert_eq!(c.coarse.total_edge_weight(), g.total_edge_weight());
    }

    #[test]
    fn preserves_volume_per_community() {
        let (g, p) = two_triangles();
        let c = coarsen(&g, &p);
        for cu in c.coarse.nodes() {
            let fine_vol: f64 = g
                .nodes()
                .filter(|&v| c.fine_to_coarse[v as usize] == cu)
                .map(|v| g.volume(v))
                .sum();
            assert!((c.coarse.volume(cu) - fine_vol).abs() < 1e-12);
        }
    }

    #[test]
    fn singleton_partition_preserves_structure() {
        let (g, _) = two_triangles();
        let c = coarsen(&g, &Partition::singleton(6));
        assert_eq!(c.coarse.node_count(), g.node_count());
        assert_eq!(c.coarse.edge_count(), g.edge_count());
        for u in g.nodes() {
            assert_eq!(
                c.coarse.neighbors(c.fine_to_coarse[u as usize]).len(),
                g.degree(u)
            );
        }
    }

    #[test]
    fn all_in_one_collapses_to_single_loop() {
        let (g, _) = two_triangles();
        let c = coarsen(&g, &Partition::all_in_one(6));
        assert_eq!(c.coarse.node_count(), 1);
        assert_eq!(c.coarse.edge_count(), 1);
        assert_eq!(c.coarse.self_loop_weight(0), 7.0);
    }

    #[test]
    fn handles_noncontiguous_community_ids() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let p = Partition::from_vec(vec![10, 10, 99, 99]);
        let c = coarsen(&g, &p);
        assert_eq!(c.coarse.node_count(), 2);
        assert_eq!(c.coarse.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn prolong_maps_back() {
        let (g, p) = two_triangles();
        let c = coarsen(&g, &p);
        // coarse solution: both communities merge into one
        let coarse_sol = Partition::all_in_one(2);
        let fine = c.prolong(&coarse_sol);
        assert_eq!(fine.len(), g.node_count());
        assert_eq!(fine.number_of_subsets(), 1);

        // identity coarse solution reproduces the original grouping
        let fine2 = c.prolong(&Partition::singleton(2));
        for u in 0..6u32 {
            for v in 0..6u32 {
                assert_eq!(p.in_same_subset(u, v), fine2.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn self_loops_carry_into_coarse_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 2.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let c = coarsen(&g, &Partition::all_in_one(2));
        assert_eq!(c.coarse.self_loop_weight(0), 3.0);
        assert_eq!(c.coarse.total_edge_weight(), g.total_edge_weight());
    }

    #[test]
    fn empty_graph_coarsens() {
        let g = GraphBuilder::new(0).build();
        let c = coarsen(&g, &Partition::singleton(0));
        assert_eq!(c.coarse.node_count(), 0);
    }
}
