//! Fast, non-cryptographic hashing.
//!
//! The offline dependency allowlist does not include `rustc-hash` or `ahash`,
//! so this module hand-rolls the two hash functions the system needs:
//!
//! * [`FxHasher`] — the multiply-based hasher used throughout rustc; a good
//!   default for integer keys in hot paths (neighbor-community maps, coarse
//!   edge aggregation).
//! * [`djb2`] — Bernstein's string hash, used by the paper's EPP ensemble
//!   combiner to map a tuple of `b` community identifiers to a core-community
//!   identifier (§III-D).

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's Fx hash: one multiply and a rotate per word. Extremely fast for
/// integer keys; not HashDoS resistant (acceptable: keys are internal ids).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Bernstein's djb2 hash over a slice of 32-bit words.
///
/// The EPP combiner hashes the vector `(ζ_1(v), …, ζ_b(v))` of base-solution
/// community ids per node; nodes agree on the result iff they agree in every
/// base solution (modulo unlikely collisions), which realizes Eq. (III.2).
#[inline]
pub fn djb2(words: &[u32]) -> u64 {
    let mut hash: u64 = 5381;
    for &w in words {
        // hash * 33 + byte, applied to each byte of the word.
        for b in w.to_le_bytes() {
            hash = hash.wrapping_mul(33).wrapping_add(b as u64);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn fx_differs_for_different_keys() {
        assert_ne!(hash_one(1u32), hash_one(2u32));
        assert_ne!(hash_one(0u64), hash_one(1u64));
    }

    #[test]
    fn fx_is_deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one((7u32, 9u32)), hash_one((7u32, 9u32)));
    }

    #[test]
    fn fx_handles_odd_byte_lengths() {
        assert_ne!(
            hash_one([1u8, 2, 3].as_slice()),
            hash_one([1u8, 2].as_slice())
        );
    }

    #[test]
    fn fx_map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn djb2_matches_reference_values() {
        // djb2 of empty input is the initial basis.
        assert_eq!(djb2(&[]), 5381);
        // One zero word = four zero bytes: ((5381*33)*33)*33)*33.
        let mut h: u64 = 5381;
        for _ in 0..4 {
            h = h.wrapping_mul(33);
        }
        assert_eq!(djb2(&[0]), h);
    }

    #[test]
    fn djb2_distinguishes_tuples() {
        assert_ne!(djb2(&[1, 2]), djb2(&[2, 1]));
        assert_ne!(djb2(&[1, 2, 3]), djb2(&[1, 2, 4]));
    }

    #[test]
    fn djb2_equal_inputs_equal_outputs() {
        assert_eq!(djb2(&[9, 8, 7]), djb2(&[9, 8, 7]));
    }
}
