//! Degree assortativity (Pearson correlation of endpoint degrees).
//!
//! Complex-network categories differ sharply here: social/coauthorship
//! networks are assortative (hubs link to hubs), internet topologies and
//! web graphs disassortative — one more axis on which the benchmark
//! stand-ins can be validated against their Table I counterparts.

use crate::graph::Graph;

/// Pearson degree assortativity in `[-1, 1]`; `None` when the graph has no
/// edges between distinct nodes or zero degree variance (e.g. regular
/// graphs, where the coefficient is undefined).
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    // sums over directed edge endpoints (each undirected edge twice), which
    // symmetrizes the estimator; self-loops excluded
    let mut m2 = 0.0f64; // number of directed endpoint pairs
    let mut sum_prod = 0.0;
    let mut sum_j = 0.0;
    let mut sum_j2 = 0.0;
    for u in g.nodes() {
        let du = g.degree(u) as f64;
        for &v in g.neighbors(u) {
            if v == u {
                continue;
            }
            let dv = g.degree(v) as f64;
            m2 += 1.0;
            sum_prod += du * dv;
            sum_j += du;
            sum_j2 += du * du;
        }
    }
    if m2 == 0.0 {
        return None;
    }
    let mean_j = sum_j / m2;
    let var = sum_j2 / m2 - mean_j * mean_j;
    if var <= 1e-15 {
        return None;
    }
    let cov = sum_prod / m2 - mean_j * mean_j;
    Some((cov / var).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn star_is_maximally_disassortative() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = degree_assortativity(&g).unwrap();
        assert!(r < -0.99, "star assortativity should be -1, got {r}");
    }

    #[test]
    fn regular_graph_is_undefined() {
        // cycle: every degree 2, zero variance
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(degree_assortativity(&g), None);
    }

    #[test]
    fn edgeless_graph_is_undefined() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(degree_assortativity(&g), None);
    }

    #[test]
    fn two_hubs_joined_is_assortative_structure() {
        // two stars whose centers are joined: centers (high deg) link to
        // each other once but mostly to leaves → negative overall
        let g =
            GraphBuilder::from_edges(8, &[(0, 2), (0, 3), (0, 4), (1, 5), (1, 6), (1, 7), (0, 1)]);
        let r = degree_assortativity(&g).unwrap();
        assert!(r < 0.0);
    }

    #[test]
    fn path_with_mixed_degrees_in_range() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = degree_assortativity(&g).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn ba_graphs_are_disassortative() {
        // finite-size BA graphs are mildly disassortative
        let g = crate_test_ba();
        let r = degree_assortativity(&g).unwrap();
        assert!(r < 0.05, "BA should not be assortative, got {r}");
    }

    // local mini-BA to avoid a circular dev-dependency on generators
    fn crate_test_ba() -> crate::Graph {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 400;
        let mut b = GraphBuilder::new(n);
        let mut endpoints: Vec<u32> = vec![0, 1];
        b.add_edge(0, 1, 1.0);
        for u in 2..n as u32 {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            b.add_edge(u, v, 1.0);
            endpoints.push(u);
            endpoints.push(v);
        }
        b.build()
    }

    #[test]
    fn self_loop_only_graph_is_undefined() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 5.0);
        assert_eq!(degree_assortativity(&b.build()), None);
    }

    #[test]
    fn result_is_finite_with_self_loops_present() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(1, 1, 5.0);
        let r = degree_assortativity(&b.build()).unwrap();
        assert!(r.is_finite() && (-1.0..=1.0).contains(&r));
    }
}
