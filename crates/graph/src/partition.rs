//! Community assignments.
//!
//! A [`Partition`] maps every node to a community id, exactly the paper's
//! solution representation: "an array indexed by integer node identifiers and
//! containing integer community identifiers" (§III). [`AtomicPartition`] is
//! the shared-mutable variant the parallel algorithms write concurrently; its
//! relaxed atomic loads/stores reproduce the paper's deliberate benign races
//! (asynchronous label updating) without undefined behavior.

use crate::graph::Node;
use crate::hashing::FxHashMap;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A disjoint community assignment: `data[v]` is the community of node `v`.
///
/// # Examples
///
/// ```
/// use parcom_graph::Partition;
///
/// let mut p = Partition::from_vec(vec![7, 7, 3, 3, 3]);
/// assert!(p.in_same_subset(0, 1));
/// assert_eq!(p.number_of_subsets(), 2);
/// p.compact();
/// assert_eq!(p.as_slice(), &[0, 0, 1, 1, 1]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    data: Vec<u32>,
    /// Exclusive upper bound on community ids in `data`.
    upper: u32,
}

impl Partition {
    /// Every node in its own community: `ζ(v) = v` (the paper's
    /// `ζ_singleton`).
    pub fn singleton(n: usize) -> Self {
        Self {
            data: (0..n as u32).collect(),
            upper: n as u32,
        }
    }

    /// All nodes in one community.
    pub fn all_in_one(n: usize) -> Self {
        Self {
            data: vec![0; n],
            upper: if n == 0 { 0 } else { 1 },
        }
    }

    /// Wraps an explicit assignment vector.
    pub fn from_vec(data: Vec<u32>) -> Self {
        let upper = data.iter().copied().max().map_or(0, |m| m + 1);
        Self { data, upper }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the partition covers no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// ζ(v): community of node `v`.
    #[inline]
    pub fn subset_of(&self, v: Node) -> u32 {
        self.data[v as usize]
    }

    /// Moves node `v` into community `c`.
    #[inline]
    pub fn set(&mut self, v: Node, c: u32) {
        self.data[v as usize] = c;
        if c >= self.upper {
            self.upper = c + 1;
        }
    }

    /// Exclusive upper bound on community ids.
    #[inline]
    pub fn upper_bound(&self) -> u32 {
        self.upper
    }

    /// The raw assignment array.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// Consumes the partition, returning the assignment array.
    pub fn into_vec(self) -> Vec<u32> {
        self.data
    }

    /// Renumbers community ids to the dense range `0..k` (first-seen order)
    /// and returns `k`, the number of non-empty communities.
    pub fn compact(&mut self) -> usize {
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        for c in self.data.iter_mut() {
            let next = remap.len() as u32; // audit:allow(lossy-cast): bounded by the u32 node id space
            let id = *remap.entry(*c).or_insert(next);
            *c = id;
        }
        self.upper = remap.len() as u32; // audit:allow(lossy-cast): bounded by the u32 node id space
        #[cfg(any(debug_assertions, feature = "validate"))]
        if let Err(e) = self.validate_dense() {
            panic!("compact() postcondition violated: {e}");
        }
        remap.len()
    }

    /// Checks the basic invariant: every community id is below
    /// [`Self::upper_bound`]. Compiled in debug builds or with the
    /// `validate` feature.
    #[cfg(any(debug_assertions, feature = "validate"))]
    pub fn validate(&self) -> Result<(), String> {
        for (v, &c) in self.data.iter().enumerate() {
            if c >= self.upper {
                return Err(format!(
                    "node {v} assigned community {c}, upper bound is {}",
                    self.upper
                ));
            }
        }
        Ok(())
    }

    /// Checks [`Self::validate`] plus denseness: community ids form exactly
    /// `0..upper_bound()` with no gaps — the state [`Self::compact`]
    /// guarantees. Compiled in debug builds or with the `validate` feature.
    #[cfg(any(debug_assertions, feature = "validate"))]
    pub fn validate_dense(&self) -> Result<(), String> {
        self.validate()?;
        let mut used = vec![false; self.upper as usize];
        for &c in &self.data {
            used[c as usize] = true;
        }
        if let Some(gap) = used.iter().position(|&u| !u) {
            return Err(format!(
                "community id {gap} is unused but below the upper bound {}",
                self.upper
            ));
        }
        Ok(())
    }

    /// Number of distinct (non-empty) communities. Does not modify ids.
    pub fn number_of_subsets(&self) -> usize {
        let mut seen = vec![false; self.upper as usize];
        let mut count = 0;
        for &c in &self.data {
            if !seen[c as usize] {
                seen[c as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// Sizes of communities, indexed by community id (length `upper_bound()`).
    pub fn subset_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.upper as usize];
        for &c in &self.data {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Member lists per community id (length `upper_bound()`; empty lists for
    /// unused ids). Call [`Self::compact`] first for dense output.
    pub fn members(&self) -> Vec<Vec<Node>> {
        let mut out = vec![Vec::new(); self.upper as usize];
        for (v, &c) in self.data.iter().enumerate() {
            out[c as usize].push(v as Node);
        }
        out
    }

    /// True if `u` and `v` share a community.
    #[inline]
    pub fn in_same_subset(&self, u: Node, v: Node) -> bool {
        self.data[u as usize] == self.data[v as usize]
    }

    /// Whether this assignment is a refinement of `other`: every community of
    /// `self` is contained in a single community of `other`.
    pub fn is_refinement_of(&self, other: &Partition) -> bool {
        debug_assert_eq!(self.len(), other.len());
        let mut rep: FxHashMap<u32, u32> = FxHashMap::default();
        for v in 0..self.len() {
            let mine = self.data[v];
            let theirs = other.data[v];
            match rep.entry(mine) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != theirs {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(theirs);
                }
            }
        }
        true
    }
}

/// A partition whose entries can be read and written concurrently.
///
/// Used as the shared label array of PLP and the shared assignment of PLM's
/// parallel move phase. All accesses are `Relaxed`: the algorithms explicitly
/// tolerate stale values (§III-A, §III-B).
#[derive(Debug)]
pub struct AtomicPartition {
    data: Vec<AtomicU32>,
}

impl AtomicPartition {
    /// Singleton assignment `ζ(v) = v`.
    pub fn singleton(n: usize) -> Self {
        Self {
            data: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Copies an existing partition.
    pub fn from_partition(p: &Partition) -> Self {
        Self {
            data: p.as_slice().iter().map(|&c| AtomicU32::new(c)).collect(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads ζ(v) (relaxed).
    #[inline]
    pub fn get(&self, v: Node) -> u32 {
        self.data[v as usize].load(Ordering::Relaxed)
    }

    /// Writes ζ(v) (relaxed).
    #[inline]
    pub fn set(&self, v: Node, c: u32) {
        self.data[v as usize].store(c, Ordering::Relaxed);
    }

    /// Checks that every concurrently-written entry is below `upper` (for
    /// PLP's label array, `upper` is the node count: labels are node ids).
    /// The shared array is racy by design, but *values* must always be ones
    /// some thread actually wrote — a torn or out-of-range id would mean
    /// the benign-race argument no longer holds. Compiled in debug builds
    /// or with the `validate` feature.
    #[cfg(any(debug_assertions, feature = "validate"))]
    pub fn validate(&self, upper: u32) -> Result<(), String> {
        for (v, a) in self.data.iter().enumerate() {
            let c = a.load(Ordering::Relaxed);
            if c >= upper {
                return Err(format!(
                    "node {v} carries concurrent label {c}, upper bound is {upper}"
                ));
            }
        }
        Ok(())
    }

    /// Snapshot into an owned [`Partition`].
    pub fn to_partition(&self) -> Partition {
        let data: Vec<u32> = self
            .data
            .par_iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        Partition::from_vec(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_assigns_unique_ids() {
        let p = Partition::singleton(4);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(p.number_of_subsets(), 4);
        assert_eq!(p.upper_bound(), 4);
    }

    #[test]
    fn all_in_one() {
        let p = Partition::all_in_one(5);
        assert_eq!(p.number_of_subsets(), 1);
        assert!(p.in_same_subset(0, 4));
    }

    #[test]
    fn set_and_get() {
        let mut p = Partition::singleton(3);
        p.set(0, 2);
        assert_eq!(p.subset_of(0), 2);
        assert!(p.in_same_subset(0, 2));
        p.set(1, 99);
        assert_eq!(p.upper_bound(), 100);
    }

    #[test]
    fn compact_renumbers_densely() {
        let mut p = Partition::from_vec(vec![7, 7, 3, 9, 3]);
        let k = p.compact();
        assert_eq!(k, 3);
        assert_eq!(p.as_slice(), &[0, 0, 1, 2, 1]);
        assert_eq!(p.upper_bound(), 3);
    }

    #[test]
    fn compact_preserves_grouping() {
        let orig = Partition::from_vec(vec![5, 1, 5, 1, 2]);
        let mut p = orig.clone();
        p.compact();
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(orig.in_same_subset(u, v), p.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn subset_sizes_and_members() {
        let p = Partition::from_vec(vec![0, 1, 0, 1, 1]);
        assert_eq!(p.subset_sizes(), vec![2, 3]);
        let members = p.members();
        assert_eq!(members[0], vec![0, 2]);
        assert_eq!(members[1], vec![1, 3, 4]);
    }

    #[test]
    fn refinement_detection() {
        let coarse = Partition::from_vec(vec![0, 0, 0, 1, 1]);
        let fine = Partition::from_vec(vec![0, 1, 1, 2, 2]);
        assert!(fine.is_refinement_of(&coarse));
        assert!(!coarse.is_refinement_of(&fine));
        assert!(coarse.is_refinement_of(&coarse));
    }

    #[test]
    fn empty_partition() {
        let p = Partition::singleton(0);
        assert!(p.is_empty());
        assert_eq!(p.number_of_subsets(), 0);
        assert_eq!(Partition::all_in_one(0).upper_bound(), 0);
    }

    #[test]
    fn validate_accepts_consistent_partitions() {
        assert!(Partition::singleton(5).validate().is_ok());
        assert!(Partition::singleton(5).validate_dense().is_ok());
        assert!(Partition::from_vec(vec![2, 0, 2]).validate().is_ok());
        assert!(Partition::singleton(0).validate_dense().is_ok());
    }

    #[test]
    fn validate_rejects_id_above_upper_bound() {
        // corrupted fixture: an id at the upper bound (struct literal
        // bypasses the maintenance in set()/from_vec())
        let p = Partition {
            data: vec![0, 5, 1],
            upper: 3,
        };
        let err = p.validate().unwrap_err();
        assert!(err.contains("upper bound"), "{err}");
        assert!(p.validate_dense().is_err());
    }

    #[test]
    fn validate_dense_rejects_gaps() {
        // ids < upper but id 1 unused: valid, yet not dense
        let p = Partition {
            data: vec![0, 2, 0],
            upper: 3,
        };
        assert!(p.validate().is_ok());
        let err = p.validate_dense().unwrap_err();
        assert!(err.contains("unused"), "{err}");
    }

    #[test]
    fn atomic_validate_bounds_concurrent_labels() {
        let ap = AtomicPartition::singleton(4);
        assert!(ap.validate(4).is_ok());
        ap.set(2, 9);
        let err = ap.validate(4).unwrap_err();
        assert!(err.contains("concurrent label 9"), "{err}");
    }

    #[test]
    fn atomic_partition_roundtrip() {
        let ap = AtomicPartition::singleton(3);
        ap.set(1, 7);
        assert_eq!(ap.get(1), 7);
        let p = ap.to_partition();
        assert_eq!(p.as_slice(), &[0, 7, 2]);
        assert_eq!(p.upper_bound(), 8);
    }

    #[test]
    fn atomic_from_partition() {
        let p = Partition::from_vec(vec![4, 4, 1]);
        let ap = AtomicPartition::from_partition(&p);
        assert_eq!(ap.len(), 3);
        assert_eq!(ap.get(0), 4);
        assert_eq!(ap.to_partition(), p);
    }

    #[test]
    fn atomic_concurrent_writes() {
        use rayon::prelude::*;
        let ap = AtomicPartition::singleton(1000);
        (0..1000u32).into_par_iter().for_each(|v| ap.set(v, v % 7));
        let p = ap.to_partition();
        for v in 0..1000u32 {
            assert_eq!(p.subset_of(v), v % 7);
        }
    }
}
