//! Deterministic parallel greedy distance-1 coloring with vertex following.
//!
//! The conflict-free PLM move phase (DESIGN.md §14) partitions the nodes
//! into *color classes* — independent sets — and moves one class at a time:
//! within a class no two nodes are adjacent, so every node sees fresh
//! neighbor labels and no two neighbors move in the same step. This module
//! produces that partition once per coarsening level.
//!
//! The coloring is a Jones–Plassmann greedy: every node gets a fixed
//! pseudo-random priority (a splitmix64 hash of its id, so the priority
//! order is a property of the *graph*, not of the thread schedule); each
//! round, the uncolored nodes that are local priority maxima among their
//! uncolored neighbors form an independent set and concurrently pick the
//! smallest color unused by their already-colored neighbors. Because the
//! priorities are fixed and ties break by node id, the resulting colors are
//! bit-identical at any thread count.
//!
//! *Vertex following* (the VFC-Louvain trick) shrinks the color classes:
//! degree-1 nodes always profit from joining their sole neighbor's
//! community, so they are excluded from the coloring entirely and moved as
//! one extra class at the end of each sweep. Two followers are never
//! adjacent — an isolated degree-1 pair is split by id, the smaller
//! endpoint staying in the coloring — so the follower class is itself an
//! independent set.

use crate::graph::{Graph, Node};
use crate::scratch::ScratchPool;
use parcom_guard::{Budget, Termination};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Sentinel for "not colored": followers keep it permanently.
const UNCOLORED: u32 = u32::MAX;

/// The splitmix64 finalizer: a high-quality 64-bit mix used as the fixed
/// per-node priority. Any fixed hash works; this one is cheap and has no
/// fixed point at 0 thanks to the additive constant.
#[inline]
fn priority(u: Node) -> u64 {
    let mut x = (u as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A distance-1 coloring of a graph's non-follower nodes plus the follower
/// set, ready to drive a conflict-free move phase.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// Color of each node; [`UNCOLORED`] for followers.
    colors: Vec<u32>,
    /// `classes[c]` lists the nodes of color `c` in ascending id order.
    classes: Vec<Vec<Node>>,
    /// Degree-1 nodes excluded from the coloring, ascending id order.
    /// Mutually non-adjacent by construction.
    followers: Vec<Node>,
}

impl Coloring {
    /// Colors `g` with an unlimited budget and a private scratch pool.
    pub fn compute(g: &Graph) -> Self {
        match Self::compute_budgeted(g, &ScratchPool::new(), &Budget::unlimited()) {
            Ok(c) => c,
            Err(_) => unreachable!("unlimited budget cannot expire"),
        }
    }

    /// Colors `g`, drawing per-thread scratch maps from `scratch` and
    /// testing `budget` once per coloring round. On expiry the partial
    /// coloring is abandoned (callers fall back to the uncolored state
    /// they were in — for PLM, the current level's assignment).
    pub fn compute_budgeted(
        g: &Graph,
        scratch: &ScratchPool,
        budget: &Budget,
    ) -> Result<Self, Termination> {
        let n = g.node_count();
        if n == 0 {
            return Ok(Self {
                colors: Vec::new(),
                classes: Vec::new(),
                followers: Vec::new(),
            });
        }

        // Non-self degree decides who follows: adjacency rows contain
        // self-loops, which do not constrain the coloring.
        let nonself_degree = |u: Node| g.edges_of(u).filter(|&(v, _)| v != u).count();
        let is_follower = |u: Node| {
            if nonself_degree(u) != 1 {
                return false;
            }
            // Sole neighbor v must stay in the coloring: always true when v
            // has other neighbors; in an isolated degree-1 pair the smaller
            // id is colored and the larger follows.
            let (v, _) = g
                .edges_of(u)
                .find(|&(v, _)| v != u)
                .expect("nonself degree 1");
            nonself_degree(v) != 1 || v < u
        };
        let follower_mask: Vec<bool> = g.par_nodes().map(is_follower).collect();

        let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
        // One forbidden-color scratch slot per possible color: any greedy
        // color is at most the node's degree, so max_degree + 2 covers both
        // the marks and the first-free probe.
        let scratch_cap = g.max_degree() + 2;

        // Nodes still to color, shrinking every round. Filtering the
        // carried-over vector keeps later rounds cheap on the long tail.
        let mut pending: Vec<Node> = g.nodes().filter(|&u| !follower_mask[u as usize]).collect();

        // Below this many pending nodes a round runs inline: the rayon
        // shim spawns scoped OS threads per parallel call, which dwarfs
        // the scan cost on the long tail of small rounds. Both paths
        // visit nodes in the same order and write disjoint slots, so the
        // result is bit-identical either way.
        const SEQUENTIAL_ROUND_CUTOFF: usize = 4096;

        // audit:allow(atomic-ordering): Relaxed is sufficient throughout —
        // within a round the winners are pairwise non-adjacent (no slot is
        // both read and written), and the parallel-scope join between rounds
        // provides the happens-before edge for cross-round visibility.
        let is_winner = |u: Node| {
            let pu = (priority(u), u);
            g.edges_of(u).all(|(v, _)| {
                v == u
                    || follower_mask[v as usize]
                    || colors[v as usize].load(Ordering::Relaxed) != UNCOLORED // audit:allow(atomic-ordering): see above
                    || (priority(v), v) < pu
            })
        };
        let assign = |u: Node, forbidden: &mut crate::scratch::SparseWeightMap| {
            forbidden.clear();
            for (v, _) in g.edges_of(u) {
                if v == u {
                    continue;
                }
                let c = colors[v as usize].load(Ordering::Relaxed); // audit:allow(atomic-ordering): see is_winner
                if c != UNCOLORED {
                    forbidden.add(c, 1.0);
                }
            }
            let mut c = 0u32;
            while forbidden.get(c) != 0.0 {
                c += 1;
            }
            colors[u as usize].store(c, Ordering::Relaxed); // audit:allow(atomic-ordering): see is_winner
        };

        while !pending.is_empty() {
            budget.check()?;
            let sequential =
                pending.len() < SEQUENTIAL_ROUND_CUTOFF || rayon::current_num_threads() == 1;
            // Local priority maxima among *uncolored* non-follower
            // neighbors; ties (hash collisions) break by id. No two winners
            // are adjacent, so they can color themselves concurrently.
            let winners: Vec<Node> = if sequential {
                pending.iter().filter(|&&u| is_winner(u)).copied().collect()
            } else {
                pending
                    .par_iter()
                    .map(|&u| u)
                    .filter(|&u| is_winner(u))
                    .collect()
            };
            debug_assert!(!winners.is_empty(), "JP round must color at least one node");
            if sequential {
                let mut forbidden = scratch.take(scratch_cap);
                for &u in &winners {
                    assign(u, &mut forbidden);
                }
            } else {
                winners.par_iter().for_each_init(
                    || scratch.take(scratch_cap),
                    |forbidden, &u| assign(u, forbidden),
                );
            }
            // audit:allow(atomic-ordering): sequential read after the round's join
            pending.retain(|&u| colors[u as usize].load(Ordering::Relaxed) == UNCOLORED);
        }

        let colors: Vec<u32> = colors.into_iter().map(AtomicU32::into_inner).collect();
        let num_colors = colors
            .iter()
            .filter(|&&c| c != UNCOLORED)
            .max()
            .map_or(0, |&c| c as usize + 1);
        let mut classes: Vec<Vec<Node>> = vec![Vec::new(); num_colors];
        let mut followers = Vec::new();
        for u in g.nodes() {
            if follower_mask[u as usize] {
                followers.push(u);
            } else {
                classes[colors[u as usize] as usize].push(u);
            }
        }
        let result = Self {
            colors,
            classes,
            followers,
        };
        #[cfg(any(debug_assertions, feature = "validate"))]
        if let Err(e) = result.validate(g) {
            panic!("Coloring::compute postcondition violated: {e}");
        }
        Ok(result)
    }

    /// Number of distinct colors used (excluding the follower class).
    pub fn num_colors(&self) -> usize {
        self.classes.len()
    }

    /// The color classes, each an independent set in ascending id order.
    pub fn classes(&self) -> &[Vec<Node>] {
        &self.classes
    }

    /// The degree-1 follower nodes (mutually non-adjacent), ascending ids.
    pub fn followers(&self) -> &[Node] {
        &self.followers
    }

    /// The color of `u`, or `None` when `u` is a follower.
    pub fn color_of(&self, u: Node) -> Option<u32> {
        match self.colors[u as usize] {
            UNCOLORED => None,
            c => Some(c),
        }
    }

    /// Checks the coloring invariants against `g`: classes plus followers
    /// partition the node set, no two adjacent nodes share a color, and no
    /// follower neighbors another follower.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.colors.len() != g.node_count() {
            return Err(format!(
                "coloring covers {} of {} nodes",
                self.colors.len(),
                g.node_count()
            ));
        }
        let mut seen = vec![false; g.node_count()];
        for (c, class) in self.classes.iter().enumerate() {
            for &u in class {
                if self.colors[u as usize] != c as u32 {
                    return Err(format!(
                        "node {u} listed in class {c} but colored elsewhere"
                    ));
                }
                if seen[u as usize] {
                    return Err(format!("node {u} appears in two classes"));
                }
                seen[u as usize] = true;
            }
        }
        for &u in &self.followers {
            if self.colors[u as usize] != UNCOLORED {
                return Err(format!("follower {u} carries a color"));
            }
            if seen[u as usize] {
                return Err(format!("follower {u} also appears in a color class"));
            }
            seen[u as usize] = true;
        }
        if let Some(u) = seen.iter().position(|&s| !s) {
            return Err(format!("node {u} is in no class and not a follower"));
        }
        for u in g.nodes() {
            for (v, _) in g.edges_of(u) {
                if v == u {
                    continue;
                }
                let cu = self.colors[u as usize];
                let cv = self.colors[v as usize];
                if cu != UNCOLORED && cu == cv {
                    return Err(format!("adjacent nodes {u} and {v} share color {cu}"));
                }
                if cu == UNCOLORED && cv == UNCOLORED {
                    return Err(format!("adjacent followers {u} and {v}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn colors_a_path() {
        // 0-1-2-3: endpoints are degree-1 followers, the middle is colored
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = Coloring::compute(&g);
        c.validate(&g).unwrap();
        assert_eq!(c.followers(), &[0, 3]);
        assert_eq!(c.color_of(0), None);
        assert!(c.num_colors() >= 2, "adjacent 1-2 need distinct colors");
    }

    #[test]
    fn triangle_needs_three_colors() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let c = Coloring::compute(&g);
        c.validate(&g).unwrap();
        assert_eq!(c.num_colors(), 3);
        assert!(c.followers().is_empty());
    }

    #[test]
    fn isolated_pair_splits_by_id() {
        // 0-1 alone: 0 colored, 1 follows
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let c = Coloring::compute(&g);
        c.validate(&g).unwrap();
        assert!(c.color_of(0).is_some());
        assert_eq!(c.followers(), &[1]);
    }

    #[test]
    fn star_center_is_colored_leaves_follow() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let c = Coloring::compute(&g);
        c.validate(&g).unwrap();
        assert_eq!(c.followers(), &[1, 2, 3, 4]);
        assert_eq!(c.num_colors(), 1);
    }

    #[test]
    fn self_loops_and_isolated_nodes_do_not_constrain() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 0, 2.0);
        let g = b.build();
        let c = Coloring::compute(&g);
        c.validate(&g).unwrap();
        assert_eq!(c.followers().len(), 0);
        assert_eq!(c.num_colors(), 1, "no real adjacency: one color suffices");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (g, _) = parcom_generators_free::grid(24, 24);
        let reference = Coloring::compute(&g);
        reference.validate(&g).unwrap();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let c = pool.install(|| Coloring::compute(&g));
            assert_eq!(
                c.colors, reference.colors,
                "colors differ at {threads} threads"
            );
            assert_eq!(c.classes, reference.classes);
            assert_eq!(c.followers, reference.followers);
        }
    }

    #[test]
    fn budget_expiry_propagates() {
        let (g, _) = parcom_generators_free::grid(16, 16);
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let r = Coloring::compute_budgeted(&g, &ScratchPool::new(), &budget);
        assert!(r.is_err());
    }

    /// A tiny local generator so this crate's tests need no dependency on
    /// `parcom-generators` (which depends on this crate).
    mod parcom_generators_free {
        use crate::builder::GraphBuilder;
        use crate::graph::Graph;

        pub fn grid(w: u32, h: u32) -> (Graph, ()) {
            let mut b = GraphBuilder::new((w * h) as usize);
            for y in 0..h {
                for x in 0..w {
                    let u = y * w + x;
                    if x + 1 < w {
                        b.add_edge(u, u + 1, 1.0);
                    }
                    if y + 1 < h {
                        b.add_edge(u, u + w, 1.0);
                    }
                }
            }
            (b.build(), ())
        }
    }
}
