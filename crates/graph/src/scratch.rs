//! Generation-stamped scratch maps for the neighborhood-aggregation kernels.
//!
//! The inner loop of every label/move kernel — PLP's label-weight tally,
//! PLM's Δmod arg-max, sequential Louvain — aggregates edge weight per
//! neighbor *community* and then scans the aggregate. The paper's
//! implementation notes (§III-A, §III-D) credit much of NetworKit's speed to
//! replacing general hash maps with indexed scratch structures there: the
//! keys are community ids that the algorithms keep dense (`Partition::
//! compact` runs before every phase), so a flat array beats hashing.
//!
//! [`SparseWeightMap`] is that structure: a `Vec<f64>` of weights and a
//! `Vec<u32>` of generation stamps indexed by community id, plus a compact
//! list of touched keys for iteration. `clear()` is O(1) — it bumps the
//! generation, invalidating every stamp at once — so the per-visit cost is
//! exactly one stamp compare per edge, with no hashing and no per-visit
//! allocation. [`ScratchPool`] recycles the maps across rayon parallel
//! regions (whose per-worker state is constructed fresh each sweep), so the
//! backing arrays are allocated once per thread rather than once per sweep
//! or per level.
//!
//! When ids are *not* dense (e.g. remapping arbitrary ids during coarsening)
//! the hash map remains the right tool; see DESIGN.md §9 for the policy.

use std::sync::Mutex;

/// A map from dense `u32` keys to `f64` weight accumulators with O(1) reset.
///
/// Keys must be smaller than [`capacity`](Self::capacity); grow with
/// [`ensure_capacity`](Self::ensure_capacity). Iteration visits keys in
/// first-touch order (for the kernels: CSR neighbor order), which is
/// deterministic — unlike hash-map iteration order.
///
/// # Examples
///
/// ```
/// use parcom_graph::scratch::SparseWeightMap;
///
/// let mut m = SparseWeightMap::with_capacity(8);
/// m.add(3, 1.5);
/// m.add(5, 1.0);
/// m.add(3, 0.5);
/// assert_eq!(m.get(3), 2.0);
/// assert_eq!(m.get(4), 0.0);
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![(3, 2.0), (5, 1.0)]);
/// m.clear(); // O(1): bumps the generation
/// assert!(m.is_empty());
/// assert_eq!(m.get(3), 0.0);
/// ```
#[derive(Debug, Default)]
pub struct SparseWeightMap {
    /// `weights[k]` is valid iff `stamps[k] == generation`.
    weights: Vec<f64>,
    stamps: Vec<u32>,
    /// Current generation; starts at 1 and never becomes 0, so fresh
    /// (zeroed) stamp slots are always invalid.
    generation: u32,
    /// Keys stamped in the current generation, in first-touch order.
    touched: Vec<u32>,
}

impl SparseWeightMap {
    /// An empty map with zero capacity.
    pub fn new() -> Self {
        Self {
            weights: Vec::new(),
            stamps: Vec::new(),
            generation: 1,
            touched: Vec::new(),
        }
    }

    /// A map accepting keys in `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut m = Self::new();
        m.ensure_capacity(capacity);
        m
    }

    /// Exclusive upper bound on usable keys.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }

    /// Grows the key space to at least `capacity`. Existing entries keep
    /// their values; new slots start vacant. Never shrinks.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if capacity > self.stamps.len() {
            self.stamps.resize(capacity, 0);
            self.weights.resize(capacity, 0.0);
        }
    }

    /// Removes every entry in O(1) by bumping the generation. On the
    /// (astronomically rare) generation wraparound the stamp array is
    /// rewritten once so stale stamps can never alias a future generation.
    pub fn clear(&mut self) {
        self.touched.clear();
        if self.generation == u32::MAX {
            self.stamps.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    /// Adds `w` to the accumulator of `key`. Panics if `key` is outside
    /// the current capacity.
    #[inline]
    pub fn add(&mut self, key: u32, w: f64) {
        let i = key as usize;
        if self.stamps[i] == self.generation {
            self.weights[i] += w;
        } else {
            self.stamps[i] = self.generation;
            self.weights[i] = w;
            self.touched.push(key);
        }
    }

    /// The accumulated weight of `key`, or `0.0` if untouched since the
    /// last [`clear`](Self::clear). Panics if `key` is outside the current
    /// capacity.
    #[inline]
    pub fn get(&self, key: u32) -> f64 {
        let i = key as usize;
        if self.stamps[i] == self.generation {
            self.weights[i]
        } else {
            0.0
        }
    }

    /// Number of distinct keys touched since the last clear.
    #[inline]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True if no key has been touched since the last clear.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Iterates `(key, weight)` pairs in first-touch order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.touched.iter().map(|&k| (k, self.weights[k as usize]))
    }
}

/// A pool of [`SparseWeightMap`]s for rayon hot loops.
///
/// `for_each_init` constructs fresh per-worker state on every parallel
/// region; taking maps from a pool instead makes the backing arrays live
/// across sweeps (and, in PLM, across hierarchy levels): each worker locks
/// the pool once per region, not once per node visit.
///
/// # Examples
///
/// ```
/// use parcom_graph::scratch::ScratchPool;
///
/// let pool = ScratchPool::new();
/// {
///     let mut m = pool.take(16);
///     m.add(7, 1.0);
///     assert_eq!(m.get(7), 1.0);
/// } // returned to the pool on drop
/// let m = pool.take(4); // recycled: capacity stays 16
/// assert!(m.capacity() >= 16);
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<SparseWeightMap>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared map with room for keys in `0..capacity`, recycling a
    /// pooled one when available. The map returns to the pool when the
    /// guard drops.
    pub fn take(&self, capacity: usize) -> PooledScratch<'_> {
        let mut map = self
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        map.ensure_capacity(capacity);
        map.clear();
        PooledScratch { map, pool: self }
    }

    fn put(&self, map: SparseWeightMap) {
        self.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(map);
    }
}

/// RAII guard dereferencing to a pooled [`SparseWeightMap`]; returns the
/// map to its [`ScratchPool`] on drop.
#[derive(Debug)]
pub struct PooledScratch<'a> {
    map: SparseWeightMap,
    pool: &'a ScratchPool,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = SparseWeightMap;

    #[inline]
    fn deref(&self) -> &SparseWeightMap {
        &self.map
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut SparseWeightMap {
        &mut self.map
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.map));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_iterates_in_touch_order() {
        let mut m = SparseWeightMap::with_capacity(10);
        m.add(9, 1.0);
        m.add(2, 2.0);
        m.add(9, 0.5);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(9), 1.5);
        assert_eq!(m.get(2), 2.0);
        assert_eq!(m.get(0), 0.0);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(9, 1.5), (2, 2.0)]);
    }

    #[test]
    fn clear_is_a_full_reset() {
        let mut m = SparseWeightMap::with_capacity(4);
        m.add(1, 3.0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), 0.0);
        m.add(1, 1.0);
        assert_eq!(m.get(1), 1.0, "stale weight must not leak through");
        assert_eq!(m.iter().count(), 1);
    }

    #[test]
    fn resize_keeps_entries_and_opens_new_keys() {
        let mut m = SparseWeightMap::with_capacity(2);
        m.add(1, 5.0);
        m.ensure_capacity(6);
        assert_eq!(m.capacity(), 6);
        assert_eq!(m.get(1), 5.0, "grow must preserve live entries");
        assert_eq!(m.get(5), 0.0, "new slots start vacant");
        m.add(5, 2.0);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(1, 5.0), (5, 2.0)]);
        // never shrinks
        m.ensure_capacity(1);
        assert_eq!(m.capacity(), 6);
    }

    #[test]
    fn generation_wraparound_rewrites_stamps() {
        let mut m = SparseWeightMap::with_capacity(3);
        m.add(0, 1.0);
        // force the wraparound edge: the next clear() must not alias old
        // stamps with a recycled generation value
        m.generation = u32::MAX - 1;
        m.stamps[0] = u32::MAX - 1; // entry live in the forced generation
        assert_eq!(m.get(0), 1.0);
        m.clear(); // -> u32::MAX
        assert_eq!(m.generation, u32::MAX);
        assert_eq!(m.get(0), 0.0);
        m.add(1, 2.0);
        m.clear(); // wraparound: stamps rewritten, generation back to 1
        assert_eq!(m.generation, 1);
        assert!(m.stamps.iter().all(|&s| s == 0));
        assert_eq!(m.get(1), 0.0);
        m.add(2, 4.0);
        assert_eq!(m.get(2), 4.0);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(2, 4.0)]);
    }

    #[test]
    fn wraparound_slot_never_resurrects() {
        // a slot stamped with generation 1 long ago must stay vacant after
        // the generation counter wraps back to 1... which clear() prevents
        // by zeroing every stamp on the wrap.
        let mut m = SparseWeightMap::with_capacity(2);
        m.add(0, 7.0); // stamped generation 1
        m.generation = u32::MAX;
        assert_eq!(m.get(0), 0.0, "generation moved on, entry is stale");
        m.clear(); // wraps to 1 and zeroes stamps
        assert_eq!(
            m.get(0),
            0.0,
            "pre-wrap stamp must not match the recycled generation"
        );
    }

    #[test]
    fn zero_capacity_map_is_usable_after_growth() {
        let mut m = SparseWeightMap::new();
        assert_eq!(m.capacity(), 0);
        assert!(m.is_empty());
        m.ensure_capacity(1);
        m.add(0, 1.0);
        assert_eq!(m.get(0), 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_capacity_key_panics() {
        let mut m = SparseWeightMap::with_capacity(2);
        m.add(2, 1.0);
    }

    #[test]
    fn pool_recycles_capacity() {
        let pool = ScratchPool::new();
        {
            let mut a = pool.take(100);
            a.add(99, 1.0);
        }
        let b = pool.take(10);
        assert!(b.capacity() >= 100, "pooled map keeps its larger capacity");
        assert!(b.is_empty(), "take() returns a cleared map");
        assert_eq!(b.get(99), 0.0);
    }

    #[test]
    fn pool_hands_out_distinct_maps_under_contention() {
        use rayon::prelude::*;
        let pool = ScratchPool::new();
        // each worker accumulates its own node range; totals must be exact,
        // which fails if two workers ever share a map
        let totals: Vec<f64> = (0..8u32)
            .into_par_iter()
            .map(|part| {
                let mut m = pool.take(64);
                for i in 0..64u32 {
                    m.add(i % 8, (part as f64) + 1.0);
                }
                m.iter().map(|(_, w)| w).sum()
            })
            .collect();
        for (part, total) in totals.iter().enumerate() {
            assert_eq!(*total, 64.0 * (part as f64 + 1.0));
        }
    }
}
