//! Differential property tests: the parallel in-place CSR assembly
//! ([`GraphBuilder::build`]) must be *bit-identical* — offsets, targets,
//! and weight bit patterns — to the retained sequential reference
//! ([`GraphBuilder::build_reference`]) on arbitrary edge multisets
//! (duplicates, self-loops, isolated nodes), and independent of edge
//! insertion order.

use parcom_graph::{Graph, GraphBuilder, Node};
use proptest::prelude::*;

/// Exact CSR equality: same adjacency structure and same weight bits.
fn assert_bit_identical(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for u in a.nodes() {
        let (ta, wa) = a.neighbors_and_weights(u);
        let (tb, wb) = b.neighbors_and_weights(u);
        assert_eq!(ta, tb, "row {u} targets differ");
        let bits = |ws: &[f64]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(wa), bits(wb), "row {u} weight bits differ");
    }
}

fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(Node, Node, f64)>)> {
    (2..max_n).prop_flat_map(|n| {
        // Coarse weight grid plus tiny magnitudes so duplicate summation
        // order actually matters in the low mantissa bits.
        let weight = (0u32..102u32).prop_map(|w| match w {
            100 => 1e-17,
            101 => 0.1,
            w => (w + 1) as f64 / 10.0,
        });
        let edge = (0..n as Node, 0..n as Node, weight);
        proptest::collection::vec(edge, 0..(6 * n)).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #[test]
    fn parallel_build_matches_reference((n, edges) in arb_edges(80)) {
        let mut a = GraphBuilder::with_capacity(n, edges.len());
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        for &(u, v, w) in &edges {
            a.add_edge(u, v, w);
            b.add_edge(u, v, w);
        }
        assert_bit_identical(&a.build(), &b.build_reference());
    }

    #[test]
    fn build_is_insertion_order_independent((n, edges) in arb_edges(60)) {
        let mut forward = GraphBuilder::with_capacity(n, edges.len());
        let mut backward = GraphBuilder::with_capacity(n, edges.len());
        for &(u, v, w) in &edges {
            forward.add_edge(u, v, w);
        }
        for &(u, v, w) in edges.iter().rev() {
            backward.add_edge(v, u, w);
        }
        assert_bit_identical(&forward.build(), &backward.build());
    }
}
