//! Abort-path tests for the fault-injection sites planted in the graph
//! crate: `graph/csr-assembly` (parallel CSR build) and
//! `graph/coarsen-merge` (contraction's segmented merge). Each site must
//! survive both fault actions: a cooperative cancel (the token fires, the
//! operation completes, downstream guarded code aborts) and a panic (the
//! unwind leaves no global state poisoned — the next call works).
//!
//! Compiled only under `--features fault-inject`.
#![cfg(feature = "fault-inject")]

use parcom_graph::{coarsen, Graph, GraphBuilder, Partition};
use parcom_guard::fault::{serial_guard, FaultAction, FaultPlan};
use parcom_guard::CancelToken;
use std::panic::catch_unwind;

fn ring(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    GraphBuilder::from_edges(n, &edges)
}

#[test]
fn csr_assembly_cancel_fires_token_and_still_builds() {
    let _g = serial_guard();
    FaultPlan::clear();
    let token = CancelToken::new();
    FaultPlan::arm("graph/csr-assembly", 1, FaultAction::Cancel(token.clone()));
    let g = ring(16);
    // the cancel is cooperative: assembly itself completes, the token is
    // left for the downstream guarded run to observe
    assert!(token.is_cancelled());
    assert_eq!(g.node_count(), 16);
    assert_eq!(g.edge_count(), 16);
    assert_eq!(FaultPlan::crossings("graph/csr-assembly"), 1);
    FaultPlan::clear();
}

#[test]
fn csr_assembly_panic_leaves_the_builder_reusable() {
    let _g = serial_guard();
    FaultPlan::clear();
    FaultPlan::arm("graph/csr-assembly", 1, FaultAction::Panic);
    assert!(catch_unwind(|| ring(8)).is_err());
    FaultPlan::clear();
    // no poisoned mutex, no leaked scratch: the next build succeeds
    let g = ring(8);
    assert_eq!(g.node_count(), 8);
    assert_eq!(g.edge_count(), 8);
}

#[test]
fn coarsen_merge_cancel_fires_token_and_still_contracts() {
    let _g = serial_guard();
    FaultPlan::clear();
    let g = ring(12);
    let zeta = Partition::from_vec((0..12u32).map(|i| i / 3).collect());
    let token = CancelToken::new();
    FaultPlan::arm("graph/coarsen-merge", 1, FaultAction::Cancel(token.clone()));
    let c = coarsen(&g, &zeta);
    assert!(token.is_cancelled());
    assert_eq!(c.coarse.node_count(), 4);
    FaultPlan::clear();
}

#[test]
fn coarsen_merge_panic_unwinds_cleanly() {
    let _g = serial_guard();
    FaultPlan::clear();
    let g = ring(12);
    let zeta = Partition::from_vec((0..12u32).map(|i| i / 3).collect());
    FaultPlan::arm("graph/coarsen-merge", 1, FaultAction::Panic);
    assert!(catch_unwind(|| coarsen(&g, &zeta)).is_err());
    FaultPlan::clear();
    // the same contraction succeeds after the unwind
    let c = coarsen(&g, &zeta);
    assert_eq!(c.coarse.node_count(), 4);
    assert_eq!(c.fine_to_coarse.len(), 12);
}
