//! Hand-rolled thread-interleaving stress tests for the two concurrency
//! protocols the algorithms rely on (run with `--features stress`):
//!
//! 1. `AtomicF64::fetch_add` must never lose an update — PLM's community
//!    volumes are maintained exclusively through it from the parallel move
//!    phase (§III-B), so a lost update silently corrupts every subsequent
//!    Δmod score.
//! 2. PLP's shared label array is *racy by design* (§III-A: threads read
//!    stale neighbor labels and overwrite each other), but the race is only
//!    benign if every value any thread ever observes is a label some thread
//!    actually wrote — in range, never torn, never invented.
//!
//! `loom` would let us enumerate interleavings exhaustively, but it is not
//! available in this build environment, so these tests do the next best
//! thing: many short iterations of genuinely contended `std::thread`
//! workloads behind a `Barrier`, asserting the protocol invariants after
//! (and, for reads, during) every round. The CI sanitizer jobs run the same
//! binaries under ThreadSanitizer and Miri for the interleavings preemption
//! alone cannot reach.
#![cfg(feature = "stress")]

use parcom_graph::{AtomicF64, AtomicPartition};
use std::sync::Barrier;

const THREADS: usize = 4;

/// Every `fetch_add` must take effect exactly once, no matter how the CAS
/// loops of the contending threads interleave. Each thread adds a distinct
/// power of two so any lost or doubled update changes the exact total.
#[test]
fn atomicf64_fetch_add_loses_no_updates() {
    const ROUNDS: usize = 50;
    const ADDS_PER_THREAD: usize = 2_000;
    for _ in 0..ROUNDS {
        let total = AtomicF64::new(0.0);
        let start = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (total, start) = (&total, &start);
                s.spawn(move || {
                    // distinct per-thread quantum: 1, 2, 4, 8 — all exactly
                    // representable, so the expected sum is exact in f64
                    let quantum = (1u64 << t) as f64;
                    start.wait();
                    for _ in 0..ADDS_PER_THREAD {
                        total.fetch_add(quantum);
                    }
                });
            }
        });
        let expected = ADDS_PER_THREAD as f64 * ((1u64 << THREADS) - 1) as f64;
        assert_eq!(total.load(), expected, "a concurrent fetch_add was lost");
    }
}

/// Mixed adds and subtracts must cancel exactly: the CAS loop may retry but
/// each logical update lands once.
#[test]
fn atomicf64_mixed_add_sub_cancels_exactly() {
    const ROUNDS: usize = 50;
    const OPS_PER_THREAD: usize = 2_000;
    for _ in 0..ROUNDS {
        let total = AtomicF64::new(1_024.0);
        let start = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (total, start) = (&total, &start);
                s.spawn(move || {
                    start.wait();
                    for _ in 0..OPS_PER_THREAD {
                        if t % 2 == 0 {
                            total.fetch_add(3.5);
                        } else {
                            total.fetch_sub(3.5);
                        }
                    }
                });
            }
        });
        assert_eq!(total.load(), 1_024.0, "adds and subs failed to cancel");
    }
}

/// Concurrent `store`s of bit-distinct values must never produce a torn
/// read: every `load` observes exactly one of the written bit patterns.
/// This is the foundation of the bit-cast protocol — `AtomicF64` is a
/// plain `AtomicU64` underneath, so tearing is impossible by construction,
/// and this test pins that property against refactors.
#[test]
fn atomicf64_loads_never_tear() {
    const WRITES_PER_THREAD: usize = 4_000;
    // bit patterns chosen so any mix of halves is neither value
    let values = [1.0f64, -2.5, 1e300, f64::MIN_POSITIVE];
    let cell = AtomicF64::new(values[0]);
    let start = Barrier::new(THREADS + 1);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cell, start, v) = (&cell, &start, values[t % values.len()]);
            s.spawn(move || {
                start.wait();
                for _ in 0..WRITES_PER_THREAD {
                    cell.store(v);
                }
            });
        }
        let (cell, start) = (&cell, &start);
        s.spawn(move || {
            start.wait();
            for _ in 0..THREADS * WRITES_PER_THREAD {
                let seen = cell.load();
                assert!(
                    values.contains(&seen),
                    "torn read: observed {seen} which no thread wrote"
                );
            }
        });
    });
}

/// PLP's benign-race protocol, modeled directly on `AtomicPartition`: all
/// threads sweep the shared label array concurrently, each node adopting
/// the minimum label among its ring neighbors (relaxed reads of possibly
/// stale values, relaxed writes racing with other threads — exactly the
/// §III-A access pattern). The race changes *when* information propagates,
/// never *what* can be observed: every intermediate and final label must be
/// a node id some thread wrote, and repeated sweeps must still converge.
#[test]
fn plp_benign_race_labels_stay_in_range_and_converge() {
    const ROUNDS: usize = 20;
    const N: usize = 512;
    for _ in 0..ROUNDS {
        let labels = AtomicPartition::singleton(N);
        let upper = N as u32;
        let start = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (labels, start) = (&labels, &start);
                s.spawn(move || {
                    start.wait();
                    // each thread sweeps from a different offset so writes
                    // genuinely race on the same nodes
                    for sweep in 0..8 {
                        for i in 0..N {
                            let v = (i + t * N / THREADS + sweep) % N;
                            let left = labels.get(((v + N - 1) % N) as u32);
                            let right = labels.get(((v + 1) % N) as u32);
                            let own = labels.get(v as u32);
                            let min = own.min(left).min(right);
                            if min < own {
                                labels.set(v as u32, min);
                            }
                            // a racy read must still be a real label
                            assert!(
                                own < upper && left < upper && right < upper,
                                "observed label outside 0..{upper}"
                            );
                        }
                    }
                });
            }
        });
        labels
            .validate(upper)
            .expect("benign race produced an out-of-range label");
        // after the threads join, finish propagation sequentially and check
        // the protocol converges to the unique fixpoint (all labels 0)
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..N as u32 {
                let min = labels
                    .get(v)
                    .min(labels.get((v + 1) % N as u32))
                    .min(labels.get((v + N as u32 - 1) % N as u32));
                if min < labels.get(v) {
                    labels.set(v, min);
                    changed = true;
                }
            }
        }
        let snapshot = labels.to_partition();
        assert!(
            snapshot.as_slice().iter().all(|&c| c == 0),
            "min-label propagation failed to converge"
        );
    }
}
