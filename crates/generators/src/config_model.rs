//! Configuration-model edge generation from a degree sequence.
//!
//! The LFR generator wires both its intra-community subgraphs and its global
//! inter-community layer with stub matching: every node contributes as many
//! stubs as its target degree, the stub list is shuffled, and consecutive
//! stubs are paired. Pairs that would form self-loops or duplicate edges are
//! re-queued and re-shuffled for a bounded number of rounds (simple graphs
//! only), then dropped — the standard practical LFR behaviour.

use parcom_graph::hashing::FxHashSet;
use parcom_graph::Node;
use rand::{seq::SliceRandom, Rng};

/// Pairs stubs from `degrees` into simple edges over node ids `nodes[i]`.
///
/// `degrees[i]` stubs are created for `nodes[i]`. Returns the edge list;
/// `forbidden(u, v)` can veto specific pairs (used by LFR to keep
/// inter-community edges between communities). Unmatched stubs after
/// `rounds` reshuffles are dropped.
pub fn configuration_model_edges(
    nodes: &[Node],
    degrees: &[u64],
    rng: &mut impl Rng,
    rounds: usize,
    mut forbidden: impl FnMut(Node, Node) -> bool,
) -> Vec<(Node, Node)> {
    assert_eq!(nodes.len(), degrees.len());
    let total: u64 = degrees.iter().sum();
    let mut stubs: Vec<Node> = Vec::with_capacity(total as usize);
    for (i, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            stubs.push(nodes[i]);
        }
    }

    let mut edges = Vec::with_capacity(stubs.len() / 2);
    let mut seen: FxHashSet<(Node, Node)> = FxHashSet::default();
    for _ in 0..rounds.max(1) {
        if stubs.len() < 2 {
            break;
        }
        stubs.shuffle(rng);
        if stubs.len() % 2 == 1 {
            stubs.pop();
        }
        let mut leftover = Vec::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            let key = if u <= v { (u, v) } else { (v, u) };
            if u == v || seen.contains(&key) || forbidden(u, v) {
                leftover.push(u);
                leftover.push(v);
            } else {
                seen.insert(key);
                edges.push(key);
            }
        }
        stubs = leftover;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn degree_counts(edges: &[(Node, Node)], n: usize) -> Vec<u64> {
        let mut d = vec![0u64; n];
        for &(u, v) in edges {
            d[u as usize] += 1;
            d[v as usize] += 1;
        }
        d
    }

    #[test]
    fn regular_sequence_realized() {
        let nodes: Vec<Node> = (0..100).collect();
        let degrees = vec![4u64; 100];
        let mut rng = SmallRng::seed_from_u64(1);
        let edges = configuration_model_edges(&nodes, &degrees, &mut rng, 10, |_, _| false);
        let d = degree_counts(&edges, 100);
        // nearly all stubs matched for an easy sequence
        let realized: u64 = d.iter().sum();
        assert!(realized >= 380, "realized {realized} of 400 stubs");
        assert!(d.iter().all(|&x| x <= 4));
    }

    #[test]
    fn output_is_simple() {
        let nodes: Vec<Node> = (0..50).collect();
        let degrees = vec![6u64; 50];
        let mut rng = SmallRng::seed_from_u64(2);
        let edges = configuration_model_edges(&nodes, &degrees, &mut rng, 8, |_, _| false);
        let mut set = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert_ne!(u, v, "self-loop produced");
            assert!(set.insert((u, v)), "duplicate edge produced");
        }
    }

    #[test]
    fn respects_forbidden_pairs() {
        let nodes: Vec<Node> = (0..20).collect();
        let degrees = vec![3u64; 20];
        let mut rng = SmallRng::seed_from_u64(3);
        // forbid all pairs where both ids are even
        let edges = configuration_model_edges(&nodes, &degrees, &mut rng, 10, |u, v| {
            u % 2 == 0 && v % 2 == 0
        });
        assert!(edges.iter().all(|&(u, v)| !(u % 2 == 0 && v % 2 == 0)));
    }

    #[test]
    fn odd_total_drops_one_stub() {
        let nodes: Vec<Node> = vec![0, 1, 2];
        let degrees = vec![1, 1, 1];
        let mut rng = SmallRng::seed_from_u64(4);
        let edges = configuration_model_edges(&nodes, &degrees, &mut rng, 5, |_, _| false);
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn empty_input() {
        let mut rng = SmallRng::seed_from_u64(5);
        let edges = configuration_model_edges(&[], &[], &mut rng, 3, |_, _| false);
        assert!(edges.is_empty());
    }

    #[test]
    fn nonidentity_node_ids() {
        let nodes: Vec<Node> = vec![10, 20, 30, 40];
        let degrees = vec![2u64; 4];
        let mut rng = SmallRng::seed_from_u64(6);
        let edges = configuration_model_edges(&nodes, &degrees, &mut rng, 10, |_, _| false);
        for &(u, v) in &edges {
            assert!(nodes.contains(&u) && nodes.contains(&v));
        }
    }
}
