//! Erdős–Rényi `G(n, p)` random graphs.
//!
//! Uses geometric edge skipping (Batagelj–Brandes) so generation is
//! `O(n + m)` instead of `O(n²)`.

use parcom_graph::{Graph, GraphBuilder, Node};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Generates `G(n, p)`: each of the `n(n-1)/2` node pairs is an edge
/// independently with probability `p`. Deterministic in `seed`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    if p >= 1.0 {
        for u in 0..n as Node {
            for v in (u + 1)..n as Node {
                b.add_unweighted_edge(u, v);
            }
        }
        return b.build();
    }

    // Batagelj–Brandes skipping over the strictly-lower-triangular pairs
    // (row, col) with col < row: geometric(p) non-edges, then one edge.
    let log_q = (1.0 - p).ln();
    let mut row = 1usize;
    let mut col = 0usize;
    // Advances the cursor by `k` positions; returns false past the end.
    let advance = |row: &mut usize, col: &mut usize, mut k: usize| -> bool {
        while k > 0 {
            let left_in_row = *row - *col;
            if k < left_in_row {
                *col += k;
                return true;
            }
            k -= left_in_row;
            *row += 1;
            *col = 0;
            if *row >= n {
                return false;
            }
        }
        true
    };
    loop {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log_q).floor() as usize; // number of non-edges
        if !advance(&mut row, &mut col, skip) {
            return b.build();
        }
        b.add_unweighted_edge(col as Node, row as Node);
        if !advance(&mut row, &mut col, 1) {
            return b.build();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_zero_yields_no_edges() {
        let g = erdos_renyi(100, 0.0, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn p_one_yields_clique() {
        let g = erdos_renyi(10, 1.0, 1);
        assert_eq!(g.edge_count(), 45);
        assert!(g.check_consistency());
    }

    #[test]
    fn edge_count_near_expectation() {
        let (n, p) = (2000usize, 0.01);
        let g = erdos_renyi(n, p, 42);
        let expect = p * (n * (n - 1) / 2) as f64;
        let m = g.edge_count() as f64;
        assert!(
            (m - expect).abs() < 4.0 * expect.sqrt() + 50.0,
            "m={m}, expected ~{expect}"
        );
        assert!(g.check_consistency());
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = erdos_renyi(500, 0.02, 7);
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
        assert!(g.check_consistency());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = erdos_renyi(300, 0.05, 5);
        let b = erdos_renyi(300, 0.05, 5);
        assert_eq!(a.edge_count(), b.edge_count());
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(300, 0.05, 5);
        let b = erdos_renyi(300, 0.05, 6);
        let same = a.nodes().all(|u| a.neighbors(u) == b.neighbors(u));
        assert!(!same);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(erdos_renyi(0, 0.5, 1).node_count(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).edge_count(), 0);
    }
}
