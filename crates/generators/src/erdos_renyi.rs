//! Erdős–Rényi `G(n, p)` random graphs.
//!
//! Uses geometric edge skipping (Batagelj–Brandes) so generation is
//! `O(n + m)` instead of `O(n²)`, parallelized over contiguous row ranges
//! of the strictly-lower-triangular pair space: the geometric skip process
//! is memoryless, so restarting it at each range boundary with an
//! independent per-range RNG stream samples the exact same `G(n, p)`
//! distribution. Edges feed the parallel CSR assembly without a serial
//! collection step ([`GraphBuilder::par_extend`]).

use parcom_graph::parallel::chunk_ranges;
use parcom_graph::{Graph, GraphBuilder, Node};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use rayon::prelude::*;
use std::ops::Range;

/// Rows below this stay in one chunk: per-chunk RNG setup would dominate.
const MIN_ROWS_PER_CHUNK: usize = 512;

/// Batagelj–Brandes skipping over the pairs `(row, col)` with
/// `rows.start <= row < rows.end`, `col < row`.
fn sample_rows(n: usize, rows: Range<usize>, log_q: f64, seed: u64) -> Vec<(Node, Node, f64)> {
    let mut out = Vec::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut row = rows.start.max(1);
    let mut col = 0usize;
    if row >= rows.end {
        return out;
    }
    // Advances the cursor by `k` positions; returns false past the range.
    let advance = |row: &mut usize, col: &mut usize, mut k: usize| -> bool {
        while k > 0 {
            let left_in_row = *row - *col;
            if k < left_in_row {
                *col += k;
                return true;
            }
            k -= left_in_row;
            *row += 1;
            *col = 0;
            if *row >= rows.end {
                return false;
            }
        }
        true
    };
    debug_assert!(rows.end <= n);
    loop {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log_q).floor() as usize; // number of non-edges
        if !advance(&mut row, &mut col, skip) {
            return out;
        }
        out.push((col as Node, row as Node, 1.0));
        if !advance(&mut row, &mut col, 1) {
            return out;
        }
    }
}

/// Generates `G(n, p)`: each of the `n(n-1)/2` node pairs is an edge
/// independently with probability `p`. Deterministic in `seed` (for a
/// fixed thread count, which sets the row chunking).
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    if p >= 1.0 {
        b.par_extend(
            (1..n as Node)
                .into_par_iter()
                .flat_map_iter(|row| (0..row).map(move |col| (col, row, 1.0))),
        );
        return b.build();
    }

    let log_q = (1.0 - p).ln();
    let parts = rayon::current_num_threads()
        .max(1)
        .min(n.div_ceil(MIN_ROWS_PER_CHUNK));
    let tasks: Vec<(usize, Range<usize>)> = chunk_ranges(n, parts.max(1))
        .into_iter()
        .enumerate()
        .collect();
    let per_chunk: Vec<Vec<(Node, Node, f64)>> = tasks
        .into_par_iter()
        .map(|(ci, rows)| {
            let chunk_seed = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(ci as u64 + 1));
            sample_rows(n, rows, log_q, chunk_seed)
        })
        .collect();
    b.par_extend(per_chunk.into_par_iter().flat_map_iter(|v| v));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_zero_yields_no_edges() {
        let g = erdos_renyi(100, 0.0, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn p_one_yields_clique() {
        let g = erdos_renyi(10, 1.0, 1);
        assert_eq!(g.edge_count(), 45);
        assert!(g.check_consistency());
    }

    #[test]
    fn edge_count_near_expectation() {
        let (n, p) = (2000usize, 0.01);
        let g = erdos_renyi(n, p, 42);
        let expect = p * (n * (n - 1) / 2) as f64;
        let m = g.edge_count() as f64;
        assert!(
            (m - expect).abs() < 4.0 * expect.sqrt() + 50.0,
            "m={m}, expected ~{expect}"
        );
        assert!(g.check_consistency());
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = erdos_renyi(500, 0.02, 7);
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
        assert!(g.check_consistency());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = erdos_renyi(300, 0.05, 5);
        let b = erdos_renyi(300, 0.05, 5);
        assert_eq!(a.edge_count(), b.edge_count());
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(300, 0.05, 5);
        let b = erdos_renyi(300, 0.05, 6);
        let same = a.nodes().all(|u| a.neighbors(u) == b.neighbors(u));
        assert!(!same);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(erdos_renyi(0, 0.5, 1).node_count(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).edge_count(), 0);
    }
}
