//! Two-dimensional grid meshes.
//!
//! Near-planar, constant-degree, huge-diameter graphs — the stand-in for the
//! europe-osm street network of Table I, the structural opposite of the
//! scale-free instances.

use parcom_graph::{Graph, GraphBuilder, Node};

/// Generates a `width × height` 4-neighborhood grid.
pub fn grid2d(width: usize, height: usize) -> Graph {
    let n = width * height;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |x: usize, y: usize| (y * width + x) as Node;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.add_unweighted_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < height {
                b.add_unweighted_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::components::ConnectedComponents;
    use parcom_graph::traversal::eccentricity;

    #[test]
    fn edge_count_formula() {
        let g = grid2d(5, 4);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 5 * 3); // horizontal + vertical
    }

    #[test]
    fn corner_and_interior_degrees() {
        let g = grid2d(4, 4);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn connected_with_manhattan_diameter() {
        let g = grid2d(10, 7);
        assert_eq!(ConnectedComponents::run(&g).count, 1);
        assert_eq!(eccentricity(&g, 0), 9 + 6);
    }

    #[test]
    fn degenerate_grids() {
        let line = grid2d(5, 1);
        assert_eq!(line.edge_count(), 4);
        let empty = grid2d(0, 3);
        assert_eq!(empty.node_count(), 0);
        let single = grid2d(1, 1);
        assert_eq!(single.node_count(), 1);
        assert_eq!(single.edge_count(), 0);
    }
}
