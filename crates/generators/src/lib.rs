#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-generators — synthetic network generators
//!
//! The paper evaluates on a corpus of real-world graphs (DIMACS / SNAP) plus
//! synthetic instances. The real data sets are not redistributable here, so
//! this crate provides generators whose outputs mirror the *structural
//! categories* of the corpus (see DESIGN.md §2):
//!
//! * [`rmat`] — R-MAT / Kronecker graphs (web graphs, `kron_g500`); the weak
//!   scaling series of Fig. 10 uses the paper's exact parameters.
//! * [`lfr`] — the LFR community-detection benchmark of Fig. 8 (power-law
//!   degrees and community sizes, ground-truth communities, mixing μ).
//! * [`planted_partition`] — the `G(n, p_in, p_out)` model behind the
//!   `G_n_pin_pout` instance.
//! * [`barabasi_albert`] — heavy-tailed internet-topology-like graphs.
//! * [`watts_strogatz`] — small-world / power-grid-like graphs.
//! * [`grid`] — near-planar street-network-like meshes (europe-osm).
//! * [`cliques`] — ring-of-cliques toys with unambiguous ground truth.
//! * [`erdos_renyi`] — the unstructured null model.
//!
//! All generators are deterministic in their `seed` argument.

pub mod barabasi_albert;
pub mod cliques;
pub mod config_model;
pub mod erdos_renyi;
pub mod grid;
pub mod hyperbolic;
pub mod karate;
pub mod lfr;
pub mod planted_partition;
pub mod powerlaw;
pub mod rmat;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use cliques::ring_of_cliques;
pub use erdos_renyi::erdos_renyi;
pub use grid::grid2d;
pub use hyperbolic::{hyperbolic, HyperbolicParams};
pub use karate::karate_club;
pub use lfr::{lfr, LfrParams};
pub use planted_partition::{planted_partition, PlantedPartitionParams};
pub use rmat::{rmat, RmatParams};
pub use watts_strogatz::watts_strogatz;
