//! The LFR benchmark generator (Lancichinetti–Fortunato–Radicchi).
//!
//! LFR graphs are the established ground-truth benchmark the paper uses in
//! Fig. 8: node degrees follow a truncated power law (exponent τ1), planted
//! community sizes follow a power law (exponent τ2), and every node spends a
//! fraction μ of its degree on edges leaving its community. Detection
//! accuracy is then measured against the planted partition while μ (the
//! "noise") increases.
//!
//! This implementation follows the standard construction: sample a degree
//! sequence, split each degree into an intra- and inter-community part via
//! μ, sample community sizes until they cover `n`, assign nodes to
//! communities subject to the feasibility constraint `intra(v) ≤ |C| − 1`,
//! then realize the intra layers (per-community configuration model) and the
//! inter layer (global configuration model that forbids intra-community
//! pairs). Stub matching discards a small remainder of unmatchable stubs, so
//! realized degrees can fall slightly below their targets — the same
//! behaviour as the reference implementation's rewiring cutoff.

use crate::config_model::configuration_model_edges;
use crate::powerlaw::PowerLaw;
use parcom_graph::{Graph, GraphBuilder, Node, Partition};
use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};

/// Parameters of the LFR benchmark.
#[derive(Clone, Copy, Debug)]
pub struct LfrParams {
    /// Number of nodes.
    pub n: usize,
    /// Mixing parameter μ ∈ [0, 1): fraction of each node's degree that
    /// leaves its community. Higher μ means harder instances.
    pub mu: f64,
    /// Degree power-law exponent τ1 (typically 2–3).
    pub degree_exponent: f64,
    /// Minimum degree.
    pub min_degree: u64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Community-size power-law exponent τ2 (typically 1–2).
    pub community_exponent: f64,
    /// Minimum community size.
    pub min_community: u64,
    /// Maximum community size.
    pub max_community: u64,
}

impl LfrParams {
    /// The commonly used benchmark setting (degrees 10–50 at τ1 = 2.5,
    /// community sizes 20–100 at τ2 = 1.5), matching the "B"-style runs of
    /// the original LFR paper.
    pub fn benchmark(n: usize, mu: f64) -> Self {
        Self {
            n,
            mu,
            degree_exponent: 2.5,
            min_degree: 10,
            max_degree: 50,
            community_exponent: 1.5,
            min_community: 20,
            max_community: 100,
        }
    }
}

/// Generates an LFR graph; returns it with the planted partition.
///
/// # Examples
///
/// ```
/// use parcom_generators::{lfr, LfrParams};
///
/// let (graph, truth) = lfr(LfrParams::benchmark(1000, 0.3), 42);
/// assert_eq!(graph.node_count(), 1000);
/// assert_eq!(truth.len(), 1000);
/// assert!(truth.number_of_subsets() > 1);
/// ```
pub fn lfr(params: LfrParams, seed: u64) -> (Graph, Partition) {
    let LfrParams {
        n,
        mu,
        degree_exponent,
        min_degree,
        max_degree,
        community_exponent,
        min_community,
        max_community,
    } = params;
    assert!((0.0..1.0).contains(&mu), "mu must be in [0, 1)");
    assert!(min_degree >= 1 && min_degree <= max_degree);
    assert!(min_community >= 2 && min_community <= max_community);
    assert!(
        max_community as usize <= n,
        "max community size exceeds node count"
    );

    let mut rng = SmallRng::seed_from_u64(seed);

    // 1. Degree sequence and its intra/inter split.
    let degree_dist = PowerLaw::new(min_degree, max_degree, degree_exponent);
    let degrees = degree_dist.sample_n(&mut rng, n);
    let mut intra: Vec<u64> = degrees
        .iter()
        .map(|&d| (((1.0 - mu) * d as f64).round() as u64).min(d))
        .collect();

    // 2. Community sizes covering exactly n nodes.
    let size_dist = PowerLaw::new(min_community, max_community, community_exponent);
    let mut sizes: Vec<u64> = Vec::new();
    let mut covered = 0u64;
    while covered < n as u64 {
        let s = size_dist.sample(&mut rng);
        sizes.push(s);
        covered += s;
    }
    // trim overshoot from the last community; merge into the previous one if
    // it would fall below the minimum size
    let overshoot = covered - n as u64;
    let last = *sizes.last().unwrap();
    if last > overshoot && last - overshoot >= min_community {
        *sizes.last_mut().unwrap() -= overshoot;
    } else {
        let leftover = last - overshoot.min(last);
        sizes.pop();
        if sizes.is_empty() {
            sizes.push(n as u64);
        } else {
            // spread the remainder over existing communities
            let mut rem = leftover;
            let mut i = 0usize;
            let klen = sizes.len();
            while rem > 0 {
                sizes[i % klen] += 1;
                rem -= 1;
                i += 1;
            }
        }
        let total: u64 = sizes.iter().sum();
        debug_assert!(total <= n as u64);
        let mut rem = n as u64 - total;
        let mut i = 0usize;
        let klen = sizes.len();
        while rem > 0 {
            sizes[i % klen] += 1;
            rem -= 1;
            i += 1;
        }
    }
    debug_assert_eq!(sizes.iter().sum::<u64>(), n as u64);
    let k = sizes.len();

    // 3. Assign nodes to communities: random order, feasibility constraint
    //    intra(v) <= size - 1, capacity-respecting with bounded retries.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut capacity: Vec<u64> = sizes.clone();
    let mut open: Vec<usize> = (0..k).collect(); // communities with capacity
    let mut community_of: Vec<u32> = vec![0; n];
    for &v in &order {
        let mut placed = false;
        for _ in 0..64 {
            if open.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..open.len());
            let c = open[idx];
            if intra[v] < sizes[c] {
                community_of[v] = c as u32;
                capacity[c] -= 1;
                if capacity[c] == 0 {
                    open.swap_remove(idx);
                }
                placed = true;
                break;
            }
        }
        if !placed {
            // fall back to the largest open community, clamping intra degree
            let (idx, &c) = open
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| sizes[c])
                .expect("capacities sum to n, so an open community exists");
            community_of[v] = c as u32;
            intra[v] = intra[v].min(sizes[c] - 1);
            capacity[c] -= 1;
            if capacity[c] == 0 {
                open.swap_remove(idx);
            }
        }
    }

    // 4. Intra-community layers.
    let mut members: Vec<Vec<Node>> = vec![Vec::new(); k];
    for v in 0..n {
        members[community_of[v] as usize].push(v as Node);
    }
    let mut edges: Vec<(Node, Node)> = Vec::new();
    for nodes in members.iter().take(k) {
        let degs: Vec<u64> = nodes.iter().map(|&v| intra[v as usize]).collect();
        edges.extend(configuration_model_edges(
            nodes,
            &degs,
            &mut rng,
            10,
            |_, _| false,
        ));
    }

    // 5. Inter-community layer (forbids intra pairs).
    let all_nodes: Vec<Node> = (0..n as Node).collect();
    let ext: Vec<u64> = (0..n).map(|v| degrees[v] - intra[v]).collect();
    let community_ref = &community_of;
    edges.extend(configuration_model_edges(
        &all_nodes,
        &ext,
        &mut rng,
        10,
        |u, v| community_ref[u as usize] == community_ref[v as usize],
    ));

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_unweighted_edge(u, v);
    }
    (b.build(), Partition::from_vec(community_of))
}

/// Fraction of edge endpoints that leave their ground-truth community — the
/// empirical mixing of a generated instance (should track the requested μ).
pub fn empirical_mixing(g: &Graph, truth: &Partition) -> f64 {
    let mut cut = 0.0;
    let mut total = 0.0;
    g.for_edges(|u, v, w| {
        if u != v {
            total += w;
            if !truth.in_same_subset(u, v) {
                cut += w;
            }
        }
    });
    if total == 0.0 {
        0.0
    } else {
        cut / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_sizes_cover_all_nodes() {
        let (g, t) = lfr(LfrParams::benchmark(2000, 0.3), 1);
        assert_eq!(g.node_count(), 2000);
        assert_eq!(t.len(), 2000);
        let sizes = t.subset_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 2000);
    }

    #[test]
    fn community_sizes_mostly_within_bounds() {
        let (_, t) = lfr(LfrParams::benchmark(3000, 0.2), 2);
        let sizes: Vec<usize> = t.subset_sizes().into_iter().filter(|&s| s > 0).collect();
        // remainder spreading can push a couple of communities past max
        let within = sizes.iter().filter(|&&s| (20..=110).contains(&s)).count();
        assert!(
            within as f64 >= 0.9 * sizes.len() as f64,
            "sizes out of range: {sizes:?}"
        );
    }

    #[test]
    fn empirical_mixing_tracks_mu() {
        for &mu in &[0.1, 0.3, 0.5] {
            let (g, t) = lfr(LfrParams::benchmark(3000, mu), 3);
            let got = empirical_mixing(&g, &t);
            assert!((got - mu).abs() < 0.1, "mu target {mu}, empirical {got}");
        }
    }

    #[test]
    fn realized_degrees_close_to_targets() {
        let p = LfrParams::benchmark(2000, 0.3);
        let (g, _) = lfr(p, 4);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        // target average degree of PowerLaw(10, 50, 2.5) is ~16
        assert!(avg > 10.0, "too many stubs dropped: avg degree {avg}");
        assert!(g.max_degree() as u64 <= 2 * p.max_degree);
    }

    #[test]
    fn graph_is_simple() {
        let (g, _) = lfr(LfrParams::benchmark(1000, 0.4), 5);
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
        assert!(g.check_consistency());
    }

    #[test]
    fn deterministic_in_seed() {
        let (a, ta) = lfr(LfrParams::benchmark(800, 0.3), 6);
        let (b, tb) = lfr(LfrParams::benchmark(800, 0.3), 6);
        assert_eq!(ta.as_slice(), tb.as_slice());
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn zero_mixing_keeps_edges_internal() {
        let (g, t) = lfr(LfrParams::benchmark(1000, 0.0), 7);
        let mixing = empirical_mixing(&g, &t);
        assert!(mixing < 0.01, "mu=0 but empirical mixing {mixing}");
    }

    #[test]
    #[should_panic(expected = "mu")]
    fn rejects_mu_one() {
        lfr(LfrParams::benchmark(100, 1.0), 0);
    }
}
