//! The planted-partition model `G(n, p_in, p_out)`.
//!
//! This is the model behind the paper's `G_n_pin_pout` instance (Table I):
//! `n` nodes are split into `k` equally-sized blocks; node pairs within a
//! block are connected with probability `p_in`, pairs across blocks with
//! `p_out`. The generator returns the planted ground truth alongside the
//! graph so detection accuracy can be scored.

use parcom_graph::{Graph, GraphBuilder, Node, Partition};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Parameters of the planted-partition model.
#[derive(Clone, Copy, Debug)]
pub struct PlantedPartitionParams {
    /// Total node count.
    pub n: usize,
    /// Number of planted blocks.
    pub k: usize,
    /// Intra-block edge probability.
    pub p_in: f64,
    /// Inter-block edge probability (should be well below `p_in` for a
    /// detectable structure).
    pub p_out: f64,
}

/// Generates the model; returns the graph and the planted partition.
pub fn planted_partition(params: PlantedPartitionParams, seed: u64) -> (Graph, Partition) {
    let PlantedPartitionParams { n, k, p_in, p_out } = params;
    assert!(k >= 1 && k <= n.max(1), "need 1 <= k <= n");
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));

    let block_of = |v: usize| -> u32 { (v * k / n.max(1)) as u32 };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);

    // Geometric skipping per probability class over the upper triangle would
    // complicate block lookups; with benchmark sizes (n <= ~1e5, sparse p)
    // a skip-based row walk per class keeps this O(m) in expectation.
    for class in 0..2 {
        let p = if class == 0 { p_in } else { p_out };
        if p <= 0.0 {
            continue;
        }
        if p >= 1.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    let same = block_of(u) == block_of(v);
                    if same == (class == 0) {
                        b.add_unweighted_edge(u as Node, v as Node);
                    }
                }
            }
            continue;
        }
        let log_q = (1.0 - p).ln();
        // walk all pairs (u < v) and skip geometrically, testing class
        let mut u = 0usize;
        let mut v = 0usize; // advanced before the first class test, so (0,1) is the first pair
        'outer: loop {
            let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let mut skip = (r.ln() / log_q).floor() as usize + 1;
            // advance over pairs *of this class* by `skip`
            while skip > 0 {
                // move to next pair of the right class
                loop {
                    v += 1;
                    if v >= n {
                        u += 1;
                        if u + 1 >= n {
                            break 'outer;
                        }
                        v = u + 1;
                    }
                    let same = block_of(u) == block_of(v);
                    if same == (class == 0) {
                        break;
                    }
                }
                skip -= 1;
            }
            b.add_unweighted_edge(u as Node, v as Node);
        }
    }

    let truth = Partition::from_vec((0..n).map(block_of).collect());
    (b.build(), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, k: usize, p_in: f64, p_out: f64) -> PlantedPartitionParams {
        PlantedPartitionParams { n, k, p_in, p_out }
    }

    #[test]
    fn ground_truth_has_k_blocks() {
        let (_, t) = planted_partition(params(100, 4, 0.2, 0.01), 1);
        assert_eq!(t.number_of_subsets(), 4);
        let sizes = t.subset_sizes();
        assert!(sizes.iter().all(|&s| s == 25));
    }

    #[test]
    fn intra_denser_than_inter() {
        let (g, t) = planted_partition(params(400, 4, 0.2, 0.01), 2);
        let mut intra = 0usize;
        let mut inter = 0usize;
        g.for_edges(|u, v, _| {
            if t.in_same_subset(u, v) {
                intra += 1;
            } else {
                inter += 1;
            }
        });
        // intra pairs: 4 * C(100,2) = 19800 at 0.2 => ~3960
        // inter pairs: C(400,2)-19800 = 60000 at 0.01 => ~600
        assert!(intra > 3 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn edge_counts_near_expectation() {
        let (g, _) = planted_partition(params(500, 5, 0.1, 0.005), 3);
        let intra_pairs = 5.0 * (100.0 * 99.0 / 2.0);
        let inter_pairs = (500.0 * 499.0 / 2.0) - intra_pairs;
        let expect = 0.1 * intra_pairs + 0.005 * inter_pairs;
        let m = g.edge_count() as f64;
        assert!(
            (m - expect).abs() < 5.0 * expect.sqrt() + 50.0,
            "m={m} expected ~{expect}"
        );
    }

    #[test]
    fn p_out_zero_gives_disconnected_blocks() {
        let (g, t) = planted_partition(params(60, 3, 0.5, 0.0), 4);
        g.for_edges(|u, v, _| assert!(t.in_same_subset(u, v)));
    }

    #[test]
    fn deterministic() {
        let (a, _) = planted_partition(params(200, 4, 0.1, 0.01), 9);
        let (b, _) = planted_partition(params(200, 4, 0.1, 0.01), 9);
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn single_block_is_erdos_renyi_like() {
        let (g, t) = planted_partition(params(100, 1, 0.1, 0.0), 5);
        assert_eq!(t.number_of_subsets(), 1);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn full_p_in_builds_cliques() {
        let (g, t) = planted_partition(params(20, 2, 1.0, 0.0), 6);
        assert_eq!(g.edge_count(), 2 * (10 * 9 / 2));
        g.for_edges(|u, v, _| assert!(t.in_same_subset(u, v)));
    }
}
