//! Watts–Strogatz small-world graphs.
//!
//! With a low rewiring probability this produces sparse, high-diameter,
//! locally clustered graphs — the stand-in for the `power` grid instance of
//! Table I.

use parcom_graph::{Graph, GraphBuilder, Node};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Generates a WS graph: a ring where each node connects to its `k` nearest
/// neighbors on each side, then every edge's far endpoint is rewired to a
/// uniform node with probability `beta` (avoiding loops and duplicates).
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 1, "k must be positive");
    assert!(n > 2 * k, "ring needs n > 2k (n={n}, k={k})");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);

    // adjacency set representation during rewiring
    let mut adj: Vec<std::collections::BTreeSet<Node>> = vec![std::collections::BTreeSet::new(); n];
    for u in 0..n {
        for d in 1..=k {
            let v = (u + d) % n;
            adj[u].insert(v as Node);
            adj[v].insert(u as Node);
        }
    }

    for u in 0..n {
        for d in 1..=k {
            let v = (u + d) % n;
            if rng.gen::<f64>() < beta {
                // rewire edge (u, v) -> (u, w)
                if adj[u].len() >= n - 1 {
                    continue; // u already adjacent to everyone
                }
                let w = loop {
                    let cand = rng.gen_range(0..n);
                    if cand != u && !adj[u].contains(&(cand as Node)) {
                        break cand;
                    }
                };
                adj[u].remove(&(v as Node));
                adj[v].remove(&(u as Node));
                adj[u].insert(w as Node);
                adj[w].insert(u as Node);
            }
        }
    }

    let mut b = GraphBuilder::new(n);
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if v as usize > u {
                b.add_unweighted_edge(u as Node, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::clustering::average_local_clustering;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.edge_count(), 40);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 18));
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let g = watts_strogatz(100, 3, 0.5, 2);
        assert_eq!(g.edge_count(), 300);
        assert!(g.check_consistency());
    }

    #[test]
    fn lattice_is_clustered() {
        let g = watts_strogatz(200, 3, 0.0, 3);
        assert!(average_local_clustering(&g) > 0.5);
    }

    #[test]
    fn rewiring_reduces_clustering() {
        let lattice = average_local_clustering(&watts_strogatz(300, 3, 0.0, 4));
        let random = average_local_clustering(&watts_strogatz(300, 3, 1.0, 4));
        assert!(random < lattice);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        use parcom_graph::traversal::eccentricity;
        let ring = watts_strogatz(400, 1, 0.0, 5);
        let small_world = watts_strogatz(400, 1, 0.2, 5);
        // ring eccentricity from node 0 is n/2; shortcuts should cut it down
        assert_eq!(eccentricity(&ring, 0), 200);
        assert!(eccentricity(&small_world, 0) < 150);
    }

    #[test]
    fn simple_graph_invariants() {
        let g = watts_strogatz(150, 2, 0.3, 6);
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
        assert!(g.check_consistency());
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn rejects_overdense_ring() {
        watts_strogatz(6, 3, 0.1, 0);
    }
}
