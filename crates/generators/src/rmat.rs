//! R-MAT / Kronecker graph generation.
//!
//! The paper's weak-scaling series (Fig. 10) uses R-MAT graphs with
//! parameters `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` and edge factor 48 —
//! the Graph500 parameters that also produce the `kron_g500` instance of
//! Table I. Each edge picks one of the four adjacency-matrix quadrants per
//! scale level with those probabilities; duplicate edges and self-loops are
//! discarded, which is why R-MAT graphs have many isolated nodes and a
//! highly skewed degree distribution (the load-balancing stress the paper
//! targets).

use parcom_graph::{Graph, GraphBuilder, Node};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters of the R-MAT recursion.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// log2 of the node count.
    pub scale: u32,
    /// Edges drawn per node (before dedup); Graph500 uses 16, the paper 48.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Lower-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// The paper's parameters: `(0.57, 0.19, 0.19, 0.05)`, edge factor 48.
    pub fn paper(scale: u32) -> Self {
        Self {
            scale,
            edge_factor: 48,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Same quadrant skew with a custom edge factor.
    pub fn paper_with_edge_factor(scale: u32, edge_factor: usize) -> Self {
        Self {
            edge_factor,
            ..Self::paper(scale)
        }
    }
}

fn sample_edge(params: &RmatParams, rng: &mut SmallRng) -> (Node, Node) {
    let (mut u, mut v) = (0u64, 0u64);
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for _ in 0..params.scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < params.a {
            // upper-left: no bits set
        } else if r < ab {
            v |= 1;
        } else if r < abc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as Node, v as Node)
}

/// Generates an R-MAT graph with `2^scale` nodes, deterministic in `seed`.
/// Self-loops are dropped and duplicates merged (unweighted output).
pub fn rmat(params: RmatParams, seed: u64) -> Graph {
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1, got {sum}"
    );
    assert!(params.scale <= 31, "scale must fit u32 node ids");
    let n = 1usize << params.scale;
    let m_target = n * params.edge_factor;

    // Draw edges in parallel chunks with per-chunk deterministic RNG streams.
    let chunks = rayon::current_num_threads().max(1) * 4;
    let per_chunk = m_target.div_ceil(chunks);
    let mut pairs: Vec<(Node, Node)> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut rng = SmallRng::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(ci as u64 + 1)),
            );
            let count = per_chunk.min(m_target.saturating_sub(ci * per_chunk));
            (0..count)
                .map(move |_| sample_edge(&params, &mut rng))
                .filter(|&(u, v)| u != v)
                .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
                .collect::<Vec<_>>()
        })
        .collect();

    pairs.par_sort_unstable();
    pairs.dedup();

    let mut b = GraphBuilder::with_capacity(n, pairs.len());
    b.par_extend(pairs.into_par_iter().map(|(u, v)| (u, v, 1.0)));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(RmatParams::paper_with_edge_factor(8, 8), 1);
        assert_eq!(g.node_count(), 256);
        assert!(g.check_consistency());
    }

    #[test]
    fn no_self_loops_and_simple() {
        let g = rmat(RmatParams::paper_with_edge_factor(9, 8), 2);
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
    }

    #[test]
    fn edge_count_below_target_after_dedup() {
        let p = RmatParams::paper_with_edge_factor(10, 8);
        let g = rmat(p, 3);
        assert!(g.edge_count() <= 1024 * 8);
        assert!(g.edge_count() > 1024); // most draws survive
    }

    #[test]
    fn skewed_degree_distribution() {
        let g = rmat(RmatParams::paper_with_edge_factor(11, 16), 4);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            g.max_degree() as f64 > 8.0 * avg,
            "R-MAT should produce hubs: max {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let p = RmatParams::paper_with_edge_factor(8, 4);
        let a = rmat(p, 5);
        let b = rmat(p, 5);
        assert_eq!(a.edge_count(), b.edge_count());
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(
            RmatParams {
                scale: 4,
                edge_factor: 2,
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }
}
