//! Ring of cliques: the canonical "obvious communities" instance.
//!
//! `k` cliques of `s` nodes each, consecutive cliques joined by a single
//! bridge edge. The planted communities are unambiguous, which makes this
//! the standard smoke test for community detection (and the graph family on
//! which modularity's resolution limit eventually bites for large `k`).

use parcom_graph::{Graph, GraphBuilder, Node, Partition};

/// Generates the ring of cliques; returns the graph and the planted
/// clique partition. Requires `k >= 1` cliques of size `s >= 1`.
pub fn ring_of_cliques(k: usize, s: usize) -> (Graph, Partition) {
    assert!(k >= 1 && s >= 1, "need at least one clique of one node");
    let n = k * s;
    let mut b = GraphBuilder::with_capacity(n, k * s * s / 2 + k);
    for c in 0..k {
        let base = (c * s) as Node;
        for i in 0..s as Node {
            for j in (i + 1)..s as Node {
                b.add_unweighted_edge(base + i, base + j);
            }
        }
    }
    if k > 1 {
        // bridge last node of clique c to first node of clique c+1
        for c in 0..k {
            let from = (c * s + (s - 1)) as Node;
            let to = (((c + 1) % k) * s) as Node;
            if k == 2 && c == 1 {
                break; // avoid doubling the single bridge between two cliques
            }
            if from != to {
                b.add_unweighted_edge(from, to);
            }
        }
    }
    let truth = Partition::from_vec((0..n).map(|v| (v / s) as u32).collect());
    (b.build(), truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::components::ConnectedComponents;

    #[test]
    fn sizes_and_counts() {
        let (g, t) = ring_of_cliques(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 10 + 4);
        assert_eq!(t.number_of_subsets(), 4);
    }

    #[test]
    fn is_connected() {
        let (g, _) = ring_of_cliques(6, 4);
        assert_eq!(ConnectedComponents::run(&g).count, 1);
    }

    #[test]
    fn intra_clique_edges_complete() {
        let (g, t) = ring_of_cliques(3, 4);
        for u in g.nodes() {
            for v in g.nodes() {
                if u < v && t.in_same_subset(u, v) {
                    assert!(g.has_edge(u, v), "missing clique edge {u}-{v}");
                }
            }
        }
    }

    #[test]
    fn exactly_k_bridges() {
        let (g, t) = ring_of_cliques(5, 3);
        let mut bridges = 0;
        g.for_edges(|u, v, _| {
            if !t.in_same_subset(u, v) {
                bridges += 1;
            }
        });
        assert_eq!(bridges, 5);
    }

    #[test]
    fn two_cliques_single_bridge() {
        let (g, t) = ring_of_cliques(2, 3);
        let mut bridges = 0;
        g.for_edges(|u, v, _| {
            if !t.in_same_subset(u, v) {
                bridges += 1;
            }
        });
        assert_eq!(bridges, 1);
    }

    #[test]
    fn single_clique() {
        let (g, t) = ring_of_cliques(1, 4);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(t.number_of_subsets(), 1);
    }

    #[test]
    fn singleton_cliques_form_cycle() {
        let (g, _) = ring_of_cliques(5, 1);
        assert_eq!(g.edge_count(), 5);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
    }
}
