//! Random hyperbolic graphs (Krioukov et al.).
//!
//! Points are placed in a hyperbolic disk of radius `R` (angles uniform,
//! radii with density `sinh(αr)`) and connected when their hyperbolic
//! distance is below `R`. The model produces power-law degree distributions
//! with exponent `2α + 1` *and* high clustering — the generative model
//! NetworKit later adopted as its standard complex-network source, which
//! makes it a natural extension of the paper's synthetic instance families.
//!
//! This implementation is the direct O(n²) pair test, parallelized over
//! nodes; it is intended for benchmark-scale instances (n ≲ 50k), not for
//! the subquadratic generation literature.

use parcom_graph::{Graph, GraphBuilder, Node};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters of the random hyperbolic graph.
#[derive(Clone, Copy, Debug)]
pub struct HyperbolicParams {
    /// Number of nodes.
    pub n: usize,
    /// Radial dispersion α > 0.5; the degree power-law exponent is 2α + 1.
    pub alpha: f64,
    /// Disk radius offset `C` in `R = 2 ln n + C`; larger C → sparser.
    pub radius_offset: f64,
}

impl HyperbolicParams {
    /// A scale-free configuration with power-law exponent ~2.5.
    pub fn scale_free(n: usize) -> Self {
        Self {
            n,
            alpha: 0.75,
            radius_offset: 0.0,
        }
    }
}

/// Generates the graph, deterministic in `seed`.
pub fn hyperbolic(params: HyperbolicParams, seed: u64) -> Graph {
    let HyperbolicParams {
        n,
        alpha,
        radius_offset,
    } = params;
    assert!(
        alpha > 0.5,
        "alpha must exceed 0.5 for a finite mean degree"
    );
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    let big_r = 2.0 * (n as f64).ln() + radius_offset;

    let mut rng = SmallRng::seed_from_u64(seed);
    let cosh_ar_minus_1 = (alpha * big_r).cosh() - 1.0;
    let mut angles = Vec::with_capacity(n);
    let mut radii = Vec::with_capacity(n);
    for _ in 0..n {
        angles.push(rng.gen::<f64>() * std::f64::consts::TAU);
        let u: f64 = rng.gen();
        radii.push(((1.0 + u * cosh_ar_minus_1).acosh()) / alpha);
    }
    let cosh_r: Vec<f64> = radii.iter().map(|r| r.cosh()).collect();
    let sinh_r: Vec<f64> = radii.iter().map(|r| r.sinh()).collect();
    let cosh_big_r = big_r.cosh();

    let edges: Vec<(Node, Node)> = (0..n)
        .into_par_iter()
        .flat_map_iter(|u| {
            let (au, cu, su) = (angles[u], cosh_r[u], sinh_r[u]);
            let angles = &angles;
            let cosh_r = &cosh_r;
            let sinh_r = &sinh_r;
            ((u + 1)..n).filter_map(move |v| {
                let dphi = (au - angles[v]).abs();
                let dphi = dphi.min(std::f64::consts::TAU - dphi);
                let cosh_d = cu * cosh_r[v] - su * sinh_r[v] * dphi.cos();
                (cosh_d <= cosh_big_r).then_some((u as Node, v as Node))
            })
        })
        .collect();

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_unweighted_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::clustering::sampled_average_local_clustering;

    #[test]
    fn produces_edges_at_scale_free_defaults() {
        let g = hyperbolic(HyperbolicParams::scale_free(1000), 1);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(avg > 1.0, "too sparse: avg degree {avg}");
        assert!(avg < 100.0, "too dense: avg degree {avg}");
        assert!(g.check_consistency());
    }

    #[test]
    fn has_hubs() {
        let g = hyperbolic(HyperbolicParams::scale_free(2000), 2);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            g.max_degree() as f64 > 5.0 * avg,
            "no hubs: max {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn is_clustered() {
        let g = hyperbolic(HyperbolicParams::scale_free(2000), 3);
        let lcc = sampled_average_local_clustering(&g, 500, 1);
        assert!(lcc > 0.3, "hyperbolic graphs should cluster, LCC {lcc}");
    }

    #[test]
    fn radius_offset_controls_density() {
        let dense = hyperbolic(
            HyperbolicParams {
                n: 800,
                alpha: 0.75,
                radius_offset: -1.0,
            },
            4,
        );
        let sparse = hyperbolic(
            HyperbolicParams {
                n: 800,
                alpha: 0.75,
                radius_offset: 1.0,
            },
            4,
        );
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = hyperbolic(HyperbolicParams::scale_free(300), 9);
        let b = hyperbolic(HyperbolicParams::scale_free(300), 9);
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(
            hyperbolic(HyperbolicParams::scale_free(0), 0).node_count(),
            0
        );
        let g = hyperbolic(HyperbolicParams::scale_free(1), 0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_small_alpha() {
        hyperbolic(
            HyperbolicParams {
                n: 10,
                alpha: 0.4,
                radius_offset: 0.0,
            },
            0,
        );
    }
}
