//! Truncated discrete power-law sampling.
//!
//! LFR draws both node degrees (exponent τ1) and community sizes (exponent
//! τ2) from truncated power laws. Sampling uses the inverse CDF of the
//! continuous distribution on `[min, max + 1)`, floored to an integer — fast,
//! allocation-free and accurate enough for benchmark generation.

use rand::Rng;

/// A truncated power-law distribution `P(x) ∝ x^(-exponent)` on the integer
/// range `[min, max]`.
#[derive(Clone, Copy, Debug)]
pub struct PowerLaw {
    min: u64,
    max: u64,
    exponent: f64,
    // precomputed CDF endpoints of the continuous relaxation
    lo_pow: f64,
    hi_pow: f64,
    one_minus_exp: f64,
}

impl PowerLaw {
    /// Creates the distribution. Panics unless `1 <= min <= max` and
    /// `exponent > 1`.
    pub fn new(min: u64, max: u64, exponent: f64) -> Self {
        assert!(min >= 1, "power law support must start at 1 or above");
        assert!(min <= max, "min must not exceed max");
        assert!(exponent > 1.0, "exponent must exceed 1");
        let one_minus_exp = 1.0 - exponent;
        Self {
            min,
            max,
            exponent,
            lo_pow: (min as f64).powf(one_minus_exp),
            hi_pow: ((max + 1) as f64).powf(one_minus_exp),
            one_minus_exp,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let x = (self.lo_pow + u * (self.hi_pow - self.lo_pow)).powf(1.0 / self.one_minus_exp);
        (x as u64).clamp(self.min, self.max)
    }

    /// Draws `n` samples.
    pub fn sample_n(&self, rng: &mut impl Rng, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Analytic mean of the continuous relaxation (close to the discrete
    /// mean; used to pick degree bounds for a target average degree).
    pub fn approx_mean(&self) -> f64 {
        let a = self.exponent;
        let (lo, hi) = (self.min as f64, (self.max + 1) as f64);
        if (a - 2.0).abs() < 1e-9 {
            // ∫ x·x^-2 = ln x
            (hi.ln() - lo.ln()) / ((hi.powf(-1.0) - lo.powf(-1.0)) / -1.0)
        } else {
            let num = (hi.powf(2.0 - a) - lo.powf(2.0 - a)) / (2.0 - a);
            let den = (hi.powf(1.0 - a) - lo.powf(1.0 - a)) / (1.0 - a);
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn samples_stay_in_range() {
        let pl = PowerLaw::new(2, 50, 2.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = pl.sample(&mut rng);
            assert!((2..=50).contains(&x));
        }
    }

    #[test]
    fn degenerate_range_returns_constant() {
        let pl = PowerLaw::new(7, 7, 2.0);
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(pl.sample_n(&mut rng, 100).iter().all(|&x| x == 7));
    }

    #[test]
    fn small_values_dominate() {
        let pl = PowerLaw::new(1, 1000, 2.5);
        let mut rng = SmallRng::seed_from_u64(3);
        let samples = pl.sample_n(&mut rng, 20_000);
        let small = samples.iter().filter(|&&x| x <= 3).count();
        assert!(
            small as f64 > 0.7 * samples.len() as f64,
            "power law should be head-heavy, got {small}/20000 <= 3"
        );
    }

    #[test]
    fn empirical_mean_tracks_analytic_mean() {
        let pl = PowerLaw::new(5, 200, 2.2);
        let mut rng = SmallRng::seed_from_u64(4);
        let samples = pl.sample_n(&mut rng, 50_000);
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let expect = pl.approx_mean();
        assert!(
            (mean - expect).abs() / expect < 0.1,
            "empirical {mean} vs analytic {expect}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let pl = PowerLaw::new(1, 100, 3.0);
        let a = pl.sample_n(&mut SmallRng::seed_from_u64(9), 50);
        let b = pl.sample_n(&mut SmallRng::seed_from_u64(9), 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_exponent_at_most_one() {
        PowerLaw::new(1, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "min")]
    fn rejects_inverted_range() {
        PowerLaw::new(10, 5, 2.0);
    }
}
