//! Barabási–Albert preferential attachment.
//!
//! Stand-in for the internet-topology instances (as-22july06, as-Skitter,
//! caidaRouterLevel): heavy-tailed degree distribution with pronounced hubs
//! but without the planted blocks of LFR.

use parcom_graph::{Graph, GraphBuilder, Node};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use rayon::prelude::*;

/// Generates a BA graph: starts from a clique on `attach + 1` nodes, then
/// every new node attaches to `attach` distinct existing nodes chosen
/// proportionally to their degree. Deterministic in `seed`.
///
/// Sampling is inherently sequential (each node's choices depend on all
/// earlier degrees), so edges are collected first and fed to the parallel
/// CSR assembly via [`GraphBuilder::par_extend`].
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(attach >= 1, "attachment count must be positive");
    assert!(
        n > attach,
        "need more nodes ({n}) than the attachment count ({attach})"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pairs: Vec<(Node, Node)> = Vec::with_capacity(n * attach);

    // Repeated-endpoints list: sampling a uniform entry is sampling
    // proportional to degree.
    let mut endpoints: Vec<Node> = Vec::with_capacity(2 * n * attach);

    // seed clique
    let m0 = attach + 1;
    for u in 0..m0 as Node {
        for v in (u + 1)..m0 as Node {
            pairs.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut chosen: Vec<Node> = Vec::with_capacity(attach);
    for u in m0..n {
        chosen.clear();
        // rejection sampling for distinctness; degree skew keeps retries rare
        while chosen.len() < attach {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            pairs.push((u as Node, v));
            endpoints.push(u as Node);
            endpoints.push(v);
        }
    }

    let mut b = GraphBuilder::with_capacity(n, pairs.len());
    b.par_extend(pairs.into_par_iter().map(|(u, v)| (u, v, 1.0)));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_formula() {
        let (n, k) = (500usize, 3usize);
        let g = barabasi_albert(n, k, 1);
        let clique = (k + 1) * k / 2;
        assert_eq!(g.edge_count(), clique + (n - k - 1) * k);
        assert!(g.check_consistency());
    }

    #[test]
    fn graph_is_connected() {
        use parcom_graph::components::ConnectedComponents;
        let g = barabasi_albert(300, 2, 2);
        assert_eq!(ConnectedComponents::run(&g).count, 1);
    }

    #[test]
    fn hubs_emerge() {
        let g = barabasi_albert(2000, 2, 3);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            g.max_degree() as f64 > 5.0 * avg,
            "expected hubs, max degree {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn min_degree_is_attach() {
        let g = barabasi_albert(200, 4, 4);
        assert!(g.nodes().all(|u| g.degree(u) >= 4));
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 2, 7);
        let b = barabasi_albert(100, 2, 7);
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_tiny_n() {
        barabasi_albert(2, 2, 0);
    }
}
