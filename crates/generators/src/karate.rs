//! The Zachary karate club — the canonical real-world test network.
//!
//! 34 members of a university karate club, edges for observed social
//! interaction (Zachary 1977). After a dispute the club split into two
//! factions, giving the network a famous two-community ground truth;
//! essentially every community detection paper validates against it.
//! Embedded here (public-domain data, 78 edges) so the test suite exercises
//! at least one real network alongside the synthetic generators.

use parcom_graph::{Graph, GraphBuilder, Partition};

/// The 78 undirected edges, 1-based as in the original publication.
const EDGES_1BASED: [(u32, u32); 78] = [
    (1, 2),
    (1, 3),
    (1, 4),
    (1, 5),
    (1, 6),
    (1, 7),
    (1, 8),
    (1, 9),
    (1, 11),
    (1, 12),
    (1, 13),
    (1, 14),
    (1, 18),
    (1, 20),
    (1, 22),
    (1, 32),
    (2, 3),
    (2, 4),
    (2, 8),
    (2, 14),
    (2, 18),
    (2, 20),
    (2, 22),
    (2, 31),
    (3, 4),
    (3, 8),
    (3, 9),
    (3, 10),
    (3, 14),
    (3, 28),
    (3, 29),
    (3, 33),
    (4, 8),
    (4, 13),
    (4, 14),
    (5, 7),
    (5, 11),
    (6, 7),
    (6, 11),
    (6, 17),
    (7, 17),
    (9, 31),
    (9, 33),
    (9, 34),
    (10, 34),
    (14, 34),
    (15, 33),
    (15, 34),
    (16, 33),
    (16, 34),
    (19, 33),
    (19, 34),
    (20, 34),
    (21, 33),
    (21, 34),
    (23, 33),
    (23, 34),
    (24, 26),
    (24, 28),
    (24, 30),
    (24, 33),
    (24, 34),
    (25, 26),
    (25, 28),
    (25, 32),
    (26, 32),
    (27, 30),
    (27, 34),
    (28, 34),
    (29, 32),
    (29, 34),
    (30, 33),
    (30, 34),
    (31, 33),
    (31, 34),
    (32, 33),
    (32, 34),
    (33, 34),
];

/// Members of the instructor's faction after the split (1-based ids);
/// everyone else sided with the club officer.
const INSTRUCTOR_FACTION: [u32; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 14, 17, 18, 20, 22];

/// Returns the karate club graph (0-based node ids) and the two-faction
/// ground truth (0 = instructor's side, 1 = officer's side).
pub fn karate_club() -> (Graph, Partition) {
    let mut b = GraphBuilder::with_capacity(34, EDGES_1BASED.len());
    for &(u, v) in &EDGES_1BASED {
        b.add_unweighted_edge(u - 1, v - 1);
    }
    let mut factions = vec![1u32; 34];
    for &member in &INSTRUCTOR_FACTION {
        factions[(member - 1) as usize] = 0;
    }
    (b.build(), Partition::from_vec(factions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::components::ConnectedComponents;

    #[test]
    fn well_known_counts() {
        let (g, factions) = karate_club();
        assert_eq!(g.node_count(), 34);
        assert_eq!(g.edge_count(), 78);
        assert_eq!(factions.number_of_subsets(), 2);
        assert_eq!(factions.subset_sizes(), vec![16, 18]);
    }

    #[test]
    fn connected_with_two_hubs() {
        let (g, _) = karate_club();
        assert_eq!(ConnectedComponents::run(&g).count, 1);
        // the instructor (node 0) and the officer (node 33) are the hubs
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(33), 17);
        assert_eq!(g.max_degree(), 17);
    }

    #[test]
    fn faction_split_has_positive_modularity() {
        // the historical split is a good (not optimal) modularity solution
        let (g, factions) = karate_club();
        let q = {
            // inline modularity to avoid a dev-dependency cycle with core
            let total = g.total_edge_weight();
            let mut intra = [0.0f64; 2];
            let mut vol = [0.0f64; 2];
            for u in g.nodes() {
                vol[factions.subset_of(u) as usize] += g.volume(u);
            }
            g.for_edges(|u, v, w| {
                if factions.in_same_subset(u, v) {
                    intra[factions.subset_of(u) as usize] += w;
                }
            });
            (0..2)
                .map(|c| intra[c] / total - (vol[c] / (2.0 * total)).powi(2))
                .sum::<f64>()
        };
        assert!(
            (0.33..0.42).contains(&q),
            "karate faction modularity should be ~0.36, got {q}"
        );
    }
}
