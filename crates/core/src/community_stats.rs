//! Per-community structural statistics: size, volume, cut, conductance and
//! internal density — the standard per-community diagnostics (NetworKit's
//! community evaluation suite) complementing the single-number modularity.

use parcom_graph::{Graph, Partition};

/// Statistics of a single community.
#[derive(Clone, Debug, PartialEq)]
pub struct CommunityStat {
    /// Number of member nodes.
    pub size: usize,
    /// ω(C): internal edge weight (self-loops once).
    pub intra_weight: f64,
    /// Weight of edges leaving the community.
    pub cut_weight: f64,
    /// vol(C): summed member volumes.
    pub volume: f64,
}

impl CommunityStat {
    /// Conductance: cut / min(vol, vol(V) − vol). 0 for isolated
    /// communities; lower is better. `total_volume` is vol(V) = 2ω(E).
    pub fn conductance(&self, total_volume: f64) -> f64 {
        let denom = self.volume.min(total_volume - self.volume);
        if denom <= 0.0 {
            0.0
        } else {
            self.cut_weight / denom
        }
    }

    /// Internal edge density relative to a complete community (unweighted
    /// notion; uses weight as count for weighted graphs).
    pub fn internal_density(&self) -> f64 {
        if self.size < 2 {
            return 0.0;
        }
        let pairs = (self.size * (self.size - 1) / 2) as f64;
        self.intra_weight / pairs
    }
}

/// Statistics for every community of `zeta` (indexed by community id up to
/// `zeta.upper_bound()`; unused ids yield empty stats).
pub fn community_stats(g: &Graph, zeta: &Partition) -> Vec<CommunityStat> {
    assert_eq!(zeta.len(), g.node_count(), "partition does not cover graph");
    let k = zeta.upper_bound() as usize;
    let mut stats = vec![
        CommunityStat {
            size: 0,
            intra_weight: 0.0,
            cut_weight: 0.0,
            volume: 0.0,
        };
        k
    ];
    for u in g.nodes() {
        let cu = zeta.subset_of(u) as usize;
        stats[cu].size += 1;
        stats[cu].volume += g.volume(u);
        for (v, w) in g.edges_of(u) {
            if v == u {
                stats[cu].intra_weight += w;
            } else if zeta.subset_of(v) as usize == cu {
                if v > u {
                    stats[cu].intra_weight += w;
                }
            } else {
                stats[cu].cut_weight += w;
            }
        }
    }
    stats
}

/// Summary over all non-empty communities: count, min/median/max size and
/// mean conductance.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionSummary {
    /// Number of non-empty communities.
    pub count: usize,
    /// Smallest community size.
    pub min_size: usize,
    /// Median community size.
    pub median_size: usize,
    /// Largest community size.
    pub max_size: usize,
    /// Mean conductance over non-empty communities.
    pub mean_conductance: f64,
}

/// Computes the [`PartitionSummary`] of `zeta` over `g`.
pub fn partition_summary(g: &Graph, zeta: &Partition) -> PartitionSummary {
    let stats = community_stats(g, zeta);
    let total_volume = 2.0 * g.total_edge_weight();
    let mut sizes: Vec<usize> = stats
        .iter()
        .filter(|s| s.size > 0)
        .map(|s| s.size)
        .collect();
    sizes.sort_unstable();
    let count = sizes.len();
    if count == 0 {
        return PartitionSummary {
            count: 0,
            min_size: 0,
            median_size: 0,
            max_size: 0,
            mean_conductance: 0.0,
        };
    }
    let mean_conductance = stats
        .iter()
        .filter(|s| s.size > 0)
        .map(|s| s.conductance(total_volume))
        .sum::<f64>()
        / count as f64;
    PartitionSummary {
        count,
        min_size: sizes[0],
        median_size: sizes[count / 2],
        max_size: sizes[count - 1],
        mean_conductance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_generators::ring_of_cliques;
    use parcom_graph::GraphBuilder;

    #[test]
    fn stats_of_two_triangles() {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let p = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let stats = community_stats(&g, &p);
        assert_eq!(stats[0].size, 3);
        assert_eq!(stats[0].intra_weight, 3.0);
        assert_eq!(stats[0].cut_weight, 1.0);
        assert_eq!(stats[0].volume, 7.0);
        assert_eq!(stats[1], stats[0].clone());
        // conductance: 1 / min(7, 14-7) = 1/7
        assert!((stats[0].conductance(14.0) - 1.0 / 7.0).abs() < 1e-12);
        // internal density: 3 edges of 3 possible pairs
        assert!((stats[0].internal_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_counts_each_cross_edge_per_side() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let p = Partition::from_vec(vec![0, 1]);
        let stats = community_stats(&g, &p);
        assert_eq!(stats[0].cut_weight, 1.0);
        assert_eq!(stats[1].cut_weight, 1.0);
    }

    #[test]
    fn self_loops_are_internal() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0, 2.0);
        let g = b.build();
        let stats = community_stats(&g, &Partition::all_in_one(1));
        assert_eq!(stats[0].intra_weight, 2.0);
        assert_eq!(stats[0].cut_weight, 0.0);
        assert_eq!(stats[0].volume, 4.0);
    }

    #[test]
    fn summary_on_ring_of_cliques() {
        let (g, truth) = ring_of_cliques(5, 4);
        let s = partition_summary(&g, &truth);
        assert_eq!(s.count, 5);
        assert_eq!(s.min_size, 4);
        assert_eq!(s.max_size, 4);
        assert_eq!(s.median_size, 4);
        // each clique: cut 2, vol 2*6+2 = 14 → conductance 2/14
        assert!((s.mean_conductance - 2.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_summary() {
        let g = GraphBuilder::new(0).build();
        let s = partition_summary(&g, &Partition::singleton(0));
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_conductance, 0.0);
    }

    #[test]
    fn singleton_communities_have_zero_density() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let stats = community_stats(&g, &Partition::singleton(2));
        assert_eq!(stats[0].internal_density(), 0.0);
        assert_eq!(stats[0].size, 1);
    }
}
