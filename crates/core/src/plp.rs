//! PLP — Parallel Label Propagation (Algorithm 1 of the paper).
//!
//! Every node starts with a unique label; in each iteration every *active*
//! node adopts the dominant label in its neighborhood (the label maximizing
//! the incident edge weight). Nodes whose neighborhood did not change become
//! inactive and are only reactivated when a neighbor updates. Iteration stops
//! once the number of updated labels per iteration falls below the threshold
//! θ (default `n · 10⁻⁵`, the paper's choice for cutting the long tail of
//! iterations that touch only a few high-degree nodes — see Fig. 1).
//!
//! The label array is shared between threads with relaxed atomics; a thread
//! may read a neighbor's label from the previous or the current iteration.
//! These races are deliberate (asynchronous updating, §III-A): they avoid
//! label oscillation on bipartite structures and add solution diversity in
//! the ensemble setting.

use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use parcom_graph::{AtomicPartition, Graph, Node, Partition, ScratchPool};
use parcom_guard::{Budget, Termination};
use parcom_obs::{CounterCell, LocalCount, Recorder, RunReport};
use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Initial activation perturbations for ensemble diversity (§V-D: the paper
/// "perturb[s] the communities initially by randomly choosing a small number
/// of seed nodes and deactivating them, or activating only this seed set").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum SeedPerturbation {
    /// All nodes start active (the default).
    #[default]
    None,
    /// A random fraction of nodes starts *inactive* (re-activated only when
    /// a neighbor updates).
    DeactivateFraction(f64),
    /// Only a random fraction of nodes starts active.
    ActivateOnlyFraction(f64),
}

/// Configuration and run statistics of PLP.
///
/// # Examples
///
/// ```
/// use parcom_core::{CommunityDetector, Plp};
/// use parcom_generators::ring_of_cliques;
///
/// let (graph, _) = ring_of_cliques(5, 10);
/// let mut plp = Plp::new();
/// let (communities, report) = plp.detect_with_report(&graph);
/// assert_eq!(communities.number_of_subsets(), 5);
/// let prop = report.phase("label-propagation").unwrap();
/// assert!(!prop.series("updated").unwrap().is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Plp {
    /// Update threshold θ as a fraction of `n`; iteration stops when fewer
    /// than `θ·n` nodes update. The paper uses `1e-5`.
    pub theta_fraction: f64,
    /// Hard iteration cap (the paper observes convergence within ~100).
    pub max_iterations: usize,
    /// Explicitly shuffle the node processing order each iteration. The
    /// paper makes this optional and finds implicit randomization through
    /// parallelism sufficient (§III-A); benches reproduce that ablation.
    pub explicit_randomization: bool,
    /// Initial activation perturbation (§V-D ensemble diversity study).
    pub seed_perturbation: SeedPerturbation,
    /// Seed for the optional shuffle and tie-breaking.
    pub seed: u64,
}

/// Per-run statistics: the series plotted in Fig. 1.
#[derive(Clone, Debug, Default)]
pub struct PlpStats {
    /// Number of active nodes at the start of each iteration.
    pub active_per_iteration: Vec<usize>,
    /// Number of label updates in each iteration.
    pub updated_per_iteration: Vec<usize>,
}

impl PlpStats {
    /// Number of iterations performed.
    pub fn iterations(&self) -> usize {
        self.updated_per_iteration.len()
    }
}

impl Default for Plp {
    fn default() -> Self {
        Self {
            theta_fraction: 1e-5,
            max_iterations: 100,
            explicit_randomization: false,
            seed_perturbation: SeedPerturbation::None,
            seed: 1,
        }
    }
}

/// SplitMix64 mixing, used for the pseudo-random tie-break.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Plp {
    /// PLP with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs label propagation, optionally seeded with an initial assignment
    /// (used when PLP refines a prolonged coarse solution).
    pub fn run_from(&mut self, g: &Graph, initial: Option<&Partition>) -> Partition {
        self.run_with(g, initial, &Recorder::disabled())
    }

    /// [`run_from`](Self::run_from) with phase-level instrumentation: the
    /// iteration loop runs inside a `label-propagation` span carrying the
    /// per-iteration `active`/`updated` series (Fig. 1) and the total
    /// `label-updates` count.
    pub fn run_with(
        &mut self,
        g: &Graph,
        initial: Option<&Partition>,
        rec: &Recorder,
    ) -> Partition {
        self.run_guarded(g, initial, rec, &Budget::unlimited()).0
    }

    /// [`run_with`](Self::run_with) under a run budget: the budget is
    /// checked once per iteration (sweep granularity — §III-A iterations
    /// touch every active node, so per-edge checks would dominate). On
    /// expiry the loop stops after the last completed iteration; the label
    /// array at any iteration boundary is a valid assignment, so the
    /// degraded result is simply the labels so far, compacted.
    pub(crate) fn run_guarded(
        &mut self,
        g: &Graph,
        initial: Option<&Partition>,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination) {
        let n = g.node_count();
        let labels = match initial {
            Some(p) => AtomicPartition::from_partition(p),
            None => AtomicPartition::singleton(n),
        };
        let active: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
        let theta = (self.theta_fraction * n as f64).ceil() as u64;
        let mut stats = PlpStats::default();

        let mut order: Vec<Node> = (0..n as Node).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        match self.seed_perturbation {
            SeedPerturbation::None => {}
            SeedPerturbation::DeactivateFraction(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
                let count = (f * n as f64).round() as usize;
                for idx in rand::seq::index::sample(&mut rng, n.max(1), count.min(n)) {
                    active[idx].store(false, Ordering::Relaxed);
                }
            }
            SeedPerturbation::ActivateOnlyFraction(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
                for a in &active {
                    a.store(false, Ordering::Relaxed);
                }
                let count = (f * n as f64).round() as usize;
                for idx in rand::seq::index::sample(&mut rng, n.max(1), count.min(n)) {
                    active[idx].store(true, Ordering::Relaxed);
                }
            }
        }

        // The paper's default relies on *implicit* randomization through
        // asynchronous parallel updates (§III-A). That source vanishes when
        // only one worker thread exists or the graph is so small that each
        // thread processes a single contiguous chunk in node order — label
        // flooding across community bridges then becomes deterministic. In
        // that regime, fall back to the explicit shuffle.
        let threads = rayon::current_num_threads();
        let shuffle = self.explicit_randomization || threads <= 1 || n < 64 * threads;

        // Labels are node ids (or ids of the initial assignment), so the
        // per-thread scratch maps tallying weight-per-label are indexed by
        // that upper bound; the pool recycles them across iterations.
        let label_bound = match initial {
            Some(p) => p.upper_bound().max(n as u32),
            None => n as u32,
        } as usize;
        let scratch = ScratchPool::new();

        let span = rec.span("label-propagation");
        let mut termination = Termination::Converged;
        for _iter in 0..self.max_iterations {
            if let Err(t) = budget.check_sweep() {
                termination = t;
                break;
            }
            if shuffle {
                order.shuffle(&mut rng);
            }
            let active_count = active
                .par_iter()
                .filter(|a| a.load(Ordering::Relaxed))
                .count();
            // One sharded counter per iteration: workers bump a plain
            // thread-local integer, merged when the worker state drops at
            // the end of the parallel region.
            let updated = CounterCell::new();

            let iter_salt = self.seed ^ ((stats.iterations() as u64 + 1) << 32);
            order.par_iter().for_each_init(
                || (scratch.take(label_bound.max(1)), LocalCount::new(&updated)),
                |(weight_to, local_updates), &v| {
                    if g.degree(v) == 0 || !active[v as usize].load(Ordering::Relaxed) {
                        return;
                    }
                    weight_to.clear();
                    for (u, w) in g.edges_of(v) {
                        if u != v {
                            weight_to.add(labels.get(u), w);
                        }
                    }
                    let current = labels.get(v);
                    // Dominant label. The current label wins ties (keeps
                    // converged nodes stable); among strictly heavier
                    // candidates, ties break pseudo-randomly per node and
                    // iteration — the paper's "arbitrary" tie-breaking. A
                    // deterministic id-based rule would flood one label
                    // across community bridges.
                    let salt = iter_salt ^ splitmix64(v as u64);
                    let mut best = current;
                    let mut best_weight = weight_to.get(current);
                    let mut best_hash = u64::MAX; // current label: unbeatable on ties
                    for (l, w) in weight_to.iter() {
                        if w > best_weight {
                            best = l;
                            best_weight = w;
                            best_hash = splitmix64(l as u64 ^ salt);
                        } else if w == best_weight && best != current {
                            let h = splitmix64(l as u64 ^ salt);
                            if h > best_hash {
                                best = l;
                                best_hash = h;
                            }
                        }
                    }
                    if best != current {
                        labels.set(v, best);
                        local_updates.bump();
                        active[v as usize].store(true, Ordering::Relaxed);
                        for u in g.neighbors(v) {
                            active[*u as usize].store(true, Ordering::Relaxed);
                        }
                    } else {
                        active[v as usize].store(false, Ordering::Relaxed);
                    }
                },
            );

            let updated = updated.get();
            stats.active_per_iteration.push(active_count);
            stats.updated_per_iteration.push(updated as usize);
            span.push_series("active", active_count as f64);
            span.push_series("updated", updated as f64);
            if updated <= theta {
                break;
            }
        }
        span.counter("iterations", stats.iterations() as u64);
        span.counter(
            "label-updates",
            stats.updated_per_iteration.iter().map(|&u| u as u64).sum(),
        );
        span.close();

        // Postcondition on the racy label array itself: labels are node
        // ids (or initial-assignment ids), so every concurrently-written
        // value must stay below the id upper bound.
        #[cfg(any(debug_assertions, feature = "validate"))]
        {
            let upper = match initial {
                Some(p) => p.upper_bound().max(n as u32),
                None => n as u32,
            };
            if let Err(e) = labels.validate(upper.max(1)) {
                panic!("PLP postcondition violated: {e}");
            }
        }
        let mut result = labels.to_partition();
        result.compact();
        #[cfg(any(debug_assertions, feature = "validate"))]
        if let Err(e) = result.validate_dense() {
            panic!("PLP postcondition violated: {e}");
        }
        (result, termination)
    }
}

impl CommunityDetector for Plp {
    fn name(&self) -> String {
        if self.explicit_randomization {
            "PLP(randomized)".into()
        } else {
            "PLP".into()
        }
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_from(g, None)
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let zeta = self.run_with(g, None, &rec);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric("modularity", crate::quality::modularity(g, &zeta));
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination) = self.run_guarded(g, None, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric("modularity", crate::quality::modularity(g, &zeta));
        }
        guarded_result(
            zeta,
            termination,
            Some("label-propagation".into()),
            rec.finish(self.name()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{coverage, modularity};
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};
    use parcom_graph::GraphBuilder;

    #[test]
    fn finds_cliques_in_ring() {
        let (g, truth) = ring_of_cliques(8, 10);
        let mut plp = Plp::new();
        let zeta = plp.detect(&g);
        // every clique should be one community
        for u in g.nodes() {
            for v in g.nodes() {
                if truth.in_same_subset(u, v) {
                    assert!(zeta.in_same_subset(u, v), "clique nodes {u},{v} separated");
                }
            }
        }
        assert!(modularity(&g, &zeta) > 0.7);
    }

    #[test]
    fn labels_stabilize_quickly() {
        let (g, _) = ring_of_cliques(10, 8);
        let mut plp = Plp::new();
        let (_, report) = plp.detect_with_report(&g);
        let iterations = report
            .phase("label-propagation")
            .and_then(|p| p.counter("iterations"))
            .unwrap();
        assert!(iterations <= 20, "took {iterations} iterations");
    }

    #[test]
    fn updates_decline_over_iterations() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.2), 3);
        let mut plp = Plp::new();
        let (_, report) = plp.detect_with_report(&g);
        let prop = report.phase("label-propagation").unwrap();
        let u = prop.series("updated").unwrap();
        assert!(u.len() >= 2);
        assert!(u[u.len() - 1] < u[0], "updates should decline: {u:?}");
        // both Fig. 1 series cover every iteration
        assert_eq!(prop.series("active").unwrap().len(), u.len());
        assert_eq!(prop.counter("iterations"), Some(u.len() as u64));
    }

    #[test]
    fn reasonable_quality_on_lfr() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.2), 4);
        let mut plp = Plp::new();
        let zeta = plp.detect(&g);
        let q = modularity(&g, &zeta);
        assert!(q > 0.4, "PLP modularity too low on easy LFR: {q}");
        assert!(coverage(&g, &zeta) > 0.5);
    }

    #[test]
    fn isolated_nodes_keep_their_labels() {
        let g = GraphBuilder::from_edges(5, &[(0, 1)]);
        let mut plp = Plp::new();
        let zeta = plp.detect(&g);
        // nodes 2, 3, 4 remain singleton communities
        assert!(!zeta.in_same_subset(2, 3));
        assert!(!zeta.in_same_subset(3, 4));
        assert!(zeta.in_same_subset(0, 1));
    }

    #[test]
    fn explicit_randomization_also_converges() {
        let (g, _) = ring_of_cliques(6, 8);
        let mut plp = Plp {
            explicit_randomization: true,
            seed: 99,
            ..Plp::default()
        };
        let zeta = plp.detect(&g);
        assert!(modularity(&g, &zeta) > 0.6);
        assert_eq!(plp.name(), "PLP(randomized)");
    }

    #[test]
    fn seeded_from_initial_partition() {
        let (g, truth) = ring_of_cliques(5, 6);
        let mut plp = Plp::new();
        let zeta = plp.run_from(&g, Some(&truth));
        // starting from the ground truth it must not get worse
        assert!(modularity(&g, &zeta) >= modularity(&g, &truth) - 1e-12);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let mut plp = Plp::new();
        let g0 = GraphBuilder::new(0).build();
        assert_eq!(plp.detect(&g0).len(), 0);
        let g1 = GraphBuilder::new(1).build();
        assert_eq!(plp.detect(&g1).number_of_subsets(), 1);
    }

    #[test]
    fn respects_edge_weights() {
        // node 1 ties to community {0} with weight 10, to {2,3} with 1+1;
        // the heavy edge must win
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 5.0);
        let g = b.build();
        let mut plp = Plp::new();
        let zeta = plp.detect(&g);
        assert!(zeta.in_same_subset(0, 1), "heavy edge ignored: {zeta:?}");
        assert!(zeta.in_same_subset(2, 3));
    }

    #[test]
    fn seed_deactivation_still_converges() {
        let (g, _) = ring_of_cliques(6, 8);
        let mut plp = Plp {
            seed_perturbation: SeedPerturbation::DeactivateFraction(0.2),
            ..Plp::default()
        };
        let zeta = plp.detect(&g);
        assert!(modularity(&g, &zeta) > 0.6);
    }

    #[test]
    fn activate_only_fraction_converges() {
        let (g, _) = ring_of_cliques(6, 8);
        let mut plp = Plp {
            seed_perturbation: SeedPerturbation::ActivateOnlyFraction(0.3),
            ..Plp::default()
        };
        let zeta = plp.detect(&g);
        // activation spreads from the seed set through updates
        assert!(modularity(&g, &zeta) > 0.3);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_perturbation_fraction() {
        let (g, _) = ring_of_cliques(2, 3);
        let mut plp = Plp {
            seed_perturbation: SeedPerturbation::DeactivateFraction(1.5),
            ..Plp::default()
        };
        plp.detect(&g);
    }

    #[test]
    fn series_are_reset_between_runs() {
        let (g, _) = ring_of_cliques(4, 5);
        let mut plp = Plp::new();
        let iterations = |report: &parcom_obs::RunReport| {
            report
                .phase("label-propagation")
                .and_then(|p| p.counter("iterations"))
                .unwrap()
        };
        let (_, first) = plp.detect_with_report(&g);
        assert!(iterations(&first) > 0);
        // a second run starts a fresh report, not an accumulated one
        let (_, second) = plp.detect_with_report(&g);
        assert_eq!(iterations(&second), iterations(&first));
    }

    #[test]
    fn guarded_unlimited_budget_converges() {
        let (g, _) = ring_of_cliques(6, 8);
        let r = Plp::new().detect_guarded(&g, &crate::Budget::unlimited());
        assert_eq!(r.termination, crate::Termination::Converged);
        assert!(r.partition.validate_dense().is_ok());
        assert_eq!(r.report.termination.as_deref(), Some("converged"));
        assert_eq!(r.report.cut_phase, None);
    }

    #[test]
    fn guarded_sweep_cap_degrades_to_partial_labels() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.2), 5);
        let budget = crate::Budget::unlimited().with_max_sweeps(1);
        let r = Plp::new().detect_guarded(&g, &budget);
        assert_eq!(r.termination, crate::Termination::IterationCap);
        // the labels after the single completed sweep are a valid partition
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate_dense().is_ok());
        assert_eq!(r.report.termination.as_deref(), Some("iteration-cap"));
        assert_eq!(r.report.cut_phase.as_deref(), Some("label-propagation"));
    }

    #[test]
    fn set_seed_replaces_the_seed_field() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.4), 11);
        let mut plp = Plp::new();
        plp.set_seed(7);
        assert_eq!(plp.seed, 7);
        let _ = plp.detect(&g); // and the reseeded run still converges
    }
}
