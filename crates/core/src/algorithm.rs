//! The common interface of all community detection algorithms.

use parcom_graph::{Graph, Partition};
use parcom_obs::{Recorder, RunReport};

/// A (possibly stateful) community detection algorithm.
///
/// `detect` consumes no graph state — graphs are immutable — but takes
/// `&mut self` so algorithms can record run statistics (e.g. PLP's
/// per-iteration label counts for Fig. 1) and advance internal RNG state
/// between ensemble runs.
///
/// Two provided methods make every detector uniform to drive:
///
/// * [`set_seed`](Self::set_seed) replaces the zoo of bespoke `with_seed`
///   constructors — ensemble plumbing and the CLI reseed any detector the
///   same way, and deterministic algorithms simply ignore it.
/// * [`detect_with_report`](Self::detect_with_report) runs detection with
///   phase-level instrumentation and returns the structured
///   [`RunReport`] alongside the partition. The default wraps `detect`
///   in a single `detect` phase; instrumented algorithms (PLP, PLM,
///   EPP) override it with per-phase breakdowns. Reports honor the
///   `PARCOM_OBS` kill switch via [`Recorder::from_env`].
pub trait CommunityDetector {
    /// Human-readable algorithm label as used in the paper's figures
    /// (e.g. `"PLM"`, `"EPP(4,PLP,PLM)"`).
    fn name(&self) -> String;

    /// Detects communities in `g`.
    fn detect(&mut self, g: &Graph) -> Partition;

    /// Reseeds the algorithm's randomness. The default is a no-op:
    /// deterministic algorithms (CNM, PAM) have nothing to reseed.
    fn set_seed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Detects communities and returns the structured run report.
    ///
    /// The default implementation wraps [`detect`](Self::detect) in a
    /// single `detect` phase and records the input size and final
    /// community count; algorithms with internal phases override this.
    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let zeta = {
            let _span = rec.span("detect");
            self.detect(g)
        };
        rec.counter("communities", zeta.number_of_subsets() as u64);
        (zeta, rec.finish(self.name()))
    }
}

impl<T: CommunityDetector + ?Sized> CommunityDetector for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        (**self).detect(g)
    }

    // The provided methods must forward too: a `Box<dyn CommunityDetector>`
    // would otherwise silently use the defaults and drop the inner
    // algorithm's seed handling and phase breakdown.
    fn set_seed(&mut self, seed: u64) {
        (**self).set_seed(seed);
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        (**self).detect_with_report(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl CommunityDetector for Trivial {
        fn name(&self) -> String {
            "Trivial".into()
        }
        fn detect(&mut self, g: &Graph) -> Partition {
            Partition::all_in_one(g.node_count())
        }
    }

    /// Overrides the provided methods, to prove boxing forwards them.
    struct Seeded {
        seed: u64,
    }
    impl CommunityDetector for Seeded {
        fn name(&self) -> String {
            "Seeded".into()
        }
        fn detect(&mut self, g: &Graph) -> Partition {
            Partition::singleton(g.node_count())
        }
        fn set_seed(&mut self, seed: u64) {
            self.seed = seed;
        }
        fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
            let mut report = RunReport::empty(self.name());
            report.counters.push(("seed".into(), self.seed));
            (self.detect(g), report)
        }
    }

    #[test]
    fn boxed_detector_delegates() {
        let mut boxed: Box<dyn CommunityDetector> = Box::new(Trivial);
        assert_eq!(boxed.name(), "Trivial");
        let g = parcom_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(boxed.detect(&g).number_of_subsets(), 1);
    }

    #[test]
    fn default_report_wraps_detect() {
        let g = parcom_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let (zeta, report) = Trivial.detect_with_report(&g);
        assert_eq!(zeta.number_of_subsets(), 1);
        assert_eq!(report.algorithm, "Trivial");
        assert_eq!(report.counter("nodes"), Some(3));
        assert_eq!(report.counter("edges"), Some(2));
        assert_eq!(report.counter("communities"), Some(1));
        assert!(report.phase("detect").is_some());
    }

    #[test]
    fn boxing_forwards_overridden_provided_methods() {
        let mut boxed: Box<dyn CommunityDetector + Send> = Box::new(Seeded { seed: 0 });
        boxed.set_seed(42);
        let g = parcom_graph::GraphBuilder::from_edges(2, &[(0, 1)]);
        let (_, report) = boxed.detect_with_report(&g);
        // the override's report shape, not the default's
        assert_eq!(report.counter("seed"), Some(42));
        assert!(report.phases.is_empty());
    }
}
