//! The common interface of all community detection algorithms.

use parcom_graph::{Graph, Partition};

/// A (possibly stateful) community detection algorithm.
///
/// `detect` consumes no graph state — graphs are immutable — but takes
/// `&mut self` so algorithms can record run statistics (e.g. PLP's
/// per-iteration label counts for Fig. 1) and advance internal RNG state
/// between ensemble runs.
pub trait CommunityDetector {
    /// Human-readable algorithm label as used in the paper's figures
    /// (e.g. `"PLM"`, `"EPP(4,PLP,PLM)"`).
    fn name(&self) -> String;

    /// Detects communities in `g`.
    fn detect(&mut self, g: &Graph) -> Partition;
}

impl<T: CommunityDetector + ?Sized> CommunityDetector for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        (**self).detect(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl CommunityDetector for Trivial {
        fn name(&self) -> String {
            "Trivial".into()
        }
        fn detect(&mut self, g: &Graph) -> Partition {
            Partition::all_in_one(g.node_count())
        }
    }

    #[test]
    fn boxed_detector_delegates() {
        let mut boxed: Box<dyn CommunityDetector> = Box::new(Trivial);
        assert_eq!(boxed.name(), "Trivial");
        let g = parcom_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(boxed.detect(&g).number_of_subsets(), 1);
    }
}
