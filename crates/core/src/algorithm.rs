//! The common interface of all community detection algorithms.

use parcom_graph::{Graph, Partition};
use parcom_guard::{Budget, Termination};
use parcom_obs::{Recorder, RunReport};

/// The outcome of a budgeted run ([`CommunityDetector::detect_guarded`]):
/// the partition — degraded to the best valid one found so far when the
/// budget expired mid-run — plus why the run stopped and its report. The
/// report's `termination` field always carries
/// [`Termination::as_str`]; `cut_phase` names the phase that was executing
/// when the budget expired, for interrupted runs.
#[derive(Clone, Debug)]
pub struct GuardedResult {
    /// The detected (or partially detected) community assignment. Always a
    /// valid partition of the input graph, whatever the termination cause.
    pub partition: Partition,
    /// How the run ended.
    pub termination: Termination,
    /// The instrumented run report, with termination cause recorded.
    pub report: RunReport,
}

/// Stamps the termination cause (and, for interrupted runs, the cut
/// phase) onto a finished report — the single way detectors build a
/// [`GuardedResult`], so the report and the result can't disagree.
pub(crate) fn guarded_result(
    partition: Partition,
    termination: Termination,
    cut_phase: Option<String>,
    mut report: RunReport,
) -> GuardedResult {
    report.termination = Some(termination.as_str().to_string());
    report.cut_phase = if termination.interrupted() {
        cut_phase
    } else {
        None
    };
    GuardedResult {
        partition,
        termination,
        report,
    }
}

/// The shared preflight of every `detect_guarded`: input admission and an
/// already-expired budget both short-circuit to a singleton partition
/// (every node its own community — trivially valid) before any real work
/// or allocation happens.
// the Err IS the early-return value; boxing it would force every
// detect_guarded to unbox on the cold path for no benefit
#[allow(clippy::result_large_err)]
pub(crate) fn guard_preflight(
    name: String,
    g: &Graph,
    budget: &Budget,
) -> Result<(), GuardedResult> {
    let early = match budget.admits(g.node_count(), g.edge_count()) {
        Err(t) => Some(t),
        Ok(()) => budget.check().err(),
    };
    match early {
        Some(t) => Err(guarded_result(
            Partition::singleton(g.node_count()),
            t,
            None,
            RunReport::empty(name),
        )),
        None => Ok(()),
    }
}

/// A (possibly stateful) community detection algorithm.
///
/// `detect` consumes no graph state — graphs are immutable — but takes
/// `&mut self` so algorithms can record run statistics (e.g. PLP's
/// per-iteration label counts for Fig. 1) and advance internal RNG state
/// between ensemble runs.
///
/// Two provided methods make every detector uniform to drive:
///
/// * [`set_seed`](Self::set_seed) replaces the zoo of bespoke `with_seed`
///   constructors — ensemble plumbing and the CLI reseed any detector the
///   same way, and deterministic algorithms simply ignore it.
/// * [`detect_with_report`](Self::detect_with_report) runs detection with
///   phase-level instrumentation and returns the structured
///   [`RunReport`] alongside the partition. The default wraps `detect`
///   in a single `detect` phase; instrumented algorithms (PLP, PLM,
///   EPP) override it with per-phase breakdowns. Reports honor the
///   `PARCOM_OBS` kill switch via [`Recorder::from_env`].
pub trait CommunityDetector {
    /// Human-readable algorithm label as used in the paper's figures
    /// (e.g. `"PLM"`, `"EPP(4,PLP,PLM)"`).
    fn name(&self) -> String;

    /// Detects communities in `g`.
    fn detect(&mut self, g: &Graph) -> Partition;

    /// Reseeds the algorithm's randomness. The default is a no-op:
    /// deterministic algorithms (CNM, PAM) have nothing to reseed.
    fn set_seed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Detects communities and returns the structured run report.
    ///
    /// The default implementation wraps [`detect`](Self::detect) in a
    /// single `detect` phase and records the input size and final
    /// community count; algorithms with internal phases override this.
    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let zeta = {
            let _span = rec.span("detect");
            self.detect(g)
        };
        rec.counter("communities", zeta.number_of_subsets() as u64);
        (zeta, rec.finish(self.name()))
    }

    /// Detects communities under a run [`Budget`].
    ///
    /// The contract (see DESIGN.md §11): the budget is checked at
    /// sweep/level/ensemble-member boundaries — never per edge — and when
    /// it expires the run *degrades gracefully*: it flattens and returns
    /// the best valid partition found so far (the current hierarchy level
    /// projected back to the fine graph) instead of panicking or running
    /// on. [`GuardedResult::termination`] says how the run ended and the
    /// report's `cut_phase` which phase was interrupted.
    ///
    /// The default implementation only guards the *boundaries*: input
    /// admission and an expired budget short-circuit before work starts,
    /// and otherwise the full [`detect_with_report`](Self::detect_with_report)
    /// runs to convergence. Every detector in this crate overrides it with
    /// real mid-run checks.
    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let (partition, report) = self.detect_with_report(g);
        guarded_result(partition, Termination::Converged, None, report)
    }
}

impl<T: CommunityDetector + ?Sized> CommunityDetector for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        (**self).detect(g)
    }

    // The provided methods must forward too: a `Box<dyn CommunityDetector>`
    // would otherwise silently use the defaults and drop the inner
    // algorithm's seed handling and phase breakdown.
    fn set_seed(&mut self, seed: u64) {
        (**self).set_seed(seed);
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        (**self).detect_with_report(g)
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        (**self).detect_guarded(g, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl CommunityDetector for Trivial {
        fn name(&self) -> String {
            "Trivial".into()
        }
        fn detect(&mut self, g: &Graph) -> Partition {
            Partition::all_in_one(g.node_count())
        }
    }

    /// Overrides the provided methods, to prove boxing forwards them.
    struct Seeded {
        seed: u64,
    }
    impl CommunityDetector for Seeded {
        fn name(&self) -> String {
            "Seeded".into()
        }
        fn detect(&mut self, g: &Graph) -> Partition {
            Partition::singleton(g.node_count())
        }
        fn set_seed(&mut self, seed: u64) {
            self.seed = seed;
        }
        fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
            let mut report = RunReport::empty(self.name());
            report.counters.push(("seed".into(), self.seed));
            (self.detect(g), report)
        }
    }

    #[test]
    fn boxed_detector_delegates() {
        let mut boxed: Box<dyn CommunityDetector> = Box::new(Trivial);
        assert_eq!(boxed.name(), "Trivial");
        let g = parcom_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(boxed.detect(&g).number_of_subsets(), 1);
    }

    #[test]
    fn default_report_wraps_detect() {
        let g = parcom_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let (zeta, report) = Trivial.detect_with_report(&g);
        assert_eq!(zeta.number_of_subsets(), 1);
        assert_eq!(report.algorithm, "Trivial");
        assert_eq!(report.counter("nodes"), Some(3));
        assert_eq!(report.counter("edges"), Some(2));
        assert_eq!(report.counter("communities"), Some(1));
        assert!(report.phase("detect").is_some());
    }

    #[test]
    fn boxing_forwards_overridden_provided_methods() {
        let mut boxed: Box<dyn CommunityDetector + Send> = Box::new(Seeded { seed: 0 });
        boxed.set_seed(42);
        let g = parcom_graph::GraphBuilder::from_edges(2, &[(0, 1)]);
        let (_, report) = boxed.detect_with_report(&g);
        // the override's report shape, not the default's
        assert_eq!(report.counter("seed"), Some(42));
        assert!(report.phases.is_empty());
    }

    #[test]
    fn default_guarded_run_converges() {
        let g = parcom_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let r = Trivial.detect_guarded(&g, &Budget::unlimited());
        assert_eq!(r.termination, Termination::Converged);
        assert_eq!(r.partition.number_of_subsets(), 1);
        assert_eq!(r.report.termination.as_deref(), Some("converged"));
        assert_eq!(r.report.cut_phase, None);
    }

    #[test]
    fn preflight_rejects_oversized_input_before_any_work() {
        let g = parcom_graph::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let budget = Budget::unlimited().with_input_limits(2, 100);
        let r = Trivial.detect_guarded(&g, &budget);
        assert_eq!(r.termination, Termination::InputRejected);
        // degraded result: the trivially valid singleton partition
        assert_eq!(r.partition.len(), 3);
        assert_eq!(r.partition.number_of_subsets(), 3);
        assert_eq!(r.report.termination.as_deref(), Some("input-rejected"));
    }

    #[test]
    fn preflight_catches_already_expired_budget() {
        let g = parcom_graph::GraphBuilder::from_edges(2, &[(0, 1)]);
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let r = Trivial.detect_guarded(&g, &budget);
        assert_eq!(r.termination, Termination::Deadline);
        assert_eq!(r.partition.len(), 2);
    }

    #[test]
    fn boxing_forwards_detect_guarded() {
        struct Guarded;
        impl CommunityDetector for Guarded {
            fn name(&self) -> String {
                "Guarded".into()
            }
            fn detect(&mut self, g: &Graph) -> Partition {
                Partition::singleton(g.node_count())
            }
            fn detect_guarded(&mut self, g: &Graph, _budget: &Budget) -> GuardedResult {
                let mut report = RunReport::empty(self.name());
                report.counters.push(("custom".into(), 1));
                guarded_result(self.detect(g), Termination::Converged, None, report)
            }
        }
        let mut boxed: Box<dyn CommunityDetector + Send> = Box::new(Guarded);
        let g = parcom_graph::GraphBuilder::from_edges(2, &[(0, 1)]);
        let r = boxed.detect_guarded(&g, &Budget::unlimited());
        assert_eq!(r.report.counter("custom"), Some(1));
    }
}
