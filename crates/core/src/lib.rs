#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-core — parallel community detection algorithms
//!
//! The paper's contribution (Staudt & Meyerhenke, *Engineering Parallel
//! Algorithms for Community Detection in Massive Networks*) and every
//! competitor it evaluates against:
//!
//! | Algorithm | Paper role | Type |
//! |---|---|---|
//! | [`Plp`] | §III-A | parallel label propagation (ours) |
//! | [`Plm`] | §III-B | parallel Louvain method (ours) |
//! | [`Plm::with_refinement`] (PLMR) | §III-C | PLM + per-level refinement (ours) |
//! | [`Epp`] | §III-D | ensemble preprocessing over PLP + PLM/PLMR (ours) |
//! | [`Louvain`] | §V-E a | original sequential Louvain |
//! | [`Pam`] | §V-E b | CLU_TBB-like parallel matching agglomeration |
//! | [`Pam::cel`] | §V-E b | CEL-like plain matching agglomeration |
//! | [`Cnm`] | §II | globally greedy agglomeration |
//! | [`Rg`] | §V-E c | randomized greedy agglomeration |
//! | [`Cggc`] / [`Cggc::iterated`] | §V-E c | core-groups ensembles over RG |
//!
//! Plus the measurement layer: modularity/coverage ([`quality`]), partition
//! similarity ([`compare`]; Jaccard for Fig. 8), consensus combination
//! ([`combine`]) and community graphs ([`community_graph`]; Fig. 11).

pub mod agglomeration;
pub mod algorithm;
pub mod cggc;
pub mod cnm;
pub mod combine;
pub mod community_graph;
pub mod community_stats;
pub mod compare;
pub mod epp;
pub mod louvain;
pub mod moves;
pub mod pam;
pub mod plm;
pub mod plp;
pub mod quality;
pub mod rg;
pub mod spec;

pub use algorithm::{CommunityDetector, GuardedResult};
pub use cggc::Cggc;
pub use cnm::Cnm;
pub use community_graph::CommunityGraph;
pub use community_stats::{community_stats, partition_summary, CommunityStat, PartitionSummary};
pub use epp::{Epp, EppIterated};
pub use louvain::Louvain;
pub use moves::{move_phase_strategy, move_phase_with_coloring, MoveStrategy};
pub use pam::Pam;
pub use plm::{move_phase, move_phase_with, Plm, PlmStats};
pub use plp::{Plp, PlpStats, SeedPerturbation};
pub use rg::Rg;
pub use spec::{DetectorSpec, SpecError};

// The observability layer the detectors report through, re-exported so
// downstream users of `detect_with_report` need no direct obs dependency.
pub use parcom_obs::{PhaseReport, Recorder, RunReport};

// The guard layer `detect_guarded` is driven by, re-exported for the same
// reason: budgets and termination causes are part of the detector API.
pub use parcom_guard::{Budget, CancelToken, Termination};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::algorithm::{CommunityDetector, GuardedResult};
    pub use crate::compare::{adjusted_rand_index, jaccard_index, nmi};
    pub use crate::quality::{coverage, modularity, modularity_gamma};
    pub use crate::spec::DetectorSpec;
    pub use crate::{Cggc, Cnm, Epp, Louvain, Pam, Plm, Plp, Rg};
    pub use parcom_guard::{Budget, CancelToken, Termination};
    pub use parcom_obs::{Recorder, RunReport};
}
