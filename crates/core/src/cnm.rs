//! CNM — the globally greedy agglomerative baseline (Clauset–Newman–Moore).
//!
//! Starts from singletons and always executes the merge with the globally
//! maximal Δmod until no merge improves modularity. Implemented with a lazy
//! max-heap: candidate merges carry the version counters of both endpoints
//! and are discarded on pop if either community has changed since.

use crate::agglomeration::{MergeState, OrderedDelta};
use crate::algorithm::CommunityDetector;
use parcom_graph::{Graph, Partition};
use std::collections::BinaryHeap;

/// The CNM greedy modularity agglomerator.
#[derive(Clone, Debug, Default)]
pub struct Cnm {
    /// Resolution parameter (1 = standard modularity).
    pub gamma: f64,
}

impl Cnm {
    /// CNM with standard modularity.
    pub fn new() -> Self {
        Self { gamma: 1.0 }
    }
}

#[derive(PartialEq, Eq)]
struct Candidate {
    delta: OrderedDelta,
    a: u32,
    b: u32,
    va: u64,
    vb: u64,
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.delta.cmp(&other.delta)
    }
}

impl CommunityDetector for Cnm {
    fn name(&self) -> String {
        "CNM".into()
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        let n = g.node_count();
        if n == 0 {
            return Partition::singleton(0);
        }
        if g.total_edge_weight() == 0.0 {
            return Partition::singleton(n);
        }
        let mut state = MergeState::new(g, self.gamma);
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();

        for a in 0..n as u32 {
            for (&b, _) in state.between[a as usize].iter() {
                if a < b {
                    heap.push(Candidate {
                        delta: OrderedDelta(state.delta(a, b)),
                        a,
                        b,
                        va: state.version[a as usize],
                        vb: state.version[b as usize],
                    });
                }
            }
        }

        while let Some(cand) = heap.pop() {
            let (a, b) = (cand.a, cand.b);
            if !state.active[a as usize]
                || !state.active[b as usize]
                || state.version[a as usize] != cand.va
                || state.version[b as usize] != cand.vb
            {
                continue; // stale candidate
            }
            if cand.delta.0 <= 0.0 {
                break; // global maximum reached
            }
            let survivor = state.merge(a, b);
            // re-queue candidates around the merged community
            let neighbors: Vec<u32> = state.between[survivor as usize].keys().copied().collect();
            for c in neighbors {
                heap.push(Candidate {
                    delta: OrderedDelta(state.delta(survivor, c)),
                    a: survivor,
                    b: c,
                    va: state.version[survivor as usize],
                    vb: state.version[c as usize],
                });
            }
        }

        state.to_partition()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};
    use parcom_graph::GraphBuilder;

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = ring_of_cliques(6, 6);
        let zeta = Cnm::new().detect(&g);
        assert_eq!(zeta.number_of_subsets(), 6);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(truth.in_same_subset(u, v), zeta.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn never_returns_worse_than_singletons() {
        let (g, _) = lfr(LfrParams::benchmark(500, 0.4), 3);
        let zeta = Cnm::new().detect(&g);
        let q = modularity(&g, &zeta);
        let q0 = modularity(&g, &Partition::singleton(g.node_count()));
        assert!(q >= q0);
        assert!(q > 0.3, "CNM quality too low: {q}");
    }

    #[test]
    fn greedy_merges_monotonically_improve() {
        // CNM stops at a local max: final quality must beat every trivial cut
        let (g, _) = ring_of_cliques(4, 5);
        let q = modularity(&g, &Cnm::new().detect(&g));
        assert!(q > modularity(&g, &Partition::all_in_one(g.node_count())));
    }

    #[test]
    fn edgeless_graph_stays_singleton() {
        let g = GraphBuilder::new(4).build();
        let zeta = Cnm::new().detect(&g);
        assert_eq!(zeta.number_of_subsets(), 4);
    }

    #[test]
    fn two_cliques_one_bridge() {
        let (g, _) = ring_of_cliques(2, 5);
        let zeta = Cnm::new().detect(&g);
        assert_eq!(zeta.number_of_subsets(), 2);
    }

    #[test]
    fn quality_in_plm_ballpark_on_lfr() {
        let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 5);
        let q_cnm = modularity(&g, &Cnm::new().detect(&g));
        let q_plm = modularity(&g, &crate::plm::Plm::new().detect(&g));
        // CNM is known to be weaker on unbalanced structures but not by far
        assert!(q_cnm > q_plm - 0.15, "CNM {q_cnm} vs PLM {q_plm}");
    }
}
