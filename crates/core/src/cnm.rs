//! CNM — the globally greedy agglomerative baseline (Clauset–Newman–Moore).
//!
//! Starts from singletons and always executes the merge with the globally
//! maximal Δmod until no merge improves modularity. Implemented with a lazy
//! max-heap: candidate merges carry the version counters of both endpoints
//! and are discarded on pop if either community has changed since.

use crate::agglomeration::{MergeState, OrderedDelta};
use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use crate::rg::MERGE_CHECK_INTERVAL;
use parcom_graph::{Graph, Partition};
use parcom_guard::{Budget, Pacer, Termination};
use parcom_obs::{Recorder, RunReport};
use std::collections::BinaryHeap;

/// The CNM greedy modularity agglomerator.
#[derive(Clone, Debug, Default)]
pub struct Cnm {
    /// Resolution parameter (1 = standard modularity).
    pub gamma: f64,
}

impl Cnm {
    /// CNM with standard modularity.
    pub fn new() -> Self {
        Self { gamma: 1.0 }
    }
}

#[derive(PartialEq, Eq)]
struct Candidate {
    delta: OrderedDelta,
    a: u32,
    b: u32,
    va: u64,
    vb: u64,
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.delta.cmp(&other.delta)
    }
}

impl Cnm {
    /// The greedy merge loop under a recorder and a budget, shared by
    /// every entry point. The budget is paced at one check per
    /// [`MERGE_CHECK_INTERVAL`] heap pops; CNM only ever executes
    /// improving merges, so the state at *any* interruption point is the
    /// best partition on its greedy path so far — degradation just stops
    /// merging early.
    fn run_guarded(
        &self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        let n = g.node_count();
        if n == 0 {
            return (Partition::singleton(0), Termination::Converged, None);
        }
        if g.total_edge_weight() == 0.0 {
            return (Partition::singleton(n), Termination::Converged, None);
        }
        let seed_span = rec.span("seed-heap");
        let mut state = MergeState::new(g, self.gamma);
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();

        // bounded O(m) seeding pass; the paced budget checks start with the
        // very next loop, so a deadline is noticed within one interval
        // audit:allow(budget-check)
        for a in 0..n as u32 {
            for (&b, _) in state.between[a as usize].iter() {
                if a < b {
                    heap.push(Candidate {
                        delta: OrderedDelta(state.delta(a, b)),
                        a,
                        b,
                        va: state.version[a as usize],
                        vb: state.version[b as usize],
                    });
                }
            }
        }
        seed_span.counter("candidates", heap.len() as u64);
        seed_span.close();

        let merge_span = rec.span("agglomerate");
        let mut merges = 0u64;
        let mut termination = Termination::Converged;
        let mut pacer = Pacer::new(MERGE_CHECK_INTERVAL);
        while let Some(cand) = heap.pop() {
            if pacer.tick() {
                if let Err(t) = budget.check() {
                    termination = t;
                    break;
                }
            }
            let (a, b) = (cand.a, cand.b);
            if !state.active[a as usize]
                || !state.active[b as usize]
                || state.version[a as usize] != cand.va
                || state.version[b as usize] != cand.vb
            {
                continue; // stale candidate
            }
            if cand.delta.0 <= 0.0 {
                break; // global maximum reached
            }
            let survivor = state.merge(a, b);
            merges += 1;
            // re-queue candidates around the merged community
            let neighbors: Vec<u32> = state.between[survivor as usize].keys().copied().collect();
            for c in neighbors {
                heap.push(Candidate {
                    delta: OrderedDelta(state.delta(survivor, c)),
                    a: survivor,
                    b: c,
                    va: state.version[survivor as usize],
                    vb: state.version[c as usize],
                });
            }
        }
        merge_span.counter("merges", merges);
        merge_span.close();

        (
            state.to_partition(),
            termination,
            Some("agglomerate".into()),
        )
    }
}

impl CommunityDetector for Cnm {
    fn name(&self) -> String {
        "CNM".into()
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_guarded(g, &Recorder::disabled(), &Budget::unlimited())
            .0
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, _, _) = self.run_guarded(g, &rec, &Budget::unlimited());
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric("modularity", crate::quality::modularity(g, &zeta));
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};
    use parcom_graph::GraphBuilder;

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = ring_of_cliques(6, 6);
        let zeta = Cnm::new().detect(&g);
        assert_eq!(zeta.number_of_subsets(), 6);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(truth.in_same_subset(u, v), zeta.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn never_returns_worse_than_singletons() {
        let (g, _) = lfr(LfrParams::benchmark(500, 0.4), 3);
        let zeta = Cnm::new().detect(&g);
        let q = modularity(&g, &zeta);
        let q0 = modularity(&g, &Partition::singleton(g.node_count()));
        assert!(q >= q0);
        assert!(q > 0.3, "CNM quality too low: {q}");
    }

    #[test]
    fn greedy_merges_monotonically_improve() {
        // CNM stops at a local max: final quality must beat every trivial cut
        let (g, _) = ring_of_cliques(4, 5);
        let q = modularity(&g, &Cnm::new().detect(&g));
        assert!(q > modularity(&g, &Partition::all_in_one(g.node_count())));
    }

    #[test]
    fn edgeless_graph_stays_singleton() {
        let g = GraphBuilder::new(4).build();
        let zeta = Cnm::new().detect(&g);
        assert_eq!(zeta.number_of_subsets(), 4);
    }

    #[test]
    fn two_cliques_one_bridge() {
        let (g, _) = ring_of_cliques(2, 5);
        let zeta = Cnm::new().detect(&g);
        assert_eq!(zeta.number_of_subsets(), 2);
    }

    #[test]
    fn report_has_agglomeration_phases() {
        let (g, _) = ring_of_cliques(5, 5);
        let (_, report) = Cnm::new().detect_with_report(&g);
        let seed = report.phase("seed-heap").expect("seed-heap phase");
        assert!(seed.counter("candidates").unwrap() > 0);
        let agg = report.phase("agglomerate").expect("agglomerate phase");
        assert!(agg.counter("merges").unwrap() > 0);
        assert!(report.metric("modularity").unwrap() > 0.5);
    }

    #[test]
    fn guarded_cancellation_stops_merging_early() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.3), 3);
        let token = crate::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_token(token);
        let r = Cnm::new().detect_guarded(&g, &budget);
        assert_eq!(r.termination, Termination::Cancelled);
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate().is_ok());
        assert_eq!(r.report.termination.as_deref(), Some("cancelled"));
    }

    #[test]
    fn quality_in_plm_ballpark_on_lfr() {
        let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 5);
        let q_cnm = modularity(&g, &Cnm::new().detect(&g));
        let q_plm = modularity(&g, &crate::plm::Plm::new().detect(&g));
        // CNM is known to be weaker on unbalanced structures but not by far
        assert!(q_cnm > q_plm - 0.15, "CNM {q_cnm} vs PLM {q_plm}");
    }
}
