//! `DetectorSpec` — a declarative description of a detector run, and the
//! single registry that turns it into a `Box<dyn CommunityDetector>`.
//!
//! Every front end (the CLI's `--algo` flag, `parcom-serve` request
//! bodies, benches) used to carry its own `match algo { ... }` string
//! dispatch; each copy drifted independently and none agreed on which
//! knobs an algorithm accepts. The spec centralizes that: one
//! [`REGISTRY`] of [`AlgoInfo`] entries declares every constructible
//! algorithm, its knobs, and its build function, and [`DetectorSpec`]
//! is the serializable request that names one of them.
//!
//! Two wire forms round-trip losslessly:
//!
//! * **string** — `plm:gamma=1.5,seed=7` (knob order is canonicalized
//!   by [`Display`](std::fmt::Display): `ensemble`, `gamma`, `move`,
//!   `randomized`, `seed`);
//! * **JSON** — `{"algo":"plm","gamma":1.5,"seed":7}` (a flat object).
//!
//! Validation happens on entry ([`DetectorSpec::parse`] /
//! [`DetectorSpec::from_json`]) *and* again in [`DetectorSpec::build`],
//! so a hand-assembled spec cannot bypass the knob rules: unknown
//! algorithms list the registry, knobs not accepted by the chosen
//! algorithm list the accepted set, and out-of-domain values (negative
//! `gamma`, zero `ensemble`) are rejected.

use crate::algorithm::CommunityDetector;
use crate::moves::MoveStrategy;
use crate::{Cggc, Cnm, Epp, EppIterated, Louvain, Pam, Plm, Plp, Rg};
use parcom_obs::json::{self, Value};

/// Ensemble size used when a spec names an ensemble algorithm without an
/// explicit `ensemble` knob (the paper's default configuration).
pub const DEFAULT_ENSEMBLE: usize = 4;

/// A tunable accepted by some registered algorithms. `seed` is universal
/// (every detector implements [`CommunityDetector::set_seed`], if only as
/// a no-op) and therefore not listed per algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Knob {
    /// Ensemble size (`epp`, `eppr`, `eml`, `cggc`, `cggci`).
    Ensemble,
    /// Modularity resolution γ (`plm`, `plmr`, `rg`).
    Gamma,
    /// PLM move-phase strategy `racy|coloring|sync` (`plm`, `plmr`, and
    /// forwarded to the PLM final of `epp`/`eppr`); see DESIGN.md §14.
    Move,
    /// Explicit per-iteration shuffle instead of relying on parallel
    /// scheduling randomness (`plp`; the paper's §III-A ablation).
    Randomized,
}

impl Knob {
    /// The wire name of the knob (string form key, JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Knob::Ensemble => "ensemble",
            Knob::Gamma => "gamma",
            Knob::Move => "move",
            Knob::Randomized => "randomized",
        }
    }
}

/// One registered algorithm: its canonical name, a coarse family label
/// (used by CI to pick one representative per family), the knobs it
/// accepts beyond the universal `seed`, and its build function.
pub struct AlgoInfo {
    /// Canonical wire name (`plp`, `plm`, ...).
    pub name: &'static str,
    /// Coarse family: `propagation`, `louvain`, `ensemble`, `matching`
    /// or `agglomeration`.
    pub family: &'static str,
    /// One-line description (usage text, serve introspection).
    pub summary: &'static str,
    /// Knobs this algorithm accepts (besides `seed`).
    pub knobs: &'static [Knob],
    build: fn(&DetectorSpec) -> Box<dyn CommunityDetector + Send>,
}

impl AlgoInfo {
    /// Whether this algorithm accepts `knob`.
    pub fn accepts(&self, knob: Knob) -> bool {
        self.knobs.contains(&knob)
    }
}

/// Every constructible algorithm. The CLI's `--algo`, serve's
/// `spec.algo`, usage text and error messages all derive from this table;
/// adding an algorithm here is the *whole* registration.
pub const REGISTRY: &[AlgoInfo] = &[
    AlgoInfo {
        name: "plp",
        family: "propagation",
        summary: "parallel label propagation (§III-A)",
        knobs: &[Knob::Randomized],
        build: |s| {
            Box::new(Plp {
                explicit_randomization: s.randomized.unwrap_or(false),
                ..Plp::default()
            })
        },
    },
    AlgoInfo {
        name: "plm",
        family: "louvain",
        summary: "parallel Louvain method (§III-B)",
        knobs: &[Knob::Gamma, Knob::Move],
        build: |s| {
            Box::new(Plm {
                gamma: s.gamma.unwrap_or(1.0),
                move_strategy: s.move_strategy.unwrap_or_default(),
                ..Plm::default()
            })
        },
    },
    AlgoInfo {
        name: "plmr",
        family: "louvain",
        summary: "PLM with per-level refinement (§III-C)",
        knobs: &[Knob::Gamma, Knob::Move],
        build: |s| {
            Box::new(Plm {
                refine: true,
                gamma: s.gamma.unwrap_or(1.0),
                move_strategy: s.move_strategy.unwrap_or_default(),
                ..Plm::default()
            })
        },
    },
    AlgoInfo {
        name: "epp",
        family: "ensemble",
        summary: "ensemble preprocessing, PLP cores + PLM final (§III-D)",
        knobs: &[Knob::Ensemble, Knob::Move],
        build: |s| {
            Box::new(Epp::plp_plm_with(
                s.ensemble.unwrap_or(DEFAULT_ENSEMBLE),
                s.move_strategy.unwrap_or_default(),
            ))
        },
    },
    AlgoInfo {
        name: "eppr",
        family: "ensemble",
        summary: "ensemble preprocessing with PLMR final",
        knobs: &[Knob::Ensemble, Knob::Move],
        build: |s| {
            Box::new(Epp::plp_plmr_with(
                s.ensemble.unwrap_or(DEFAULT_ENSEMBLE),
                s.move_strategy.unwrap_or_default(),
            ))
        },
    },
    AlgoInfo {
        name: "eml",
        family: "ensemble",
        summary: "iterated ensemble multilevel",
        knobs: &[Knob::Ensemble],
        build: |s| Box::new(EppIterated::new(s.ensemble.unwrap_or(DEFAULT_ENSEMBLE))),
    },
    AlgoInfo {
        name: "louvain",
        family: "louvain",
        summary: "original sequential Louvain (§V-E a)",
        knobs: &[],
        build: |_| Box::new(Louvain::new()),
    },
    AlgoInfo {
        name: "pam",
        family: "matching",
        summary: "CLU_TBB-like parallel matching agglomeration (§V-E b)",
        knobs: &[],
        build: |_| Box::new(Pam::new()),
    },
    AlgoInfo {
        name: "cel",
        family: "matching",
        summary: "CEL-like plain matching agglomeration",
        knobs: &[],
        build: |_| Box::new(Pam::cel()),
    },
    AlgoInfo {
        name: "cnm",
        family: "agglomeration",
        summary: "globally greedy agglomeration (§II)",
        knobs: &[],
        build: |_| Box::new(Cnm::new()),
    },
    AlgoInfo {
        name: "rg",
        family: "agglomeration",
        summary: "randomized greedy agglomeration (§V-E c)",
        knobs: &[Knob::Gamma],
        build: |s| {
            Box::new(Rg {
                gamma: s.gamma.unwrap_or(1.0),
                ..Rg::default()
            })
        },
    },
    AlgoInfo {
        name: "cggc",
        family: "ensemble",
        summary: "core-groups ensemble over RG",
        knobs: &[Knob::Ensemble],
        build: |s| Box::new(Cggc::new(s.ensemble.unwrap_or(DEFAULT_ENSEMBLE))),
    },
    AlgoInfo {
        name: "cggci",
        family: "ensemble",
        summary: "iterated core-groups ensemble",
        knobs: &[Knob::Ensemble],
        build: |s| Box::new(Cggc::iterated(s.ensemble.unwrap_or(DEFAULT_ENSEMBLE))),
    },
];

/// The registry entry for `name`, if registered.
pub fn lookup(name: &str) -> Option<&'static AlgoInfo> {
    REGISTRY.iter().find(|a| a.name == name)
}

/// Canonical algorithm names, in registry order.
pub fn algorithm_names() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().map(|a| a.name)
}

/// The names joined with `|`, for usage strings.
pub fn algorithm_list() -> String {
    algorithm_names().collect::<Vec<_>>().join("|")
}

/// Why a spec failed to parse, validate or build.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The named algorithm is not in the registry. The message enumerates
    /// every registered name, so front ends never hand-maintain the list.
    UnknownAlgo {
        /// The rejected name.
        name: String,
    },
    /// The key is not a knob the chosen algorithm accepts.
    UnknownKnob {
        /// The chosen algorithm.
        algo: &'static str,
        /// The rejected key.
        key: String,
    },
    /// A knob value failed to parse or lies outside its domain.
    BadValue {
        /// The knob in question.
        key: String,
        /// What was wrong with the value.
        message: String,
    },
    /// The input is not in the `algo[:k=v,...]` / flat-JSON-object shape.
    Malformed(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownAlgo { name } => {
                write!(
                    f,
                    "unknown algorithm `{name}` (valid: {})",
                    algorithm_names().collect::<Vec<_>>().join(", ")
                )
            }
            SpecError::UnknownKnob { algo, key } => {
                let mut accepted: Vec<&str> = vec!["seed"];
                if let Some(info) = lookup(algo) {
                    accepted.extend(info.knobs.iter().map(|k| k.name()));
                }
                accepted.sort_unstable();
                write!(
                    f,
                    "algorithm `{algo}` accepts no knob `{key}` (accepted: {})",
                    accepted.join(", ")
                )
            }
            SpecError::BadValue { key, message } => {
                write!(f, "bad value for `{key}`: {message}")
            }
            SpecError::Malformed(msg) => write!(f, "malformed detector spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A declarative detector request: the algorithm plus its knob settings.
/// `None` knobs mean "the algorithm's default". Construct via
/// [`DetectorSpec::new`] + the `with_*` setters, or parse a wire form.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectorSpec {
    /// Canonical algorithm name (a [`REGISTRY`] entry's name).
    pub algo: &'static str,
    /// Seed applied through [`CommunityDetector::set_seed`] after
    /// construction. `None` leaves the detector's default seed.
    pub seed: Option<u64>,
    /// Modularity resolution γ (only for algorithms accepting it).
    pub gamma: Option<f64>,
    /// Ensemble size (only for ensemble algorithms).
    pub ensemble: Option<usize>,
    /// PLP explicit randomization.
    pub randomized: Option<bool>,
    /// PLM move-phase strategy (only for PLM-backed algorithms).
    pub move_strategy: Option<MoveStrategy>,
}

impl DetectorSpec {
    /// A spec for `algo` with every knob at its default. Errors when
    /// `algo` is not registered.
    pub fn new(algo: &str) -> Result<Self, SpecError> {
        let info = lookup(algo).ok_or_else(|| SpecError::UnknownAlgo { name: algo.into() })?;
        Ok(Self {
            algo: info.name,
            seed: None,
            gamma: None,
            ensemble: None,
            randomized: None,
            move_strategy: None,
        })
    }

    /// Sets the seed knob.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the γ knob.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Sets the ensemble-size knob.
    pub fn with_ensemble(mut self, ensemble: usize) -> Self {
        self.ensemble = Some(ensemble);
        self
    }

    /// Sets the PLP explicit-randomization knob.
    pub fn with_randomized(mut self, randomized: bool) -> Self {
        self.randomized = Some(randomized);
        self
    }

    /// Sets the PLM move-phase strategy knob.
    pub fn with_move(mut self, strategy: MoveStrategy) -> Self {
        self.move_strategy = Some(strategy);
        self
    }

    /// The registry entry this spec names.
    pub fn info(&self) -> Result<&'static AlgoInfo, SpecError> {
        lookup(self.algo).ok_or_else(|| SpecError::UnknownAlgo {
            name: self.algo.into(),
        })
    }

    /// Checks knob applicability and value domains against the registry.
    pub fn validate(&self) -> Result<(), SpecError> {
        let info = self.info()?;
        let set: [(Knob, bool); 4] = [
            (Knob::Gamma, self.gamma.is_some()),
            (Knob::Ensemble, self.ensemble.is_some()),
            (Knob::Randomized, self.randomized.is_some()),
            (Knob::Move, self.move_strategy.is_some()),
        ];
        for (knob, is_set) in set {
            if is_set && !info.accepts(knob) {
                return Err(SpecError::UnknownKnob {
                    algo: info.name,
                    key: knob.name().into(),
                });
            }
        }
        if let Some(g) = self.gamma {
            if !g.is_finite() || g < 0.0 {
                return Err(SpecError::BadValue {
                    key: "gamma".into(),
                    message: format!("γ must be finite and non-negative, got {g}"),
                });
            }
        }
        if self.ensemble == Some(0) {
            return Err(SpecError::BadValue {
                key: "ensemble".into(),
                message: "ensemble size must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Builds the detector: validates, constructs through the registry,
    /// and applies the seed. This is the single construction path shared
    /// by the CLI and `parcom-serve`.
    pub fn build(&self) -> Result<Box<dyn CommunityDetector + Send>, SpecError> {
        self.validate()?;
        let info = self.info()?;
        let mut detector = (info.build)(self);
        if let Some(seed) = self.seed {
            detector.set_seed(seed);
        }
        Ok(detector)
    }

    /// Parses the string wire form: `algo` or `algo:knob=value,...`.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Malformed("empty spec".into()));
        }
        if s.starts_with('{') {
            // convenience: a JSON object is accepted wherever a string
            // spec is (the CLI can take either through one flag)
            return Self::parse_json(s);
        }
        let (algo, rest) = match s.split_once(':') {
            Some((a, r)) => (a.trim(), Some(r)),
            None => (s, None),
        };
        let mut spec = Self::new(algo)?;
        if let Some(rest) = rest {
            for pair in rest.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(SpecError::Malformed(format!(
                        "expected `knob=value`, got `{pair}`"
                    )));
                };
                spec.set_knob(key.trim(), value.trim())?;
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Parses the JSON wire form: a flat object with an `"algo"` key and
    /// knob keys.
    pub fn parse_json(s: &str) -> Result<Self, SpecError> {
        let v = json::parse(s).map_err(SpecError::Malformed)?;
        Self::from_json(&v)
    }

    /// Builds a spec from an already-parsed JSON value (serve request
    /// bodies embed the spec as a sub-object). Also accepts a JSON string
    /// holding the string wire form, so clients may send
    /// `"spec": "plm:gamma=1.5"` or `"spec": {"algo":"plm","gamma":1.5}`
    /// interchangeably.
    pub fn from_json(v: &Value) -> Result<Self, SpecError> {
        if let Some(s) = v.as_str() {
            return Self::parse(s);
        }
        let entries = v
            .entries()
            .ok_or_else(|| SpecError::Malformed("spec must be an object or a string".into()))?;
        let algo = v
            .get("algo")
            .and_then(Value::as_str)
            .ok_or_else(|| SpecError::Malformed("spec object needs a string `algo` key".into()))?;
        let mut spec = Self::new(algo)?;
        for (key, value) in entries {
            if key == "algo" {
                continue;
            }
            let raw = match value {
                Value::String(s) => s.clone(),
                Value::Number(n) => format!("{n}"),
                Value::Bool(b) => format!("{b}"),
                other => {
                    return Err(SpecError::BadValue {
                        key: key.clone(),
                        message: format!("expected a scalar, got {other:?}"),
                    })
                }
            };
            spec.set_knob(key, &raw)?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Sets one knob from its wire key and raw value. Knob applicability
    /// is checked immediately so error messages carry the algorithm.
    fn set_knob(&mut self, key: &str, raw: &str) -> Result<(), SpecError> {
        let info = self.info()?;
        let bad = |message: String| SpecError::BadValue {
            key: key.into(),
            message,
        };
        match key {
            "seed" => {
                self.seed = Some(
                    raw.parse()
                        .map_err(|_| bad(format!("expected an unsigned integer, got `{raw}`")))?,
                );
            }
            "gamma" if info.accepts(Knob::Gamma) => {
                self.gamma = Some(
                    raw.parse()
                        .map_err(|_| bad(format!("expected a number, got `{raw}`")))?,
                );
            }
            "ensemble" if info.accepts(Knob::Ensemble) => {
                self.ensemble = Some(
                    raw.parse()
                        .map_err(|_| bad(format!("expected an unsigned integer, got `{raw}`")))?,
                );
            }
            "move" if info.accepts(Knob::Move) => {
                self.move_strategy = Some(MoveStrategy::from_wire(raw).map_err(bad)?);
            }
            "randomized" if info.accepts(Knob::Randomized) => {
                self.randomized = Some(match raw {
                    "true" | "1" | "yes" => true,
                    "false" | "0" | "no" => false,
                    _ => return Err(bad(format!("expected true/false, got `{raw}`"))),
                });
            }
            _ => {
                return Err(SpecError::UnknownKnob {
                    algo: info.name,
                    key: key.into(),
                })
            }
        }
        Ok(())
    }

    /// The canonical JSON wire form (a flat object; set knobs only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"algo\":");
        json::write_str(&mut out, self.algo);
        if let Some(e) = self.ensemble {
            out.push_str(&format!(",\"ensemble\":{e}"));
        }
        if let Some(g) = self.gamma {
            out.push_str(",\"gamma\":");
            json::write_f64(&mut out, g);
        }
        if let Some(m) = self.move_strategy {
            out.push_str(",\"move\":");
            json::write_str(&mut out, m.wire_name());
        }
        if let Some(r) = self.randomized {
            out.push_str(&format!(",\"randomized\":{r}"));
        }
        if let Some(s) = self.seed {
            out.push_str(&format!(",\"seed\":{s}"));
        }
        out.push('}');
        out
    }
}

impl std::fmt::Display for DetectorSpec {
    /// The canonical string wire form: knobs in `ensemble`, `gamma`,
    /// `move`, `randomized`, `seed` order, set knobs only.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.algo)?;
        let mut sep = ':';
        if let Some(e) = self.ensemble {
            write!(f, "{sep}ensemble={e}")?;
            sep = ',';
        }
        if let Some(g) = self.gamma {
            write!(f, "{sep}gamma={g}")?;
            sep = ',';
        }
        if let Some(m) = self.move_strategy {
            write!(f, "{sep}move={m}")?;
            sep = ',';
        }
        if let Some(r) = self.randomized {
            write!(f, "{sep}randomized={r}")?;
            sep = ',';
        }
        if let Some(s) = self.seed {
            write!(f, "{sep}seed={s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds_with_defaults() {
        for info in REGISTRY {
            let spec = DetectorSpec::new(info.name).unwrap();
            let detector = spec.build().unwrap();
            assert!(!detector.name().is_empty(), "{}", info.name);
        }
    }

    #[test]
    fn unknown_algo_lists_the_registry() {
        let err = DetectorSpec::new("metropolis").unwrap_err();
        let msg = err.to_string();
        for name in algorithm_names() {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn string_form_parses_knobs() {
        let spec = DetectorSpec::parse("plm:gamma=1.5,seed=7").unwrap();
        assert_eq!(spec.algo, "plm");
        assert_eq!(spec.gamma, Some(1.5));
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.to_string(), "plm:gamma=1.5,seed=7");
    }

    #[test]
    fn inapplicable_knob_is_rejected_with_accepted_set() {
        let err = DetectorSpec::parse("plp:gamma=1.5").unwrap_err();
        assert!(matches!(err, SpecError::UnknownKnob { .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("randomized") && msg.contains("seed"), "{msg}");
    }

    #[test]
    fn hand_assembled_specs_cannot_bypass_validation() {
        let spec = DetectorSpec::new("cnm").unwrap().with_ensemble(8);
        assert!(matches!(
            spec.build().err().unwrap(),
            SpecError::UnknownKnob { .. }
        ));
        let spec = DetectorSpec::new("plm").unwrap().with_gamma(-1.0);
        assert!(matches!(
            spec.build().err().unwrap(),
            SpecError::BadValue { .. }
        ));
    }

    #[test]
    fn json_form_round_trips() {
        let spec = DetectorSpec::parse("cggc:ensemble=8,seed=3").unwrap();
        assert_eq!(DetectorSpec::parse_json(&spec.to_json()).unwrap(), spec);
        // and the string-inside-JSON convenience
        let v = json::parse("\"cggc:ensemble=8,seed=3\"").unwrap();
        assert_eq!(DetectorSpec::from_json(&v).unwrap(), spec);
    }

    #[test]
    fn built_names_match_the_legacy_dispatch() {
        // the names the old CLI `match` produced, pinned so the registry
        // refactor cannot silently change what runs
        let expect = [
            ("plp", "PLP"),
            ("plm", "PLM"),
            ("plmr", "PLMR"),
            ("louvain", "Louvain"),
            ("cnm", "CNM"),
            ("rg", "RG"),
        ];
        for (algo, name) in expect {
            let built = DetectorSpec::new(algo).unwrap().build().unwrap();
            assert_eq!(built.name(), name);
        }
    }
}
