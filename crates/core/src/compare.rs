//! Partition similarity measures.
//!
//! The paper uses the pair-counting **Jaccard index** to score detected
//! communities against LFR ground truth (Fig. 8) and Jaccard
//! *dissimilarity* to analyze ensemble base-solution diversity (§V-D).
//! Rand, adjusted Rand and NMI are provided as the customary companions.

use parcom_graph::hashing::FxHashMap;
use parcom_graph::Partition;

/// Pair-counting contingency between two partitions of the same node set.
#[derive(Clone, Debug)]
pub struct PairCounts {
    /// Pairs grouped together in both partitions.
    pub both: f64,
    /// Pairs together in `a` only.
    pub a_only: f64,
    /// Pairs together in `b` only.
    pub b_only: f64,
    /// Pairs separated in both.
    pub neither: f64,
}

fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Computes the pair-counting contingency of `a` and `b` in
/// `O(n log n)` via a sort over `(ζ_a(v), ζ_b(v))` keys.
pub fn pair_counts(a: &Partition, b: &Partition) -> PairCounts {
    assert_eq!(a.len(), b.len(), "partitions must cover the same node set");
    let n = a.len() as u64;

    let mut cells: Vec<(u32, u32)> = (0..a.len())
        .map(|v| (a.subset_of(v as u32), b.subset_of(v as u32)))
        .collect();
    cells.sort_unstable();

    let mut same_both = 0.0;
    let mut a_sizes: FxHashMap<u32, u64> = FxHashMap::default();
    let mut b_sizes: FxHashMap<u32, u64> = FxHashMap::default();
    let mut i = 0;
    while i < cells.len() {
        let mut j = i;
        while j < cells.len() && cells[j] == cells[i] {
            j += 1;
        }
        same_both += choose2((j - i) as u64);
        i = j;
    }
    // audit:allow(lossy-cast): bounded by the u32 node id space
    for v in 0..a.len() as u32 {
        *a_sizes.entry(a.subset_of(v)).or_insert(0) += 1;
        *b_sizes.entry(b.subset_of(v)).or_insert(0) += 1;
    }
    let same_a: f64 = a_sizes.values().map(|&s| choose2(s)).sum();
    let same_b: f64 = b_sizes.values().map(|&s| choose2(s)).sum();
    let total = choose2(n);

    PairCounts {
        both: same_both,
        a_only: same_a - same_both,
        b_only: same_b - same_both,
        neither: total - same_a - same_b + same_both,
    }
}

/// Jaccard index over node pairs (1 = identical grouping). The agreement
/// measure of Fig. 8.
///
/// # Examples
///
/// ```
/// use parcom_core::compare::jaccard_index;
/// use parcom_graph::Partition;
///
/// let a = Partition::from_vec(vec![0, 0, 1, 1]);
/// let relabeled = Partition::from_vec(vec![5, 5, 2, 2]);
/// assert_eq!(jaccard_index(&a, &relabeled), 1.0);
/// ```
pub fn jaccard_index(a: &Partition, b: &Partition) -> f64 {
    let c = pair_counts(a, b);
    let denom = c.both + c.a_only + c.b_only;
    if denom == 0.0 {
        1.0 // both partitions are all-singletons: identical
    } else {
        c.both / denom
    }
}

/// Jaccard dissimilarity `1 − jaccard_index` (the diversity measure of
/// §V-D).
#[inline]
pub fn jaccard_dissimilarity(a: &Partition, b: &Partition) -> f64 {
    1.0 - jaccard_index(a, b)
}

/// Rand index: fraction of node pairs on which the partitions agree.
pub fn rand_index(a: &Partition, b: &Partition) -> f64 {
    let c = pair_counts(a, b);
    let total = c.both + c.a_only + c.b_only + c.neither;
    if total == 0.0 {
        1.0
    } else {
        (c.both + c.neither) / total
    }
}

/// Adjusted Rand index (chance-corrected; 1 = identical, ~0 = random).
pub fn adjusted_rand_index(a: &Partition, b: &Partition) -> f64 {
    let c = pair_counts(a, b);
    let total = c.both + c.a_only + c.b_only + c.neither;
    if total == 0.0 {
        return 1.0;
    }
    let same_a = c.both + c.a_only;
    let same_b = c.both + c.b_only;
    let expected = same_a * same_b / total;
    let max = (same_a + same_b) / 2.0;
    if (max - expected).abs() < 1e-12 {
        1.0
    } else {
        (c.both - expected) / (max - expected)
    }
}

/// Normalized mutual information (arithmetic-mean normalization).
pub fn nmi(a: &Partition, b: &Partition) -> f64 {
    assert_eq!(a.len(), b.len(), "partitions must cover the same node set");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let nf = n as f64;

    let mut joint: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    let mut ca: FxHashMap<u32, u64> = FxHashMap::default();
    let mut cb: FxHashMap<u32, u64> = FxHashMap::default();
    for v in 0..n as u32 {
        *joint.entry((a.subset_of(v), b.subset_of(v))).or_insert(0) += 1;
        *ca.entry(a.subset_of(v)).or_insert(0) += 1;
        *cb.entry(b.subset_of(v)).or_insert(0) += 1;
    }

    let mut mutual = 0.0;
    for (&(i, j), &nij) in joint.iter() {
        let pij = nij as f64 / nf;
        let pi = ca[&i] as f64 / nf;
        let pj = cb[&j] as f64 / nf;
        mutual += pij * (pij / (pi * pj)).ln();
    }
    let entropy = |sizes: &FxHashMap<u32, u64>| -> f64 {
        sizes
            .values()
            .map(|&s| {
                let p = s as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (entropy(&ca), entropy(&cb));
    if ha + hb == 0.0 {
        1.0 // both partitions trivial and identical
    } else {
        (2.0 * mutual / (ha + hb)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> Partition {
        Partition::from_vec(v.to_vec())
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = p(&[0, 0, 1, 1, 2]);
        assert_eq!(jaccard_index(&a, &a), 1.0);
        assert_eq!(rand_index(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_does_not_matter() {
        let a = p(&[0, 0, 1, 1]);
        let b = p(&[5, 5, 3, 3]);
        assert_eq!(jaccard_index(&a, &b), 1.0);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_groupings_score_zero_jaccard() {
        let a = p(&[0, 0, 1, 1]);
        let b = p(&[0, 1, 0, 1]);
        assert_eq!(jaccard_index(&a, &b), 0.0);
        assert_eq!(jaccard_dissimilarity(&a, &b), 1.0);
    }

    #[test]
    fn pair_counts_by_hand() {
        // a: {0,1},{2,3}; b: {0,1,2},{3}
        let a = p(&[0, 0, 1, 1]);
        let b = p(&[0, 0, 0, 1]);
        let c = pair_counts(&a, &b);
        // pairs: (0,1) both; (0,2),(1,2) b only; (2,3) a only; (0,3),(1,3) neither
        assert_eq!(c.both, 1.0);
        assert_eq!(c.a_only, 1.0);
        assert_eq!(c.b_only, 2.0);
        assert_eq!(c.neither, 2.0);
        assert!((jaccard_index(&a, &b) - 0.25).abs() < 1e-12);
        assert!((rand_index(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn singletons_vs_one_block() {
        let a = p(&[0, 1, 2, 3]);
        let b = p(&[0, 0, 0, 0]);
        assert_eq!(jaccard_index(&a, &b), 0.0);
        assert_eq!(rand_index(&a, &b), 0.0);
        assert!(nmi(&a, &b) < 1e-12);
    }

    #[test]
    fn all_singletons_both_identical() {
        let a = p(&[0, 1, 2]);
        assert_eq!(jaccard_index(&a, &a), 1.0);
        assert_eq!(nmi(&a, &a), 1.0);
    }

    #[test]
    fn ari_near_zero_for_independent_random() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 5000;
        let a = Partition::from_vec((0..n).map(|_| rng.gen_range(0..10u32)).collect());
        let b = Partition::from_vec((0..n).map(|_| rng.gen_range(0..10u32)).collect());
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.02, "ARI of random partitions was {ari}");
    }

    #[test]
    fn ari_is_one_for_identical_and_below_for_perturbed() {
        let a = p(&[0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let mut perturbed = a.clone();
        perturbed.set(0, 1);
        let ari = adjusted_rand_index(&a, &perturbed);
        assert!(ari < 1.0 && ari > 0.0);
    }

    #[test]
    fn nmi_symmetry() {
        let a = p(&[0, 0, 1, 1, 2, 2]);
        let b = p(&[0, 1, 1, 2, 2, 2]);
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn refinement_scores_between_zero_and_one() {
        let coarse = p(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let fine = p(&[0, 0, 1, 1, 2, 2, 3, 3]);
        let j = jaccard_index(&coarse, &fine);
        assert!(j > 0.0 && j < 1.0);
        let n = nmi(&coarse, &fine);
        assert!(n > 0.0 && n < 1.0);
    }

    #[test]
    fn empty_partitions() {
        let a = Partition::singleton(0);
        assert_eq!(jaccard_index(&a, &a), 1.0);
        assert_eq!(nmi(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn length_mismatch_panics() {
        jaccard_index(&Partition::singleton(2), &Partition::singleton(3));
    }
}
