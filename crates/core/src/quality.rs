//! Solution quality measures: modularity (Eq. III.1) and coverage.
//!
//! Modularity compares the coverage of a solution (fraction of edge weight
//! inside communities) to its expectation under a degree-preserving random
//! model:
//!
//! ```text
//! mod(ζ, G) = Σ_C [ ω(C)/ω(E) − γ · vol(C)² / (4 ω(E)²) ]
//! ```
//!
//! γ is the resolution parameter of §III-B: γ = 1 is standard modularity,
//! γ → 0 favors one community, large γ favors singletons.

use parcom_graph::{Graph, Partition};
use rayon::prelude::*;

/// Per-community aggregates needed by modularity: intra-community edge
/// weight ω(C) and community volume vol(C).
#[derive(Clone, Debug)]
pub struct CommunityAggregates {
    /// ω(C): weight of edges inside each community (self-loops once).
    pub intra_weight: Vec<f64>,
    /// vol(C): summed node volumes (self-loops twice).
    pub volume: Vec<f64>,
}

/// Computes ω(C) and vol(C) for every community id below
/// `zeta.upper_bound()`.
///
/// Parallel: threads fold thread-local accumulator vectors over node
/// ranges, then reduce element-wise — modularity is evaluated after every
/// phase of every multilevel algorithm, so this scan is on the hot path.
// audit:allow(budget-propagation): single bounded parallel scan; callers check the budget at phase boundaries
pub fn community_aggregates(g: &Graph, zeta: &Partition) -> CommunityAggregates {
    assert_eq!(zeta.len(), g.node_count(), "partition does not cover graph");
    let ub = zeta.upper_bound() as usize;

    let identity = || (vec![0.0f64; ub], vec![0.0f64; ub]);
    let (intra_weight, volume) = g
        .par_nodes()
        // bound the number of thread-local accumulators (each is O(k))
        .with_min_len(4096)
        .fold(identity, |(mut intra, mut vol), u| {
            let cu = zeta.subset_of(u) as usize;
            vol[cu] += g.volume(u);
            for (v, w) in g.edges_of(u) {
                if v >= u && zeta.subset_of(v) as usize == cu {
                    intra[cu] += w;
                }
            }
            (intra, vol)
        })
        .reduce(identity, |(mut ia, mut va), (ib, vb)| {
            for (a, b) in ia.iter_mut().zip(&ib) {
                *a += b;
            }
            for (a, b) in va.iter_mut().zip(&vb) {
                *a += b;
            }
            (ia, va)
        });

    CommunityAggregates {
        intra_weight,
        volume,
    }
}

/// Modularity with resolution parameter `gamma` (γ = 1 is Eq. III.1).
pub fn modularity_gamma(g: &Graph, zeta: &Partition, gamma: f64) -> f64 {
    let total = g.total_edge_weight();
    if total == 0.0 {
        return 0.0;
    }
    let agg = community_aggregates(g, zeta);
    let mut score = 0.0;
    for c in 0..agg.volume.len() {
        let cov = agg.intra_weight[c] / total;
        let vol = agg.volume[c] / (2.0 * total);
        score += cov - gamma * vol * vol;
    }
    debug_assert!(
        gamma != 1.0 || (-0.5..=1.0 + 1e-9).contains(&score),
        "modularity {score} outside analytic range"
    );
    score
}

/// Standard modularity (γ = 1).
///
/// # Examples
///
/// ```
/// use parcom_core::quality::modularity;
/// use parcom_graph::{GraphBuilder, Partition};
///
/// let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
/// let natural = Partition::from_vec(vec![0, 0, 1, 1]);
/// assert_eq!(modularity(&g, &natural), 0.5);
/// assert_eq!(modularity(&g, &Partition::all_in_one(4)), 0.0);
/// ```
#[inline]
pub fn modularity(g: &Graph, zeta: &Partition) -> f64 {
    modularity_gamma(g, zeta, 1.0)
}

/// Coverage: fraction of edge weight inside communities. PLP is a locally
/// greedy coverage maximizer (§III-A).
pub fn coverage(g: &Graph, zeta: &Partition) -> f64 {
    let total = g.total_edge_weight();
    if total == 0.0 {
        return 0.0;
    }
    let agg = community_aggregates(g, zeta);
    agg.intra_weight.iter().sum::<f64>() / total
}

/// The modularity difference of moving `u` from community `C` to `D`
/// (the Δmod formula of §III-B, with resolution `gamma`):
///
/// * `weight_to_c` — ω(u, C \ {u})
/// * `weight_to_d` — ω(u, D \ {u})
/// * `vol_c_without_u` — vol(C \ {u})
/// * `vol_d` — vol(D \ {u}) (u is not in D)
/// * `vol_u` — vol(u); `total` — ω(E)
#[inline]
pub fn delta_modularity(
    weight_to_c: f64,
    weight_to_d: f64,
    vol_c_without_u: f64,
    vol_d: f64,
    vol_u: f64,
    total: f64,
    gamma: f64,
) -> f64 {
    (weight_to_d - weight_to_c) / total
        + gamma * (vol_c_without_u - vol_d) * vol_u / (2.0 * total * total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::GraphBuilder;

    fn two_triangles() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn singletons_have_negative_modularity() {
        let g = two_triangles();
        let q = modularity(&g, &Partition::singleton(6));
        assert!(q < 0.0, "singleton modularity should be negative, got {q}");
    }

    #[test]
    fn all_in_one_has_zero_modularity() {
        let g = two_triangles();
        let q = modularity(&g, &Partition::all_in_one(6));
        assert!(q.abs() < 1e-12, "one community ⇒ mod 0, got {q}");
    }

    #[test]
    fn natural_communities_score_high() {
        let g = two_triangles();
        let natural = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let q = modularity(&g, &natural);
        // coverage 6/7, expected (7/14)² per community
        let expect = 6.0 / 7.0 - 2.0 * 0.25;
        assert!((q - expect).abs() < 1e-12, "got {q}, expected {expect}");
        // and it beats both trivial solutions
        assert!(q > modularity(&g, &Partition::all_in_one(6)));
        assert!(q > modularity(&g, &Partition::singleton(6)));
    }

    #[test]
    fn modularity_is_invariant_under_relabeling() {
        let g = two_triangles();
        let a = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let b = Partition::from_vec(vec![9, 9, 9, 4, 4, 4]);
        assert!((modularity(&g, &a) - modularity(&g, &b)).abs() < 1e-12);
    }

    #[test]
    fn coverage_counts_intra_fraction() {
        let g = two_triangles();
        let natural = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        assert!((coverage(&g, &natural) - 6.0 / 7.0).abs() < 1e-12);
        assert!((coverage(&g, &Partition::all_in_one(6)) - 1.0).abs() < 1e-12);
        assert_eq!(coverage(&g, &Partition::singleton(6)), 0.0);
    }

    #[test]
    fn gamma_zero_prefers_one_community() {
        let g = two_triangles();
        let one = modularity_gamma(&g, &Partition::all_in_one(6), 0.0);
        let split = modularity_gamma(&g, &Partition::from_vec(vec![0, 0, 0, 1, 1, 1]), 0.0);
        assert!(one >= split);
    }

    #[test]
    fn large_gamma_prefers_singletons() {
        let g = two_triangles();
        let gamma = 2.0 * g.total_edge_weight();
        let single = modularity_gamma(&g, &Partition::singleton(6), gamma);
        let merged = modularity_gamma(&g, &Partition::all_in_one(6), gamma);
        assert!(single > merged);
    }

    #[test]
    fn self_loops_count_in_coverage_and_volume() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 0, 1.0);
        let g = b.build();
        let p = Partition::singleton(2);
        // self-loop is intra for any partition
        assert!((coverage(&g, &p) - 0.5).abs() < 1e-12);
        let agg = community_aggregates(&g, &p);
        assert_eq!(agg.volume[0], 3.0); // 1 + 2·1
        assert_eq!(agg.intra_weight[0], 1.0);
    }

    #[test]
    fn delta_matches_full_recomputation() {
        // move node 2 from its triangle into the other community
        let g = two_triangles();
        let before = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let after = Partition::from_vec(vec![0, 0, 1, 1, 1, 1]);
        let total = g.total_edge_weight();
        let agg = community_aggregates(&g, &before);
        // u = 2: ω(2, C\{2}) = 2 (to nodes 0, 1); ω(2, D) = 1 (to node 3)
        let delta = delta_modularity(
            2.0,
            1.0,
            agg.volume[0] - g.volume(2),
            agg.volume[1],
            g.volume(2),
            total,
            1.0,
        );
        let direct = modularity(&g, &after) - modularity(&g, &before);
        assert!(
            (delta - direct).abs() < 1e-12,
            "delta {delta} vs direct {direct}"
        );
    }

    #[test]
    fn empty_graph_scores_zero() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(modularity(&g, &Partition::singleton(0)), 0.0);
        assert_eq!(coverage(&g, &Partition::singleton(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "partition does not cover")]
    fn mismatched_partition_panics() {
        let g = two_triangles();
        modularity(&g, &Partition::singleton(3));
    }
}
