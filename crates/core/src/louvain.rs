//! The original *sequential* Louvain method (Blondel et al.) — the paper's
//! reference competitor (§V-E a).
//!
//! Unlike PLM, node moves are applied one at a time, so every Δmod score is
//! computed from fresh data and modularity increases monotonically. The node
//! visit order is explicitly randomized per pass, matching the original
//! implementation (the paper credits its marginally better modularity to
//! exactly this difference).

use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use crate::quality::delta_modularity;
use parcom_graph::{coarsen_with, Graph, Partition, SparseWeightMap};
use parcom_guard::{Budget, Termination};
use parcom_obs::{Recorder, RunReport};
use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};

/// The sequential Louvain baseline.
#[derive(Clone, Debug)]
pub struct Louvain {
    /// Resolution parameter (1 = standard modularity).
    pub gamma: f64,
    /// RNG seed for the per-pass node shuffles.
    pub seed: u64,
    /// Cap on full sweeps per level.
    pub max_sweeps: usize,
    /// Cap on hierarchy depth.
    pub max_levels: usize,
}

impl Default for Louvain {
    fn default() -> Self {
        Self {
            gamma: 1.0,
            seed: 1,
            max_sweeps: 64,
            max_levels: 64,
        }
    }
}

impl Louvain {
    /// Louvain with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// One sequential move phase; returns the number of moves and how the
    /// phase ended. `scratch` is the caller-owned weight tally, reused
    /// across sweeps and levels. The budget is tested once per sweep; on
    /// expiry `zeta` stays at the last completed sweep (sequential moves
    /// keep it valid after every individual move, so any cut is safe).
    fn sequential_move_phase(
        &self,
        g: &Graph,
        zeta: &mut Partition,
        rng: &mut SmallRng,
        scratch: &mut SparseWeightMap,
        budget: &Budget,
    ) -> (u64, Termination) {
        let n = g.node_count();
        let total = g.total_edge_weight();
        if n == 0 || total == 0.0 {
            return (0, Termination::Converged);
        }
        zeta.compact();
        let k = zeta.upper_bound() as usize;
        let mut volumes = vec![0.0f64; k.max(1)];
        for u in g.nodes() {
            volumes[zeta.subset_of(u) as usize] += g.volume(u);
        }

        let mut order: Vec<u32> = (0..n as u32).collect();
        scratch.ensure_capacity(k.max(1));
        let mut total_moves = 0u64;
        let mut termination = Termination::Converged;
        for _ in 0..self.max_sweeps {
            if let Err(t) = budget.check_sweep() {
                termination = t;
                break;
            }
            order.shuffle(rng);
            let mut moves = 0u64;
            for &u in &order {
                if g.degree(u) == 0 {
                    continue;
                }
                scratch.clear();
                for (v, w) in g.edges_of(u) {
                    if v != u {
                        scratch.add(zeta.subset_of(v), w);
                    }
                }
                let c = zeta.subset_of(u);
                let vol_u = g.volume(u);
                let weight_to_c = scratch.get(c);
                let vol_c_without_u = volumes[c as usize] - vol_u;

                let mut best_delta = 0.0;
                let mut best = c;
                for (d, w_d) in scratch.iter() {
                    if d == c {
                        continue;
                    }
                    let delta = delta_modularity(
                        weight_to_c,
                        w_d,
                        vol_c_without_u,
                        volumes[d as usize],
                        vol_u,
                        total,
                        self.gamma,
                    );
                    // Strictly-better wins; exact Δmod ties break to the
                    // smallest community id so the decision is independent
                    // of tally iteration order (the hash-map version
                    // inherited the map's arbitrary order here).
                    if delta > best_delta || (delta == best_delta && best != c && d < best) {
                        best_delta = delta;
                        best = d;
                    }
                }
                if best != c && best_delta > 0.0 {
                    volumes[c as usize] -= vol_u;
                    volumes[best as usize] += vol_u;
                    zeta.set(u, best);
                    moves += 1;
                }
            }
            total_moves += moves;
            if moves == 0 {
                break;
            }
        }
        (total_moves, termination)
    }

    /// One hierarchy level under a budget; the same degradation contract
    /// as PLM: on expiry the current level's assignment bubbles up and is
    /// prolonged to the fine graph by the callers.
    fn run_recursive(
        &self,
        g: &Graph,
        depth: usize,
        rng: &mut SmallRng,
        scratch: &mut SparseWeightMap,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        let level = rec.span_fmt(format_args!("level-{depth}"));
        level.counter("nodes", g.node_count() as u64);
        level.counter("edges", g.edge_count() as u64);
        let mut zeta = Partition::singleton(g.node_count());
        let (moves, move_term) = {
            let span = rec.span("move-phase");
            let (moves, term) = self.sequential_move_phase(g, &mut zeta, rng, scratch, budget);
            span.counter("moves", moves);
            (moves, term)
        };
        if move_term.interrupted() {
            return (zeta, move_term, Some(format!("level-{depth}/move-phase")));
        }
        if moves > 0 && depth < self.max_levels {
            if let Err(t) = budget.check() {
                return (zeta, t, Some(format!("level-{depth}/coarsen")));
            }
            let contraction = coarsen_with(g, &zeta, rec);
            if contraction.coarse.node_count() < g.node_count() {
                let (coarse, term, cut) =
                    self.run_recursive(&contraction.coarse, depth + 1, rng, scratch, rec, budget);
                zeta = contraction.prolong(&coarse);
                if term.interrupted() {
                    return (zeta, term, cut);
                }
            }
        }
        (zeta, Termination::Converged, None)
    }

    fn run_guarded(
        &self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // One scratch map for the whole hierarchy: level 0 sizes it (k = n
        // singleton communities), coarser levels reuse it as-is.
        let mut scratch = SparseWeightMap::with_capacity(g.node_count().max(1));
        let (mut zeta, termination, cut_phase) =
            self.run_recursive(g, 0, &mut rng, &mut scratch, rec, budget);
        zeta.compact();
        (zeta, termination, cut_phase)
    }
}

impl CommunityDetector for Louvain {
    fn name(&self) -> String {
        "Louvain".into()
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_guarded(g, &Recorder::disabled(), &Budget::unlimited())
            .0
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, _, _) = self.run_guarded(g, &rec, &Budget::unlimited());
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric(
                "modularity",
                crate::quality::modularity_gamma(g, &zeta, self.gamma),
            );
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};
    use parcom_graph::GraphBuilder;

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = ring_of_cliques(8, 6);
        let zeta = Louvain::new().detect(&g);
        assert_eq!(zeta.number_of_subsets(), 8);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(truth.in_same_subset(u, v), zeta.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn sequential_moves_never_decrease_modularity() {
        // fresh-data property: track modularity across individual phases
        let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 2);
        let mut zeta = Partition::singleton(g.node_count());
        let louvain = Louvain::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut scratch = SparseWeightMap::new();
        let before = modularity(&g, &zeta);
        louvain.sequential_move_phase(&g, &mut zeta, &mut rng, &mut scratch, &Budget::unlimited());
        let after = modularity(&g, &zeta);
        assert!(after >= before - 1e-12, "{after} < {before}");
    }

    #[test]
    fn report_has_level_phases() {
        let (g, _) = ring_of_cliques(6, 6);
        let (_, report) = Louvain::new().detect_with_report(&g);
        let level0 = report.phase("level-0").expect("level-0 phase");
        assert!(level0.child("move-phase").is_some());
        assert!(report.metric("modularity").unwrap() > 0.5);
    }

    #[test]
    fn guarded_sweep_cap_degrades_gracefully() {
        let (g, _) = lfr(LfrParams::benchmark(1500, 0.3), 6);
        let budget = Budget::unlimited().with_max_sweeps(1);
        let r = Louvain::new().detect_guarded(&g, &budget);
        assert_eq!(r.termination, Termination::IterationCap);
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate_dense().is_ok());
        assert!(r.report.cut_phase.as_deref().unwrap().starts_with("level-"));
    }

    #[test]
    fn quality_comparable_to_plm() {
        let (g, _) = lfr(LfrParams::benchmark(1500, 0.3), 4);
        let q_louvain = modularity(&g, &Louvain::new().detect(&g));
        let q_plm = modularity(&g, &crate::plm::Plm::new().detect(&g));
        assert!(
            (q_louvain - q_plm).abs() < 0.05,
            "Louvain {q_louvain} vs PLM {q_plm} diverge"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.4), 5);
        let mut first = Louvain::new();
        first.set_seed(7);
        let mut second = Louvain::new();
        second.set_seed(7);
        let a = first.detect(&g);
        let b = second.detect(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn handles_trivial_graphs() {
        let mut algo = Louvain::new();
        assert_eq!(algo.detect(&GraphBuilder::new(0).build()).len(), 0);
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let zeta = algo.detect(&g);
        assert_eq!(zeta.number_of_subsets(), 1);
    }
}
