//! PAM / CEL — parallel agglomeration by greedy edge matching.
//!
//! Reimplementations of the two parallel DIMACS competitors the paper
//! compares against (§V-E b):
//!
//! * **PAM** (the CLU_TBB analogue, Fagginger Auer & Bisseling): every edge
//!   is weighted with the Δmod of contracting it; a greedy heavy matching is
//!   computed and contracted, recursively. The *star adaptation* lets
//!   unmatched nodes join an already-matched neighbor's group, so star-like
//!   structures do not strangle parallelism through tiny matchings.
//! * **CEL** (the community-el analogue, Riedy et al.): the same scheme
//!   without the star adaptation.

use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use parcom_graph::{coarsen, Graph, Partition};
use parcom_guard::{Budget, Termination};
use parcom_obs::{Recorder, RunReport};
use rayon::prelude::*;

/// Matching-based parallel agglomerator.
#[derive(Clone, Debug)]
pub struct Pam {
    /// Allow satellites to join matched hubs (CLU_TBB's adaptation).
    pub star_adaptation: bool,
    /// Resolution parameter.
    pub gamma: f64,
    /// Cap on contraction levels.
    pub max_levels: usize,
}

impl Pam {
    /// The CLU_TBB-like configuration (with star adaptation).
    pub fn new() -> Self {
        Self {
            star_adaptation: true,
            gamma: 1.0,
            max_levels: 64,
        }
    }

    /// The CEL-like configuration (plain matching).
    pub fn cel() -> Self {
        Self {
            star_adaptation: false,
            ..Self::new()
        }
    }
}

impl Default for Pam {
    fn default() -> Self {
        Self::new()
    }
}

impl Pam {
    /// The contraction hierarchy under a recorder and a budget, shared by
    /// every entry point. The budget is tested once per level (a level is
    /// one full parallel matching + contraction, PAM's natural sweep
    /// boundary); on expiry the loop stops and the best level *completed
    /// so far* is returned — exactly what an uninterrupted run returns
    /// when the tracked maximum lies at that level.
    fn run_guarded(
        &self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        let n = g.node_count();
        if n == 0 {
            return (Partition::singleton(0), Termination::Converged, None);
        }
        let mut overall: Vec<u32> = (0..n as u32).collect();
        let mut current = g.clone();
        // Matching forces many simultaneous merges per level, some marginal;
        // like the original, keep the best level of the hierarchy.
        let mut best_partition = Partition::singleton(n);
        let mut best_q = crate::quality::modularity_gamma(g, &best_partition, self.gamma);

        let mut termination = Termination::Converged;
        let mut cut_phase = None;

        for level in 0..self.max_levels {
            if let Err(t) = budget.check_sweep() {
                termination = t;
                cut_phase = Some(format!("level-{level}/match"));
                break;
            }
            let total = current.total_edge_weight();
            if total == 0.0 {
                break;
            }
            let level_span = rec.span_fmt(format_args!("level-{level}"));
            level_span.counter("nodes", current.node_count() as u64);
            level_span.counter("edges", current.edge_count() as u64);
            // Every node's best merge partner by Δmod of contracting the
            // edge. Score ties are broken by a *symmetric* pair hash: both
            // endpoints rank a tied pair identically, so regular structures
            // (grids, cliques) still produce large handshake matchings
            // instead of degenerating to one pair per level.
            let gamma = self.gamma;
            let pair_hash = |a: u32, b: u32| -> u64 {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let mut x = ((lo as u64) << 32) | hi as u64;
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^ (x >> 31)
            };
            let best_neighbor: Vec<Option<u32>> = current
                .par_nodes()
                .map(|u| {
                    let g_ref = &current;
                    let mut best: Option<(f64, u64, u32)> = None;
                    for (v, w) in g_ref.edges_of(u) {
                        if v == u {
                            continue;
                        }
                        let delta = w / total
                            - gamma * g_ref.volume(u) * g_ref.volume(v) / (2.0 * total * total);
                        if delta <= 0.0 {
                            continue;
                        }
                        let h = pair_hash(u, v);
                        let better = match best {
                            None => true,
                            Some((bd, bh, _)) => delta > bd || (delta == bd && h > bh),
                        };
                        if better {
                            best = Some((delta, h, v));
                        }
                    }
                    best.map(|(_, _, v)| v)
                })
                .collect();

            // Locally heaviest (handshake) matching: an edge is contracted
            // only when it is the best edge of *both* endpoints. This is
            // what keeps community bridges out of the matching — a bridge
            // only matches when no intra-community partner is better.
            const UNMATCHED: u32 = u32::MAX;
            let mut group = vec![UNMATCHED; current.node_count()];
            let mut merged_any = false;
            // audit:allow(lossy-cast): bounded by the u32 node id space
            for u in 0..current.node_count() as u32 {
                if group[u as usize] != UNMATCHED {
                    continue;
                }
                if let Some(v) = best_neighbor[u as usize] {
                    if v > u
                        && group[v as usize] == UNMATCHED
                        && best_neighbor[v as usize] == Some(u)
                    {
                        group[u as usize] = u;
                        group[v as usize] = u;
                        merged_any = true;
                    }
                }
            }
            if self.star_adaptation {
                // Star adaptation: an unmatched satellite joins the group of
                // its best partner (its hub) — star-like structures collapse
                // in one level instead of strangling the matching. Only
                // groups formed by the *matching* qualify as hubs: chaining
                // through groups formed within this pass would snowball
                // whole regions into one community.
                let matched: Vec<bool> = group.iter().map(|&g| g != UNMATCHED).collect();
                for u in 0..group.len() {
                    if group[u] != UNMATCHED {
                        continue;
                    }
                    if let Some(v) = best_neighbor[u] {
                        if matched[v as usize] {
                            group[u] = group[v as usize];
                            merged_any = true;
                        }
                    }
                }
            }
            if !merged_any {
                break;
            }
            level_span.counter(
                "matched",
                group.iter().filter(|&&gr| gr != UNMATCHED).count() as u64,
            );
            for (v, gr) in group.iter_mut().enumerate() {
                if *gr == UNMATCHED {
                    *gr = v as u32;
                }
            }
            let level_partition = Partition::from_vec(group);
            let contraction = coarsen(&current, &level_partition);
            if contraction.coarse.node_count() >= current.node_count() {
                break;
            }
            // compose: original -> previous level -> new level
            overall
                .par_iter_mut()
                .for_each(|c| *c = contraction.fine_to_coarse[*c as usize]);
            current = contraction.coarse;

            let level_solution = Partition::from_vec(overall.clone());
            let q = crate::quality::modularity_gamma(g, &level_solution, self.gamma);
            if q > best_q {
                best_q = q;
                best_partition = level_solution;
            }
        }

        let mut zeta = best_partition;
        zeta.compact();
        (zeta, termination, cut_phase)
    }
}

impl CommunityDetector for Pam {
    fn name(&self) -> String {
        if self.star_adaptation {
            "PAM".into()
        } else {
            "CEL".into()
        }
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_guarded(g, &Recorder::disabled(), &Budget::unlimited())
            .0
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, _, _) = self.run_guarded(g, &rec, &Budget::unlimited());
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric(
                "modularity",
                crate::quality::modularity_gamma(g, &zeta, self.gamma),
            );
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{barabasi_albert, lfr, ring_of_cliques, LfrParams};
    use parcom_graph::GraphBuilder;

    #[test]
    fn names() {
        assert_eq!(Pam::new().name(), "PAM");
        assert_eq!(Pam::cel().name(), "CEL");
    }

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = ring_of_cliques(6, 6);
        let zeta = Pam::new().detect(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if truth.in_same_subset(u, v) {
                    assert!(zeta.in_same_subset(u, v), "clique split at {u},{v}");
                }
            }
        }
        assert!(modularity(&g, &zeta) > 0.6);
    }

    #[test]
    fn positive_quality_on_lfr() {
        let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 41);
        let q = modularity(&g, &Pam::new().detect(&g));
        assert!(q > 0.3, "PAM quality too low: {q}");
    }

    #[test]
    fn cel_no_better_than_pam_on_stars() {
        // hub-dominated graph: star adaptation should help (or at least not hurt)
        let g = barabasi_albert(1000, 2, 42);
        let q_pam = modularity(&g, &Pam::new().detect(&g));
        let q_cel = modularity(&g, &Pam::cel().detect(&g));
        assert!(
            q_pam >= q_cel - 0.05,
            "star adaptation should help on hubs: PAM {q_pam} vs CEL {q_cel}"
        );
    }

    #[test]
    fn contraction_hierarchy_terminates() {
        let (g, _) = lfr(LfrParams::benchmark(500, 0.4), 43);
        // must terminate well below the level cap
        let zeta = Pam::new().detect(&g);
        assert!(zeta.number_of_subsets() > 1);
        assert!(zeta.number_of_subsets() < g.node_count());
    }

    #[test]
    fn edgeless_graph_stays_singleton() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(Pam::new().detect(&g).number_of_subsets(), 3);
    }

    #[test]
    fn report_has_level_phases() {
        let (g, _) = ring_of_cliques(6, 6);
        let (_, report) = Pam::new().detect_with_report(&g);
        let level0 = report.phase("level-0").expect("level-0 phase");
        assert!(level0.counter("matched").unwrap() > 0);
        assert!(report.metric("modularity").unwrap() > 0.5);
    }

    #[test]
    fn guarded_level_cap_returns_best_level_so_far() {
        let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 11);
        // one level only: the first matching completes, then the cap fires
        let budget = Budget::unlimited().with_max_sweeps(1);
        let r = Pam::new().detect_guarded(&g, &budget);
        assert_eq!(r.termination, Termination::IterationCap);
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate().is_ok());
        assert!(r.report.cut_phase.as_deref().unwrap().starts_with("level-"));
    }

    #[test]
    fn weighted_pairs_match_first() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10.0);
        b.add_edge(2, 3, 10.0);
        b.add_edge(1, 2, 0.1);
        let g = b.build();
        let zeta = Pam::new().detect(&g);
        assert!(zeta.in_same_subset(0, 1));
        assert!(zeta.in_same_subset(2, 3));
    }
}
