//! Conflict-free PLM move phases: the [`MoveStrategy`] knob and the
//! coloring-isolated and synchronized alternatives to the racy default.
//!
//! The paper's move phase (§III-B, [`crate::move_phase`]) lets every node
//! move concurrently against *stale* labels and volumes: fast, but the
//! result depends on the thread schedule, and contended volume cache lines
//! cost throughput at high core counts. Two grounded alternatives trade a
//! little per-sweep freshness for schedule independence (DESIGN.md §14):
//!
//! * **Coloring** — a distance-1 coloring ([`parcom_graph::Coloring`])
//!   splits the nodes into independent sets; each class moves fully in
//!   parallel with no atomics and no stale neighbor labels (no two
//!   neighbors move in the same step), classes committing one after the
//!   other in fixed order. The VFC-Louvain vertex-following trick keeps
//!   degree-1 nodes out of the coloring and moves them as one final class.
//! * **Synchronized** — every node proposes its best move against the
//!   frozen previous sweep (Chiêm et al. 2017); proposals commit in one
//!   deterministic pass in node order. The label-chasing oscillation this
//!   enables is damped twice: singleton-to-singleton moves only go toward
//!   the smaller community id (Lu et al.'s minimum-label rule), and a
//!   sweep that fails to improve a deterministically-evaluated modularity
//!   is rolled back, ending the phase.
//!
//! Both phases keep all decision-relevant floating-point accumulation
//! sequential or per-node (never a parallel reduction), so the resulting
//! partitions are bit-identical at any thread count and across repeated
//! runs — the determinism contract `parcom-serve` relies on.

use crate::quality::delta_modularity;
use parcom_graph::{Coloring, Graph, Node, Partition, ScratchPool, SparseWeightMap};
use parcom_guard::{Budget, Termination};
use parcom_obs::Recorder;
use rayon::prelude::*;

/// How PLM/PLMR's move phase schedules concurrent node moves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MoveStrategy {
    /// The paper's benign-race phase: all nodes move concurrently against
    /// possibly stale labels and volumes. Fastest per sweep, but the
    /// output depends on the thread schedule.
    #[default]
    Racy,
    /// Color classes move one after another; within a class there are no
    /// adjacent nodes, hence no stale neighbor labels and no atomics.
    /// Deterministic at any thread count.
    Coloring,
    /// All nodes propose against the frozen previous sweep; one
    /// deterministic commit per sweep with oscillation damping.
    /// Deterministic at any thread count.
    Synchronized,
}

impl MoveStrategy {
    /// Every strategy, in wire-name order.
    pub const ALL: [MoveStrategy; 3] = [
        MoveStrategy::Racy,
        MoveStrategy::Coloring,
        MoveStrategy::Synchronized,
    ];

    /// The wire name used by the `move=` spec knob and the CLI flag.
    pub fn wire_name(self) -> &'static str {
        match self {
            MoveStrategy::Racy => "racy",
            MoveStrategy::Coloring => "coloring",
            MoveStrategy::Synchronized => "sync",
        }
    }

    /// Parses a wire name; the error message enumerates the accepted set.
    pub fn from_wire(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|m| m.wire_name() == s)
            .ok_or_else(|| {
                let accepted: Vec<&str> = Self::ALL.iter().map(|m| m.wire_name()).collect();
                format!("expected one of {}, got `{s}`", accepted.join("|"))
            })
    }

    /// Whether this strategy guarantees bit-identical output at any
    /// thread count.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, MoveStrategy::Racy)
    }
}

impl std::fmt::Display for MoveStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl std::str::FromStr for MoveStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Self::from_wire(s)
    }
}

/// The frozen per-sweep state a proposal is evaluated against.
struct MoveState<'a> {
    labels: &'a [u32],
    volumes: &'a [f64],
    total: f64,
    gamma: f64,
}

/// The best strictly-improving move for `u` against `state`, or `None`.
/// Tie-breaking matches the racy phase exactly: highest Δmod, then the
/// smallest community id, candidates scanned in CSR neighbor order.
fn best_move(
    g: &Graph,
    u: Node,
    state: &MoveState<'_>,
    weight_to: &mut SparseWeightMap,
) -> Option<u32> {
    if g.degree(u) == 0 {
        return None;
    }
    weight_to.clear();
    for (v, w) in g.edges_of(u) {
        if v != u {
            weight_to.add(state.labels[v as usize], w);
        }
    }
    let c = state.labels[u as usize];
    let vol_u = g.volume(u);
    let weight_to_c = weight_to.get(c);
    let vol_c_without_u = state.volumes[c as usize] - vol_u;

    let mut best_delta = 0.0;
    let mut best_community = c;
    for (d, weight_to_d) in weight_to.iter() {
        if d == c {
            continue;
        }
        let delta = delta_modularity(
            weight_to_c,
            weight_to_d,
            vol_c_without_u,
            state.volumes[d as usize],
            vol_u,
            state.total,
            state.gamma,
        );
        if delta > best_delta || (delta == best_delta && best_community != c && d < best_community)
        {
            best_delta = delta;
            best_community = d;
        }
    }
    (best_community != c && best_delta > 0.0).then_some(best_community)
}

/// Below this many nodes a proposal pass runs inline: spawning workers
/// (the rayon shim starts scoped OS threads per parallel call) costs more
/// than the tally work itself, and the coloring phase issues one pass per
/// color class — most of which are small.
const SEQUENTIAL_PROPOSE_CUTOFF: usize = 4096;

/// Proposals for `nodes` against the frozen `state`, in input order.
/// Each worker draws one scratch map from the pool; the parallel shape
/// (fold per part, concatenate in part order) preserves node order, and no
/// floating-point value crosses a thread boundary — the returned list is
/// schedule-independent. Small inputs (and single-thread pools) take a
/// plain loop over the same node order, which is bit-identical.
// audit:allow(budget-propagation): one pass over one color class; the caller checks the budget at every class boundary
fn propose(
    g: &Graph,
    nodes: &[Node],
    state: &MoveState<'_>,
    scratch: &ScratchPool,
    capacity: usize,
    filter: impl Fn(Node, u32) -> bool + Sync,
) -> Vec<(Node, u32)> {
    if nodes.len() < SEQUENTIAL_PROPOSE_CUTOFF || rayon::current_num_threads() == 1 {
        let mut weight_to = scratch.take(capacity);
        let mut out = Vec::new();
        for &u in nodes {
            if let Some(d) = best_move(g, u, state, &mut weight_to) {
                if filter(u, d) {
                    out.push((u, d));
                }
            }
        }
        return out;
    }
    nodes
        .par_iter()
        .fold(
            || (scratch.take(capacity), Vec::new()),
            |(mut weight_to, mut out), &u| {
                if let Some(d) = best_move(g, u, state, &mut weight_to) {
                    if filter(u, d) {
                        out.push((u, d));
                    }
                }
                (weight_to, out)
            },
        )
        .reduce(
            || (scratch.take(capacity), Vec::new()),
            |(s, mut a), (_, b)| {
                a.extend(b);
                (s, a)
            },
        )
        .1
}

/// Shared setup of both deterministic phases: compacted labels, community
/// volumes accumulated *sequentially* in node order (a parallel reduction
/// would make the sums depend on the thread-count-driven split points).
fn deterministic_state(g: &Graph, zeta: &mut Partition) -> (Vec<u32>, Vec<f64>, usize) {
    zeta.compact();
    let k = (zeta.upper_bound() as usize).max(1);
    let labels: Vec<u32> = zeta.as_slice().to_vec();
    let mut volumes = vec![0.0f64; k];
    for u in g.nodes() {
        volumes[labels[u as usize] as usize] += g.volume(u);
    }
    (labels, volumes, k)
}

/// The coloring-isolated move phase. Sweeps until stable or
/// `max_iterations`; within a sweep the color classes (followers last)
/// each propose in parallel against fresh neighbor labels — no two class
/// members are adjacent — and commit sequentially in node order. The
/// budget is tested once per sweep plus once per class boundary, and an
/// interrupted phase leaves `zeta` at the last committed class — a valid
/// assignment by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn move_phase_colored(
    g: &Graph,
    zeta: &mut Partition,
    gamma: f64,
    max_iterations: usize,
    coloring: &Coloring,
    rec: &Recorder,
    scratch: &ScratchPool,
    budget: &Budget,
) -> (u64, Termination) {
    if g.node_count() == 0 {
        return (0, Termination::Converged);
    }
    let total = g.total_edge_weight();
    if total == 0.0 {
        return (0, Termination::Converged);
    }
    let (mut labels, mut volumes, k) = deterministic_state(g, zeta);

    let mut total_moves = 0u64;
    let mut termination = Termination::Converged;
    'sweeps: for _ in 0..max_iterations {
        if let Err(t) = budget.check_sweep() {
            termination = t;
            break;
        }
        let mut sweep_moves = 0u64;
        let classes = coloring
            .classes()
            .iter()
            .map(Vec::as_slice)
            .chain(std::iter::once(coloring.followers()));
        for class in classes {
            if class.is_empty() {
                continue;
            }
            // Class boundary: labels/volumes are consistent here, so an
            // expired budget can stop with a valid partial sweep.
            if let Err(t) = budget.check() {
                termination = t;
                break 'sweeps;
            }
            let state = MoveState {
                labels: &labels,
                volumes: &volumes,
                total,
                gamma,
            };
            let proposals = propose(g, class, &state, scratch, k, |_, _| true);
            // Deterministic commit in ascending node order (the class
            // order). Volumes shift as classmates land in the same target,
            // but their Δmod estimates used the frozen per-class state.
            for (u, d) in proposals {
                let c = labels[u as usize];
                let vol_u = g.volume(u);
                volumes[c as usize] -= vol_u;
                volumes[d as usize] += vol_u;
                labels[u as usize] = d;
                sweep_moves += 1;
            }
        }
        total_moves += sweep_moves;
        rec.push_series("moves", sweep_moves as f64);
        if sweep_moves == 0 {
            break;
        }
    }

    *zeta = Partition::from_vec(labels);
    (total_moves, termination)
}

/// Modularity of `labels` evaluated with strictly sequential accumulation
/// (the parallel [`crate::quality::modularity_gamma`] reduction is
/// schedule-dependent in its float rounding, which must not gate a
/// deterministic decision). Uses the maintained `volumes` for the degree
/// term and one edge scan for the intra-community weight.
// audit:allow(budget-propagation): one bounded edge scan per commit decision; the caller checks the budget per sweep
fn modularity_seq(g: &Graph, labels: &[u32], volumes: &[f64], total: f64, gamma: f64) -> f64 {
    let mut intra = vec![0.0f64; volumes.len()];
    for u in g.nodes() {
        let c = labels[u as usize];
        for (v, w) in g.edges_of(u) {
            // self-loops count once; other edges once via the v > u side
            if v == u || (v > u && labels[v as usize] == c) {
                intra[c as usize] += w;
            }
        }
    }
    let mut q = 0.0;
    for (c, &w_in) in intra.iter().enumerate() {
        let vol = volumes[c];
        q += w_in / total - gamma * (vol / (2.0 * total)) * (vol / (2.0 * total));
    }
    q
}

/// The synchronized move phase (Chiêm et al. 2017). Every sweep: all
/// nodes propose against the frozen previous assignment, the proposals
/// commit in one deterministic node-order pass, and the sweep is kept only
/// if it improves a sequentially-evaluated modularity — otherwise it is
/// rolled back and the phase ends, which breaks label-chasing oscillation
/// by construction. Singleton-to-singleton proposals are additionally
/// damped by the minimum-label rule (only move toward a smaller community
/// id), killing two-cycle swaps before they cost a rollback. The budget
/// is tested once per sweep plus once per commit; interruption leaves the
/// last committed sweep.
pub(crate) fn move_phase_synchronized(
    g: &Graph,
    zeta: &mut Partition,
    gamma: f64,
    max_iterations: usize,
    rec: &Recorder,
    scratch: &ScratchPool,
    budget: &Budget,
) -> (u64, Termination) {
    let n = g.node_count();
    if n == 0 {
        return (0, Termination::Converged);
    }
    let total = g.total_edge_weight();
    if total == 0.0 {
        return (0, Termination::Converged);
    }
    let (mut labels, mut volumes, k) = deterministic_state(g, zeta);
    let mut sizes = vec![0u32; k];
    for &c in &labels {
        sizes[c as usize] += 1;
    }
    let nodes: Vec<Node> = g.nodes().collect();

    let mut q_prev = modularity_seq(g, &labels, &volumes, total, gamma);
    let mut total_moves = 0u64;
    let mut termination = Termination::Converged;
    for _ in 0..max_iterations {
        if let Err(t) = budget.check_sweep() {
            termination = t;
            break;
        }
        let state = MoveState {
            labels: &labels,
            volumes: &volumes,
            total,
            gamma,
        };
        let sizes_ref = &sizes;
        let labels_ref: &[u32] = &labels;
        let proposals = propose(g, &nodes, &state, scratch, k, |u, d| {
            // Minimum-label damping: a singleton may only move into
            // another singleton with a smaller community id, so two
            // mutually-attracted singletons cannot swap forever.
            let c = labels_ref[u as usize];
            sizes_ref[c as usize] != 1 || sizes_ref[d as usize] != 1 || d < c
        });
        if proposals.is_empty() {
            break;
        }
        // Commit boundary: the previous sweep's state is consistent, so
        // an expired budget stops before the commit rather than inside it.
        if let Err(t) = budget.check() {
            termination = t;
            break;
        }
        let snapshot_labels = labels.clone();
        let mut sweep_moves = 0u64;
        for &(u, d) in &proposals {
            let c = labels[u as usize];
            let vol_u = g.volume(u);
            volumes[c as usize] -= vol_u;
            volumes[d as usize] += vol_u;
            sizes[c as usize] -= 1;
            sizes[d as usize] += 1;
            labels[u as usize] = d;
            sweep_moves += 1;
        }
        let q = modularity_seq(g, &labels, &volumes, total, gamma);
        if q <= q_prev + 1e-12 {
            // The frozen-state estimates conflicted (e.g. many nodes
            // chased the same target): roll back and stop — later sweeps
            // would reproduce the same proposals. The phase ends here, so
            // only the labels need restoring.
            labels = snapshot_labels;
            rec.push_series("moves", 0.0);
            break;
        }
        q_prev = q;
        total_moves += sweep_moves;
        rec.push_series("moves", sweep_moves as f64);
    }

    *zeta = Partition::from_vec(labels);
    (total_moves, termination)
}

/// Runs one move phase with an explicit strategy on `zeta` in place,
/// computing the coloring internally when the strategy needs one. This is
/// the strategy-dispatching analogue of [`crate::move_phase`], used by the
/// benches and available to external callers; PLM itself dispatches
/// per-level so one coloring serves both the move and refinement phases.
pub fn move_phase_strategy(
    g: &Graph,
    zeta: &mut Partition,
    gamma: f64,
    max_iterations: usize,
    strategy: MoveStrategy,
) -> u64 {
    let scratch = ScratchPool::new();
    let budget = Budget::unlimited();
    let rec = Recorder::disabled();
    match strategy {
        MoveStrategy::Racy => crate::move_phase(g, zeta, gamma, max_iterations),
        MoveStrategy::Coloring => {
            let coloring = Coloring::compute(g);
            move_phase_colored(
                g,
                zeta,
                gamma,
                max_iterations,
                &coloring,
                &rec,
                &scratch,
                &budget,
            )
            .0
        }
        MoveStrategy::Synchronized => {
            move_phase_synchronized(g, zeta, gamma, max_iterations, &rec, &scratch, &budget).0
        }
    }
}

/// [`move_phase_strategy`] with a precomputed coloring, so benches can
/// time the per-sweep work without the once-per-level coloring setup.
pub fn move_phase_with_coloring(
    g: &Graph,
    zeta: &mut Partition,
    gamma: f64,
    max_iterations: usize,
    coloring: &Coloring,
) -> u64 {
    move_phase_colored(
        g,
        zeta,
        gamma,
        max_iterations,
        coloring,
        &Recorder::disabled(),
        &ScratchPool::new(),
        &Budget::unlimited(),
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};

    #[test]
    fn wire_names_round_trip() {
        for m in MoveStrategy::ALL {
            assert_eq!(MoveStrategy::from_wire(m.wire_name()).unwrap(), m);
            assert_eq!(m.to_string(), m.wire_name());
        }
        let err = MoveStrategy::from_wire("eager").unwrap_err();
        for name in ["racy", "coloring", "sync"] {
            assert!(err.contains(name), "{err} missing {name}");
        }
    }

    #[test]
    fn colored_phase_improves_modularity() {
        let (g, _) = ring_of_cliques(6, 6);
        let mut zeta = Partition::singleton(g.node_count());
        let before = modularity(&g, &zeta);
        let moves = move_phase_strategy(&g, &mut zeta, 1.0, 32, MoveStrategy::Coloring);
        assert!(moves > 0);
        assert!(modularity(&g, &zeta) > before);
    }

    #[test]
    fn synchronized_phase_improves_modularity() {
        let (g, _) = ring_of_cliques(6, 6);
        let mut zeta = Partition::singleton(g.node_count());
        let before = modularity(&g, &zeta);
        let moves = move_phase_strategy(&g, &mut zeta, 1.0, 32, MoveStrategy::Synchronized);
        assert!(moves > 0);
        assert!(modularity(&g, &zeta) > before);
    }

    #[test]
    fn deterministic_phases_reproduce_exactly() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.35), 3);
        for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
            let mut a = Partition::singleton(g.node_count());
            let mut b = Partition::singleton(g.node_count());
            move_phase_strategy(&g, &mut a, 1.0, 32, strategy);
            move_phase_strategy(&g, &mut b, 1.0, 32, strategy);
            assert_eq!(a.as_slice(), b.as_slice(), "{strategy} not reproducible");
        }
    }

    #[test]
    fn empty_and_edgeless_inputs() {
        use parcom_graph::GraphBuilder;
        for strategy in MoveStrategy::ALL {
            let g = GraphBuilder::new(0).build();
            let mut zeta = Partition::singleton(0);
            assert_eq!(move_phase_strategy(&g, &mut zeta, 1.0, 8, strategy), 0);
            let g = GraphBuilder::new(4).build();
            let mut zeta = Partition::singleton(4);
            assert_eq!(move_phase_strategy(&g, &mut zeta, 1.0, 8, strategy), 0);
            assert_eq!(zeta.number_of_subsets(), 4);
        }
    }
}
