//! RG — Randomized Greedy agglomeration (Ovelgönne & Geyer-Schulz).
//!
//! CNM's globally greedy merge order produces highly unbalanced communities
//! whose volumes dominate later Δmod scores. RG avoids this: each step
//! samples `k` live communities, finds the best merge available to each of
//! them, and executes the best of those. Agglomeration continues all the way
//! to a single community while the modularity of every intermediate state is
//! tracked; the returned solution is the dendrogram level with the maximal
//! modularity. RG is the base algorithm of the CGGC/CGGCi ensembles that won
//! the DIMACS Pareto challenge (§V-E c).

use crate::agglomeration::MergeState;
use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use parcom_graph::{Graph, Partition};
use parcom_guard::{Budget, Pacer, Termination};
use parcom_obs::{Recorder, RunReport};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Budget-check amortization for agglomerative merge loops: one check per
/// this many merges. A merge costs O(degree), so the check amortizes to
/// well under a nanosecond per merge while still bounding overshoot to a
/// few milliseconds on real graphs (DESIGN.md §11).
pub(crate) const MERGE_CHECK_INTERVAL: u32 = 1024;

/// The randomized greedy agglomerator.
#[derive(Clone, Debug)]
pub struct Rg {
    /// Sample size `k` per step (the original uses small k; 2 by default).
    pub sample_size: usize,
    /// Resolution parameter.
    pub gamma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Rg {
    fn default() -> Self {
        Self {
            sample_size: 2,
            gamma: 1.0,
            seed: 1,
        }
    }
}

impl Rg {
    /// RG with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full agglomeration under a recorder and a budget, shared by
    /// every entry point. The budget is checked once per
    /// [`MERGE_CHECK_INTERVAL`] merges; on expiry the merge loop stops and
    /// the replay still runs — the degraded result is the best dendrogram
    /// level *seen so far*, exactly what an uninterrupted run returns when
    /// the tracked maximum happens to lie at that step.
    pub(crate) fn run_guarded(
        &self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        let n = g.node_count();
        if n == 0 {
            return (Partition::singleton(0), Termination::Converged, None);
        }
        if g.total_edge_weight() == 0.0 {
            return (Partition::singleton(n), Termination::Converged, None);
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let merge_span = rec.span("agglomerate");
        let mut state = MergeState::new(g, self.gamma);

        // live community list for O(1) sampling
        let mut live: Vec<u32> = (0..n as u32).collect();

        let mut merge_log: Vec<(u32, u32)> = Vec::with_capacity(n);
        let mut q = state.modularity();
        let mut best_q = q;
        let mut best_step = 0usize;
        let mut termination = Termination::Converged;
        let mut pacer = Pacer::new(MERGE_CHECK_INTERVAL);

        while state.active_count > 1 {
            if pacer.tick() {
                if let Err(t) = budget.check() {
                    termination = t;
                    break;
                }
            }
            // prune dead entries lazily while sampling
            let mut best: Option<(f64, u32, u32)> = None;
            for _ in 0..self.sample_size {
                // sample a live, mergeable community; prune dead and
                // isolated entries (isolated communities can never merge)
                let a = loop {
                    if live.is_empty() {
                        break u32::MAX;
                    }
                    let idx = rng.gen_range(0..live.len());
                    let c = live[idx];
                    if !state.active[c as usize] || state.between[c as usize].is_empty() {
                        live.swap_remove(idx);
                        continue;
                    }
                    break c;
                };
                if a == u32::MAX {
                    break;
                }
                // best merge available to `a`
                for (&b, _) in state.between[a as usize].iter() {
                    let d = state.delta(a, b);
                    if best.is_none_or(|(bd, _, _)| d > bd) {
                        best = Some((d, a, b));
                    }
                }
            }
            let Some((mut delta, mut a, mut b)) = best else {
                // sampled communities had no neighbors (isolated); if any
                // community still has neighbors, keep going, else stop
                let has_candidates = live
                    .iter()
                    .any(|&c| state.active[c as usize] && !state.between[c as usize].is_empty());
                if !has_candidates {
                    break;
                }
                continue;
            };
            // When every merge available to the sampled communities lowers
            // modularity (they are already "complete"), executing one while
            // improving merges still exist elsewhere buries the optimum in
            // the middle of the dendrogram: the later improvements can lift
            // the tracked maximum past the pre-merge level, so the returned
            // best cut contains the bad merge. Fall back to a full greedy
            // scan in that case. The scan only triggers in the endgame
            // (or on unlucky samples), when few communities remain.
            if delta <= 0.0 {
                for &c in live.iter() {
                    if !state.active[c as usize] {
                        continue;
                    }
                    for (&other, _) in state.between[c as usize].iter() {
                        let d = state.delta(c, other);
                        if d > delta {
                            (delta, a, b) = (d, c, other);
                        }
                    }
                }
            }
            let survivor = state.merge(a, b);
            merge_log.push((a, b));
            q += delta;
            debug_assert!((q - state.modularity()).abs() < 1e-6);
            if q > best_q {
                best_q = q;
                best_step = merge_log.len();
            }
            let _ = survivor;
        }
        merge_span.counter("merges", merge_log.len() as u64);
        merge_span.counter("best-step", best_step as u64);
        merge_span.close();

        // replay merges up to the best dendrogram level
        let replay_span = rec.span("replay");
        let mut replay = MergeState::new(g, self.gamma);
        for &(a, b) in merge_log.iter().take(best_step) {
            // ids in the log are live at replay time by construction
            let (ra, rb) = (replay.find(a), replay.find(b));
            if ra != rb {
                replay.merge(ra, rb);
            }
        }
        replay_span.close();
        (
            replay.to_partition(),
            termination,
            Some("agglomerate".into()),
        )
    }
}

impl CommunityDetector for Rg {
    fn name(&self) -> String {
        "RG".into()
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_guarded(g, &Recorder::disabled(), &Budget::unlimited())
            .0
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, _, _) = self.run_guarded(g, &rec, &Budget::unlimited());
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric("modularity", crate::quality::modularity(g, &zeta));
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};
    use parcom_graph::GraphBuilder;

    #[test]
    fn near_optimal_on_ring_of_cliques() {
        // RG's randomized dendrogram can strand the odd singleton, so exact
        // recovery is not guaranteed — near-optimal modularity is.
        let (g, truth) = ring_of_cliques(6, 6);
        let zeta = Rg::new().detect(&g);
        let q = modularity(&g, &zeta);
        let q_truth = modularity(&g, &truth);
        assert!(q > q_truth - 0.08, "RG {q} vs truth {q_truth}");
        // no two cliques may be merged
        for u in g.nodes() {
            for v in g.nodes() {
                if zeta.in_same_subset(u, v) {
                    assert!(truth.in_same_subset(u, v), "cliques merged at {u},{v}");
                }
            }
        }
    }

    #[test]
    fn strong_quality_on_lfr() {
        let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 7);
        let q = modularity(&g, &Rg::new().detect(&g));
        assert!(q > 0.4, "RG quality too low: {q}");
    }

    #[test]
    fn rg_competitive_with_cnm() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.35), 8);
        let q_rg = modularity(&g, &Rg::new().detect(&g));
        let q_cnm = modularity(&g, &crate::cnm::Cnm::new().detect(&g));
        assert!(
            q_rg >= q_cnm - 0.05,
            "RG ({q_rg}) should be at least CNM-level ({q_cnm})"
        );
    }

    fn seeded(seed: u64) -> Rg {
        let mut rg = Rg::new();
        rg.set_seed(seed);
        rg
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = lfr(LfrParams::benchmark(400, 0.4), 9);
        let a = seeded(5).detect(&g);
        let b = seeded(5).detect(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn different_seeds_can_differ() {
        let (g, _) = lfr(LfrParams::benchmark(400, 0.5), 10);
        let a = seeded(1).detect(&g);
        let b = seeded(2).detect(&g);
        // solutions usually differ in label vectors (grouping may coincide)
        let _ = (a, b); // smoke: both complete without panic
    }

    #[test]
    fn report_has_agglomeration_phases() {
        let (g, _) = ring_of_cliques(5, 5);
        let (_, report) = Rg::new().detect_with_report(&g);
        let agg = report.phase("agglomerate").expect("agglomerate phase");
        assert!(agg.counter("merges").unwrap() > 0);
        assert!(agg.counter("best-step").unwrap() > 0);
        assert!(report.phase("replay").is_some());
        assert!(report.metric("modularity").unwrap() > 0.5);
    }

    #[test]
    fn guarded_cancellation_returns_best_seen() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.3), 3);
        let token = crate::CancelToken::new();
        token.cancel();
        // cancelled before the first paced check fires mid-merge: RG may
        // complete up to an interval of merges, but must return cleanly
        let budget = Budget::unlimited().with_token(token);
        let r = Rg::new().detect_guarded(&g, &budget);
        assert_eq!(r.termination, Termination::Cancelled);
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate().is_ok());
    }

    #[test]
    fn handles_disconnected_and_edgeless() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(Rg::new().detect(&g).number_of_subsets(), 5);
        let g2 = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let zeta = Rg::new().detect(&g2);
        assert!(zeta.in_same_subset(0, 1));
        assert!(zeta.in_same_subset(2, 3));
        assert!(!zeta.in_same_subset(1, 2));
    }
}
