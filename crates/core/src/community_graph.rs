//! Community graphs — the visualization pipeline of Fig. 11.
//!
//! Coarsening the input graph by a solution yields the *community graph*:
//! one node per community (sized by member count), edges weighted by
//! inter-community edge weight. The paper uses it to contrast the resolution
//! of PLP (~1000 communities on PGPgiantcompo) with PLM/PLMR/EPP (~100).

use parcom_graph::{coarsen, Graph, Partition};

/// A community graph with per-community statistics.
#[derive(Clone, Debug)]
pub struct CommunityGraph {
    /// The contracted graph (self-loops carry intra-community weight).
    pub graph: Graph,
    /// Member count per community (indexed by coarse node id).
    pub sizes: Vec<usize>,
    /// Fine-to-coarse mapping.
    pub fine_to_coarse: Vec<u32>,
}

impl CommunityGraph {
    /// Builds the community graph of `zeta` over `g`.
    pub fn build(g: &Graph, zeta: &Partition) -> Self {
        let contraction = coarsen(g, zeta);
        let mut sizes = vec![0usize; contraction.coarse.node_count()];
        for &c in &contraction.fine_to_coarse {
            sizes[c as usize] += 1;
        }
        Self {
            graph: contraction.coarse,
            sizes,
            fine_to_coarse: contraction.fine_to_coarse,
        }
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest community.
    pub fn max_community_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Histogram of community sizes in power-of-two buckets:
    /// `hist[i]` counts communities with size in `[2^i, 2^(i+1))`.
    pub fn size_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for &s in &self.sizes {
            if s == 0 {
                continue;
            }
            let bucket = (usize::BITS - 1 - s.leading_zeros()) as usize;
            if hist.len() <= bucket {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_generators::ring_of_cliques;

    #[test]
    fn sizes_match_partition() {
        let (g, truth) = ring_of_cliques(4, 5);
        let cg = CommunityGraph::build(&g, &truth);
        assert_eq!(cg.community_count(), 4);
        assert_eq!(cg.sizes, vec![5, 5, 5, 5]);
        assert_eq!(cg.max_community_size(), 5);
    }

    #[test]
    fn ring_structure_survives() {
        let (g, truth) = ring_of_cliques(5, 4);
        let cg = CommunityGraph::build(&g, &truth);
        // community graph of a ring of cliques is a 5-cycle with self-loops
        assert_eq!(cg.graph.node_count(), 5);
        for c in cg.graph.nodes() {
            assert_eq!(cg.graph.neighbors(c).iter().filter(|&&x| x != c).count(), 2);
            assert_eq!(cg.graph.self_loop_weight(c), 6.0); // C(4,2) intra edges
        }
    }

    #[test]
    fn histogram_buckets_by_log_size() {
        let (g, _) = ring_of_cliques(3, 4);
        // sizes 4, 4, 4 → bucket 2 ([4,8))
        let p = Partition::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        let cg = CommunityGraph::build(&g, &p);
        assert_eq!(cg.size_histogram(), vec![0, 0, 3]);
    }

    #[test]
    fn mixed_sizes_histogram() {
        let (g, _) = ring_of_cliques(2, 4);
        let p = Partition::from_vec(vec![0, 1, 1, 1, 1, 1, 1, 1]); // sizes 1 and 7
        let cg = CommunityGraph::build(&g, &p);
        assert_eq!(cg.size_histogram(), vec![1, 0, 1]);
    }
}
