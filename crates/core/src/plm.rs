//! PLM — Parallel Louvain Method (Algorithms 2 and 3), and PLMR, its
//! refinement extension (Algorithm 4).
//!
//! The Louvain method repeatedly moves nodes to the neighboring community
//! with the locally maximal modularity gain until stable, then coarsens the
//! graph by the communities and recurses; the coarsest solution is prolonged
//! back to the input graph. PLM parallelizes the move phase: node moves are
//! evaluated and performed concurrently, accepting *stale* Δmod scores — a
//! move may transiently decrease modularity, but later iterations correct
//! such decisions (§III-B). Only the community volumes are maintained
//! incrementally (atomic adds); the weight from a node to its neighboring
//! communities is recomputed per evaluation, which the paper found faster
//! than locked per-node maps.
//!
//! PLMR (`refine = true`) runs one more move phase after every prolongation,
//! re-evaluating node assignments against the coarser level's outcome for
//! extra modularity at a small time cost (§III-C).

use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use crate::moves::{move_phase_colored, move_phase_synchronized, MoveStrategy};
use crate::quality::delta_modularity;
use parcom_graph::{
    coarsen_with, AtomicF64, AtomicPartition, Coloring, Graph, Partition, ScratchPool,
};
use parcom_guard::{Budget, Termination};
use parcom_obs::{CounterCell, LocalCount, Recorder, RunReport};
use rayon::prelude::*;

/// Configuration and statistics of the parallel Louvain method.
///
/// # Examples
///
/// ```
/// use parcom_core::{CommunityDetector, Plm};
/// use parcom_generators::ring_of_cliques;
///
/// let (graph, truth) = ring_of_cliques(6, 8);
/// let communities = Plm::new().detect(&graph);
/// assert_eq!(communities.number_of_subsets(), 6);
/// # for u in graph.nodes() { for v in graph.nodes() {
/// #     assert_eq!(truth.in_same_subset(u, v), communities.in_same_subset(u, v));
/// # } }
/// ```
#[derive(Clone, Debug)]
pub struct Plm {
    /// Resolution parameter γ ∈ [0, 2ω(E)]: 1 is standard modularity, lower
    /// values coarser communities, higher values finer ones (§III-B).
    pub gamma: f64,
    /// Adds the refinement move phase after each prolongation (PLMR).
    pub refine: bool,
    /// Cap on move-phase sweeps per level (guards the theoretical
    /// non-termination of parallel moves on stale data).
    pub max_move_iterations: usize,
    /// Cap on the coarsening hierarchy depth.
    pub max_levels: usize,
    /// How the move phase schedules concurrent node moves (DESIGN.md §14):
    /// the paper's racy default, coloring-isolated classes, or the
    /// synchronized one-commit-per-sweep formulation. The latter two are
    /// bit-deterministic at any thread count.
    pub move_strategy: MoveStrategy,
}

/// Per-run statistics of PLM.
#[derive(Clone, Debug, Default)]
pub struct PlmStats {
    /// Node count of the graph at each hierarchy level (finest first).
    pub level_sizes: Vec<usize>,
    /// Node moves performed at each level (move + refinement phases).
    pub moves_per_level: Vec<u64>,
}

impl Default for Plm {
    fn default() -> Self {
        Self {
            gamma: 1.0,
            refine: false,
            max_move_iterations: 32,
            max_levels: 64,
            move_strategy: MoveStrategy::Racy,
        }
    }
}

impl Plm {
    /// Standard PLM.
    pub fn new() -> Self {
        Self::default()
    }

    /// PLMR: PLM with a refinement phase on every level.
    pub fn with_refinement() -> Self {
        Self {
            refine: true,
            ..Self::default()
        }
    }

    /// PLM with a non-standard resolution γ.
    pub fn with_gamma(gamma: f64) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        Self {
            gamma,
            ..Self::default()
        }
    }

    /// PLM with an explicit move-phase strategy.
    pub fn with_strategy(strategy: MoveStrategy) -> Self {
        Self {
            move_strategy: strategy,
            ..Self::default()
        }
    }

    /// One move phase dispatched by [`Self::move_strategy`]; `coloring` is
    /// the level's precomputed coloring (present iff the strategy needs
    /// one, computed once per level so refinement reuses it).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_move_phase(
        &self,
        g: &Graph,
        zeta: &mut Partition,
        coloring: Option<&Coloring>,
        rec: &Recorder,
        scratch: &ScratchPool,
        budget: &Budget,
    ) -> (u64, Termination) {
        match self.move_strategy {
            MoveStrategy::Racy => move_phase_pooled(
                g,
                zeta,
                self.gamma,
                self.max_move_iterations,
                rec,
                scratch,
                budget,
            ),
            MoveStrategy::Coloring => move_phase_colored(
                g,
                zeta,
                self.gamma,
                self.max_move_iterations,
                coloring.expect("coloring computed at level entry"),
                rec,
                scratch,
                budget,
            ),
            MoveStrategy::Synchronized => move_phase_synchronized(
                g,
                zeta,
                self.gamma,
                self.max_move_iterations,
                rec,
                scratch,
                budget,
            ),
        }
    }

    /// One hierarchy level under a budget. On expiry the recursion stops
    /// and the *current level's* assignment — valid at every sweep
    /// boundary — bubbles up, getting prolonged through every caller on
    /// the way out: exactly the "current hierarchy level projected to the
    /// fine graph" degradation contract (DESIGN.md §11).
    fn run_recursive(
        &self,
        g: &Graph,
        depth: usize,
        stats: &mut PlmStats,
        rec: &Recorder,
        scratch: &ScratchPool,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        // The whole level — including the recursion into coarser levels —
        // runs inside one `level-{depth}` span, so the report mirrors the
        // hierarchy: level-0 → [move-phase, coarsen, level-1 → […], refine].
        let level = rec.span_fmt(format_args!("level-{depth}"));
        level.counter("nodes", g.node_count() as u64);
        level.counter("edges", g.edge_count() as u64);
        stats.level_sizes.push(g.node_count());
        let mut zeta = Partition::singleton(g.node_count());
        // Coloring strategy: color the level once; both the move phase and
        // the PLMR refinement below reuse the same classes. On budget
        // expiry the level degrades to its singleton assignment — exactly
        // what an interrupted move phase would leave.
        let coloring = if self.move_strategy == MoveStrategy::Coloring {
            let span = rec.span("coloring");
            match Coloring::compute_budgeted(g, scratch, budget) {
                Ok(c) => {
                    span.counter("colors", c.num_colors() as u64);
                    span.counter("followers", c.followers().len() as u64);
                    Some(c)
                }
                Err(t) => {
                    return (zeta, t, Some(format!("level-{depth}/coloring")));
                }
            }
        } else {
            None
        };
        let (moves, move_term) = {
            let span = rec.span("move-phase");
            let (moves, term) =
                self.dispatch_move_phase(g, &mut zeta, coloring.as_ref(), rec, scratch, budget);
            span.counter("moves", moves);
            (moves, term)
        };
        stats.moves_per_level.push(moves);
        if move_term.interrupted() {
            return (zeta, move_term, Some(format!("level-{depth}/move-phase")));
        }

        if moves > 0 && depth < self.max_levels {
            // Level boundary: don't start a contraction the budget no
            // longer covers.
            if let Err(t) = budget.check() {
                return (zeta, t, Some(format!("level-{depth}/coarsen")));
            }
            let contraction = coarsen_with(g, &zeta, rec);
            // progress guard: recursion must strictly shrink the graph
            if contraction.coarse.node_count() < g.node_count() {
                let (coarse_zeta, term, cut) =
                    self.run_recursive(&contraction.coarse, depth + 1, stats, rec, scratch, budget);
                zeta = contraction.prolong(&coarse_zeta);
                if term.interrupted() {
                    return (zeta, term, cut);
                }
                if self.refine {
                    let span = rec.span("refine");
                    let (refine_moves, refine_term) = self.dispatch_move_phase(
                        g,
                        &mut zeta,
                        coloring.as_ref(),
                        rec,
                        scratch,
                        budget,
                    );
                    span.counter("moves", refine_moves);
                    if let Some(m) = stats.moves_per_level.get_mut(depth) {
                        *m += refine_moves;
                    }
                    if refine_term.interrupted() {
                        return (zeta, refine_term, Some(format!("level-{depth}/refine")));
                    }
                }
            }
        }
        (zeta, Termination::Converged, None)
    }

    fn run(&mut self, g: &Graph, rec: &Recorder) -> Partition {
        self.run_guarded(g, rec, &Budget::unlimited()).0
    }

    /// The full hierarchy under a budget; shared by every public entry
    /// point. Returns the (possibly degraded) fine-graph partition, the
    /// termination cause and the cut phase name.
    fn run_guarded(
        &mut self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        let mut stats = PlmStats::default();
        // One pool for the whole hierarchy: each worker's scratch map is
        // allocated at the level-0 community count and recycled by every
        // sweep of every level below (coarser levels only need less).
        let scratch = ScratchPool::new();
        let (mut zeta, termination, cut_phase) =
            self.run_recursive(g, 0, &mut stats, rec, &scratch, budget);
        rec.counter("levels", stats.level_sizes.len() as u64);
        zeta.compact();
        // Postcondition for PLM and PLMR alike: a dense assignment
        // covering exactly the input nodes (coarsening inside
        // run_recursive is cross-checked by coarsen() itself).
        #[cfg(any(debug_assertions, feature = "validate"))]
        {
            if zeta.len() != g.node_count() {
                panic!(
                    "PLM postcondition violated: partition covers {} of {} nodes",
                    zeta.len(),
                    g.node_count()
                );
            }
            if let Err(e) = zeta.validate_dense() {
                panic!("PLM postcondition violated: {e}");
            }
        }
        (zeta, termination, cut_phase)
    }
}

impl CommunityDetector for Plm {
    fn name(&self) -> String {
        let base = if self.refine { "PLMR" } else { "PLM" };
        let mut name = if (self.gamma - 1.0).abs() > 1e-12 {
            format!("{base}(γ={})", self.gamma)
        } else {
            base.to_string()
        };
        if self.move_strategy != MoveStrategy::Racy {
            name.push_str(&format!("[{}]", self.move_strategy));
        }
        name
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run(g, &Recorder::disabled())
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let zeta = self.run(g, &rec);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric(
                "modularity",
                crate::quality::modularity_gamma(g, &zeta, self.gamma),
            );
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric(
                "modularity",
                crate::quality::modularity_gamma(g, &zeta, self.gamma),
            );
        }
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

/// The parallel local move phase (Algorithm 2).
///
/// Moves nodes of `g` between the communities of `zeta` (modified in place)
/// until no node moves in a full sweep or `max_iterations` is reached.
/// Returns the number of moves performed. Shared state during the sweep is
/// the atomic label array and one atomic volume accumulator per community —
/// reads may be stale by design.
pub fn move_phase(g: &Graph, zeta: &mut Partition, gamma: f64, max_iterations: usize) -> u64 {
    move_phase_with(g, zeta, gamma, max_iterations, &Recorder::disabled())
}

/// [`move_phase`] with instrumentation: appends the per-sweep move count
/// as a `moves` series on the innermost open span (the caller names the
/// phase — PLM uses `move-phase` and `refine`). With a disabled recorder
/// this is exactly `move_phase`.
pub fn move_phase_with(
    g: &Graph,
    zeta: &mut Partition,
    gamma: f64,
    max_iterations: usize,
    rec: &Recorder,
) -> u64 {
    move_phase_pooled(
        g,
        zeta,
        gamma,
        max_iterations,
        rec,
        &ScratchPool::new(),
        &Budget::unlimited(),
    )
    .0
}

/// [`move_phase_with`] drawing per-thread scratch maps from `scratch`
/// instead of allocating them — the entry point PLM uses so one pool
/// serves every sweep of every hierarchy level. The budget is tested once
/// per sweep (a sweep touches every node, so per-node checks would cost
/// more than they save); an interrupted phase leaves `zeta` at the last
/// completed sweep — a valid assignment by construction.
fn move_phase_pooled(
    g: &Graph,
    zeta: &mut Partition,
    gamma: f64,
    max_iterations: usize,
    rec: &Recorder,
    scratch: &ScratchPool,
    budget: &Budget,
) -> (u64, Termination) {
    let n = g.node_count();
    if n == 0 {
        return (0, Termination::Converged);
    }
    let total = g.total_edge_weight();
    if total == 0.0 {
        return (0, Termination::Converged);
    }
    zeta.compact();
    let k = zeta.upper_bound() as usize;

    let labels = AtomicPartition::from_partition(zeta);
    // Per-thread dense accumulators merged once, instead of one shared
    // atomic array written n times from a sequential loop.
    let volumes: Vec<AtomicF64> = g
        .par_nodes()
        .fold(
            || vec![0.0f64; k.max(1)],
            |mut acc, u| {
                acc[zeta.subset_of(u) as usize] += g.volume(u);
                acc
            },
        )
        .reduce(
            || vec![0.0f64; k.max(1)],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
        .into_iter()
        .map(AtomicF64::new)
        .collect();

    let mut total_moves = 0u64;
    let mut termination = Termination::Converged;
    for _ in 0..max_iterations {
        if let Err(t) = budget.check_sweep() {
            termination = t;
            break;
        }
        // Sharded move counter: workers bump thread-local integers that
        // merge into the cell when their state drops at the sweep's end.
        let moves = CounterCell::new();
        g.par_nodes().for_each_init(
            || (scratch.take(k.max(1)), LocalCount::new(&moves)),
            |(weight_to, local_moves), u| {
                if g.degree(u) == 0 {
                    return;
                }
                weight_to.clear();
                for (v, w) in g.edges_of(u) {
                    if v != u {
                        // labels are always ids the compacted input
                        // partition contained, so they index the scratch map
                        weight_to.add(labels.get(v), w);
                    }
                }
                let c = labels.get(u);
                let vol_u = g.volume(u);
                let weight_to_c = weight_to.get(c);
                let vol_c_without_u = volumes[c as usize].load() - vol_u;

                let mut best_delta = 0.0;
                let mut best_community = c;
                for (d, weight_to_d) in weight_to.iter() {
                    if d == c {
                        continue;
                    }
                    let delta = delta_modularity(
                        weight_to_c,
                        weight_to_d,
                        vol_c_without_u,
                        volumes[d as usize].load(),
                        vol_u,
                        total,
                        gamma,
                    );
                    if delta > best_delta
                        || (delta == best_delta && best_community != c && d < best_community)
                    {
                        best_delta = delta;
                        best_community = d;
                    }
                }
                if best_community != c && best_delta > 0.0 {
                    volumes[c as usize].fetch_sub(vol_u);
                    volumes[best_community as usize].fetch_add(vol_u);
                    labels.set(u, best_community);
                    local_moves.bump();
                }
            },
        );
        let moves = moves.get();
        total_moves += moves;
        rec.push_series("moves", moves as f64);
        if moves == 0 {
            break;
        }
    }

    *zeta = labels.to_partition();
    (total_moves, termination)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{modularity, modularity_gamma};
    use parcom_generators::{
        lfr, planted_partition, ring_of_cliques, LfrParams, PlantedPartitionParams,
    };
    use parcom_graph::GraphBuilder;

    #[test]
    fn recovers_ring_of_cliques_exactly() {
        let (g, truth) = ring_of_cliques(10, 8);
        let mut plm = Plm::new();
        let zeta = plm.detect(&g);
        assert_eq!(zeta.number_of_subsets(), 10);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(truth.in_same_subset(u, v), zeta.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn move_phase_increases_modularity_from_singletons() {
        let (g, _) = ring_of_cliques(6, 6);
        let mut zeta = Partition::singleton(g.node_count());
        let before = modularity(&g, &zeta);
        let moves = move_phase(&g, &mut zeta, 1.0, 32);
        assert!(moves > 0);
        assert!(modularity(&g, &zeta) > before);
    }

    #[test]
    fn high_quality_on_lfr() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.3), 5);
        let mut plm = Plm::new();
        let zeta = plm.detect(&g);
        let q = modularity(&g, &zeta);
        assert!(q > 0.45, "PLM modularity too low: {q}");
    }

    #[test]
    fn plm_beats_plp_on_noisy_instances() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.5), 6);
        let q_plm = modularity(&g, &Plm::new().detect(&g));
        let q_plp = modularity(&g, &crate::plp::Plp::new().detect(&g));
        assert!(
            q_plm >= q_plp - 0.01,
            "PLM ({q_plm}) should not lose clearly to PLP ({q_plp})"
        );
    }

    #[test]
    fn refinement_does_not_hurt() {
        let (g, _) = lfr(LfrParams::benchmark(1500, 0.4), 7);
        let q_plm = modularity(&g, &Plm::new().detect(&g));
        let q_plmr = modularity(&g, &Plm::with_refinement().detect(&g));
        assert!(
            q_plmr >= q_plm - 0.01,
            "PLMR ({q_plmr}) clearly worse than PLM ({q_plm})"
        );
    }

    #[test]
    fn builds_a_hierarchy() {
        let (g, _) = lfr(LfrParams::benchmark(1000, 0.3), 8);
        let mut plm = Plm::new();
        let (_, report) = plm.detect_with_report(&g);
        // walk the nested level-* phases, collecting their node counts
        let mut sizes = Vec::new();
        let mut level = report.phase("level-0");
        while let Some(p) = level {
            sizes.push(p.counter("nodes").unwrap());
            assert!(p.child("move-phase").is_some());
            level = p.children.iter().find(|c| c.name.starts_with("level-"));
        }
        assert!(sizes.len() >= 2, "no coarsening happened");
        // strictly decreasing level sizes
        for w in sizes.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert_eq!(report.counter("levels"), Some(sizes.len() as u64));
    }

    #[test]
    fn report_has_per_level_phase_timings() {
        let (g, _) = lfr(LfrParams::benchmark(1500, 0.3), 12);
        let (_, report) = Plm::with_refinement().detect_with_report(&g);
        let level0 = report.phase("level-0").expect("level-0 phase");
        assert!(level0.wall_seconds > 0.0);
        let mv = level0.child("move-phase").expect("move-phase under level");
        assert!(mv.wall_seconds > 0.0);
        assert!(mv.counter("moves").unwrap() > 0);
        assert!(!mv.series("moves").unwrap().is_empty());
        let coarsen = level0.child("coarsen").expect("coarsen under level");
        assert!(coarsen.counter("merges").unwrap() > 0);
        assert!(level0.child("refine").is_some(), "PLMR refines every level");
        // nesting discipline: children ran inside the level span
        assert!(level0.children_wall_seconds() <= level0.wall_seconds + 1e-9);
        assert!(report.metric("modularity").unwrap() > 0.3);
    }

    #[test]
    fn gamma_controls_resolution() {
        let (g, _) = planted_partition(
            PlantedPartitionParams {
                n: 200,
                k: 8,
                p_in: 0.4,
                p_out: 0.02,
            },
            9,
        );
        let coarse = Plm::with_gamma(0.2).detect(&g).number_of_subsets();
        let standard = Plm::new().detect(&g).number_of_subsets();
        let fine = Plm::with_gamma(6.0).detect(&g).number_of_subsets();
        assert!(
            coarse <= standard,
            "low gamma should coarsen: {coarse} vs {standard}"
        );
        assert!(
            fine >= standard,
            "high gamma should refine: {fine} vs {standard}"
        );
    }

    #[test]
    fn gamma_zero_merges_connected_component() {
        let (g, _) = ring_of_cliques(4, 4);
        let zeta = Plm::with_gamma(0.0).detect(&g);
        assert_eq!(zeta.number_of_subsets(), 1);
    }

    #[test]
    fn extreme_gamma_keeps_singletons() {
        let (g, _) = ring_of_cliques(3, 4);
        let gamma = 2.0 * g.total_edge_weight();
        let zeta = Plm::with_gamma(gamma).detect(&g);
        // with γ = 2ω(E) no merge is profitable
        assert_eq!(zeta.number_of_subsets(), g.node_count());
    }

    #[test]
    fn gamma_zero_mod_matches_direct_formula() {
        let (g, _) = ring_of_cliques(3, 5);
        let zeta = Plm::with_gamma(0.0).detect(&g);
        assert!((modularity_gamma(&g, &zeta, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let mut plm = Plm::new();
        assert_eq!(plm.detect(&GraphBuilder::new(0).build()).len(), 0);
        let g = GraphBuilder::new(5).build();
        let zeta = plm.detect(&g);
        assert_eq!(zeta.number_of_subsets(), 5);
    }

    #[test]
    fn weighted_graphs_respected() {
        // two heavy pairs bridged by light edges: pairs must be communities
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10.0);
        b.add_edge(2, 3, 10.0);
        b.add_edge(1, 2, 0.5);
        b.add_edge(3, 0, 0.5);
        let g = b.build();
        let zeta = Plm::new().detect(&g);
        assert!(zeta.in_same_subset(0, 1));
        assert!(zeta.in_same_subset(2, 3));
        assert!(!zeta.in_same_subset(1, 2));
    }

    #[test]
    fn guarded_unlimited_matches_plain_contract() {
        let (g, _) = ring_of_cliques(10, 8);
        let r = Plm::new().detect_guarded(&g, &crate::Budget::unlimited());
        assert_eq!(r.termination, crate::Termination::Converged);
        assert_eq!(r.partition.number_of_subsets(), 10);
        assert!(r.partition.validate_dense().is_ok());
        assert_eq!(r.report.cut_phase, None);
    }

    #[test]
    fn guarded_sweep_cap_cuts_hierarchy_and_names_the_phase() {
        let (g, _) = lfr(LfrParams::benchmark(3000, 0.3), 5);
        // Two sweeps: enough to leave level 0 mid-hierarchy on this input.
        let budget = crate::Budget::unlimited().with_max_sweeps(2);
        let r = Plm::new().detect_guarded(&g, &budget);
        assert_eq!(r.termination, crate::Termination::IterationCap);
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate_dense().is_ok());
        let cut = r.report.cut_phase.as_deref().expect("cut phase recorded");
        assert!(cut.starts_with("level-"), "unexpected cut phase {cut}");
        assert_eq!(r.report.termination.as_deref(), Some("iteration-cap"));
    }

    #[test]
    fn guarded_expired_mid_run_still_prolongs_to_fine_graph() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.4), 9);
        // Cancel after the first sweep via the token, mimicking an external
        // abort between sweeps.
        let budget = crate::Budget::unlimited().with_max_sweeps(3);
        let r = Plm::with_refinement().detect_guarded(&g, &budget);
        // whatever level was reached, the result covers the fine graph
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate_dense().is_ok());
    }

    #[test]
    fn names() {
        assert_eq!(Plm::new().name(), "PLM");
        assert_eq!(Plm::with_refinement().name(), "PLMR");
        assert_eq!(Plm::with_gamma(0.5).name(), "PLM(γ=0.5)");
    }
}
