//! Consensus combination of base solutions (§III-D).
//!
//! The core communities ζ̄ of an ensemble place two nodes together iff
//! *every* base solution places them together (Eq. III.2). The paper
//! implements this with a `b`-way hash: each node's tuple of base community
//! ids `(ζ₁(v), …, ζ_b(v))` is hashed with djb2 to its core community id —
//! embarrassingly parallel over nodes. Hash collisions could spuriously
//! merge nodes; with 64-bit djb2 they are negligible at benchmark scales,
//! and an exact (collision-free) variant is provided for verification.

use parcom_graph::hashing::{djb2, FxHashMap};
use parcom_graph::Partition;
use rayon::prelude::*;

/// Hash-based core-communities combine (the paper's parallel algorithm).
///
/// Panics if `solutions` is empty or the solutions disagree on length.
// audit:allow(budget-propagation): one bounded hash pass per ensemble round; the caller checks the budget between rounds
pub fn core_communities(solutions: &[Partition]) -> Partition {
    assert!(!solutions.is_empty(), "need at least one base solution");
    let n = solutions[0].len();
    assert!(
        solutions.iter().all(|s| s.len() == n),
        "base solutions must cover the same node set"
    );

    let hashes: Vec<u64> = (0..n)
        .into_par_iter()
        .map(|v| {
            let tuple: Vec<u32> = solutions.iter().map(|s| s.subset_of(v as u32)).collect();
            djb2(&tuple)
        })
        .collect();

    // densify 64-bit hashes to community ids
    let mut remap: FxHashMap<u64, u32> = FxHashMap::default();
    let mut data = Vec::with_capacity(n);
    for h in hashes {
        let next = remap.len() as u32; // audit:allow(lossy-cast): bounded by the u32 node id space
        data.push(*remap.entry(h).or_insert(next));
    }
    Partition::from_vec(data)
}

/// Exact (collision-free) combine via tuple interning. Slower; used in tests
/// to validate [`core_communities`].
pub fn core_communities_exact(solutions: &[Partition]) -> Partition {
    assert!(!solutions.is_empty());
    let n = solutions[0].len();
    let mut remap: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut data = Vec::with_capacity(n);
    for v in 0..n {
        let tuple: Vec<u32> = solutions.iter().map(|s| s.subset_of(v as u32)).collect();
        let next = remap.len() as u32; // audit:allow(lossy-cast): bounded by the u32 node id space
        data.push(*remap.entry(tuple).or_insert(next));
    }
    Partition::from_vec(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_is_pairwise_intersection() {
        let a = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let b = Partition::from_vec(vec![0, 0, 1, 1, 1, 2]);
        let core = core_communities(&[a.clone(), b.clone()]);
        for u in 0..6u32 {
            for v in 0..6u32 {
                let together = a.in_same_subset(u, v) && b.in_same_subset(u, v);
                assert_eq!(
                    core.in_same_subset(u, v),
                    together,
                    "nodes {u},{v}: Eq. III.2 violated"
                );
            }
        }
    }

    #[test]
    fn identical_solutions_unchanged() {
        let a = Partition::from_vec(vec![2, 2, 5, 5, 5]);
        let core = core_communities(&[a.clone(), a.clone(), a.clone()]);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(core.in_same_subset(u, v), a.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn single_solution_is_identity_grouping() {
        let a = Partition::from_vec(vec![3, 3, 1, 1]);
        let core = core_communities(std::slice::from_ref(&a));
        assert_eq!(core.number_of_subsets(), 2);
        assert!(core.in_same_subset(0, 1));
        assert!(!core.in_same_subset(0, 2));
    }

    #[test]
    fn disjoint_solutions_give_singletons() {
        let a = Partition::from_vec(vec![0, 0, 1, 1]);
        let b = Partition::from_vec(vec![0, 1, 0, 1]);
        let core = core_communities(&[a, b]);
        assert_eq!(core.number_of_subsets(), 4);
    }

    #[test]
    fn hash_combine_matches_exact_combine() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 5000;
        let solutions: Vec<Partition> = (0..4)
            .map(|_| Partition::from_vec((0..n).map(|_| rng.gen_range(0..50u32)).collect()))
            .collect();
        let fast = core_communities(&solutions);
        let exact = core_communities_exact(&solutions);
        assert_eq!(fast.number_of_subsets(), exact.number_of_subsets());
        // same grouping up to relabeling: compare via canonical compact forms
        let mut f = fast.clone();
        let mut e = exact.clone();
        f.compact();
        e.compact();
        assert_eq!(f.as_slice(), e.as_slice());
    }

    #[test]
    fn core_is_refinement_of_every_base() {
        let a = Partition::from_vec(vec![0, 0, 1, 1, 2, 2]);
        let b = Partition::from_vec(vec![0, 1, 1, 1, 2, 2]);
        let core = core_communities(&[a.clone(), b.clone()]);
        assert!(core.is_refinement_of(&a));
        assert!(core.is_refinement_of(&b));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ensemble_panics() {
        core_communities(&[]);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn mismatched_lengths_panic() {
        core_communities(&[Partition::singleton(3), Partition::singleton(4)]);
    }
}
