//! CGGC / CGGCi — Core Groups Graph Clustering ensembles over RG
//! (Ovelgönne & Geyer-Schulz, DIMACS Pareto winner; §V-E c).
//!
//! CGGC is the one-level scheme: an ensemble of RG runs produces core
//! groups (the same consensus combine as EPP), the graph is contracted and
//! the final RG solves the rest. CGGCi iterates the ensemble step — the
//! contracted graph is fed to a fresh ensemble until the consensus stops
//! improving modularity — and then applies the final algorithm. Both are
//! qualitatively at the top of the field and, like the originals, expensive.

use crate::algorithm::CommunityDetector;
use crate::combine::core_communities;
use crate::quality::modularity_gamma;
use crate::rg::Rg;
use parcom_graph::{coarsen, Coarsening, Graph, Partition};
use rayon::prelude::*;

/// The core-groups ensemble over RG.
#[derive(Clone, Debug)]
pub struct Cggc {
    /// Ensemble size per level.
    pub ensemble_size: usize,
    /// Iterate the ensemble step until consensus quality stalls (CGGCi).
    pub iterated: bool,
    /// Sample size of the RG base runs.
    pub rg_sample_size: usize,
    /// Resolution parameter.
    pub gamma: f64,
    /// Base RNG seed; run `i` at level `l` derives its own stream.
    pub seed: u64,
    /// Cap on ensemble iterations (CGGCi).
    pub max_levels: usize,
}

impl Cggc {
    /// One-level CGGC with the paper-style configuration.
    pub fn new(ensemble_size: usize) -> Self {
        Self {
            ensemble_size,
            iterated: false,
            rg_sample_size: 1,
            gamma: 1.0,
            seed: 1,
            max_levels: 16,
        }
    }

    /// The iterated variant CGGCi.
    pub fn iterated(ensemble_size: usize) -> Self {
        Self {
            iterated: true,
            ..Self::new(ensemble_size)
        }
    }

    fn ensemble_core(&self, g: &Graph, level: usize) -> Partition {
        let solutions: Vec<Partition> = (0..self.ensemble_size)
            .into_par_iter()
            .map(|i| {
                let mut rg = Rg {
                    sample_size: self.rg_sample_size,
                    gamma: self.gamma,
                    seed: self
                        .seed
                        .wrapping_add((level as u64) << 32)
                        .wrapping_add(i as u64 + 1),
                };
                rg.detect(g)
            })
            .collect();
        core_communities(&solutions)
    }

    fn prolong_chain(chain: &[Coarsening], coarse_solution: Partition) -> Partition {
        let mut zeta = coarse_solution;
        for contraction in chain.iter().rev() {
            zeta = contraction.prolong(&zeta);
        }
        zeta
    }
}

impl CommunityDetector for Cggc {
    fn name(&self) -> String {
        if self.iterated {
            "CGGCi".into()
        } else {
            "CGGC".into()
        }
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        let n = g.node_count();
        if n == 0 {
            return Partition::singleton(0);
        }

        let mut chain: Vec<Coarsening> = Vec::new();
        let mut current = g.clone();
        let mut best_core_q = f64::NEG_INFINITY;

        for level in 0..self.max_levels {
            let core = self.ensemble_core(&current, level);
            if core.number_of_subsets() >= current.node_count() {
                break; // consensus is all-singletons: no contraction possible
            }
            let contraction = coarsen(&current, &core);
            let coarse = contraction.coarse.clone();

            if !self.iterated {
                chain.push(contraction);
                current = coarse;
                break;
            }
            // iterated: commit a level only while the consensus clustering
            // improves on G — a degrading contraction is irreversible
            // (coarse nodes can never be split again)
            let prolonged = {
                let start = contraction.prolong(&Partition::singleton(coarse.node_count()));
                Self::prolong_chain(&chain, start)
            };
            let q = modularity_gamma(g, &prolonged, self.gamma);
            if q <= best_core_q + 1e-9 {
                break;
            }
            best_core_q = q;
            chain.push(contraction);
            current = coarse;
        }

        let mut final_rg = Rg {
            sample_size: 2,
            gamma: self.gamma,
            seed: self.seed.wrapping_mul(0x9e3779b9).wrapping_add(7),
        };
        let coarse_solution = final_rg.detect(&current);
        let mut zeta = Self::prolong_chain(&chain, coarse_solution);
        zeta.compact();
        zeta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};

    #[test]
    fn names() {
        assert_eq!(Cggc::new(4).name(), "CGGC");
        assert_eq!(Cggc::iterated(4).name(), "CGGCi");
    }

    #[test]
    fn near_optimal_on_ring_of_cliques() {
        // the RG bases can strand the odd singleton; near-optimal modularity
        // and no cross-clique merge are the robust properties
        let (g, truth) = ring_of_cliques(6, 6);
        let zeta = Cggc::new(4).detect(&g);
        let q = modularity(&g, &zeta);
        let q_truth = modularity(&g, &truth);
        assert!(q > q_truth - 0.08, "CGGC {q} vs truth {q_truth}");
        for u in g.nodes() {
            for v in g.nodes() {
                if zeta.in_same_subset(u, v) {
                    assert!(truth.in_same_subset(u, v), "cliques merged at {u},{v}");
                }
            }
        }
    }

    #[test]
    fn cggc_at_least_rg_quality() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.35), 31);
        let q_rg = modularity(&g, &Rg::new().detect(&g));
        let q_cggc = modularity(&g, &Cggc::new(4).detect(&g));
        assert!(
            q_cggc >= q_rg - 0.03,
            "CGGC ({q_cggc}) collapsed below RG ({q_rg})"
        );
    }

    #[test]
    fn iterated_at_least_one_level_quality() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.35), 32);
        let q1 = modularity(&g, &Cggc::new(3).detect(&g));
        let qi = modularity(&g, &Cggc::iterated(3).detect(&g));
        assert!(
            qi >= q1 - 0.03,
            "CGGCi ({qi}) clearly worse than CGGC ({q1})"
        );
    }

    #[test]
    fn handles_edgeless_graph() {
        let g = parcom_graph::GraphBuilder::new(4).build();
        let zeta = Cggc::new(2).detect(&g);
        assert_eq!(zeta.number_of_subsets(), 4);
    }
}
