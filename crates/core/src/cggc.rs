//! CGGC / CGGCi — Core Groups Graph Clustering ensembles over RG
//! (Ovelgönne & Geyer-Schulz, DIMACS Pareto winner; §V-E c).
//!
//! CGGC is the one-level scheme: an ensemble of RG runs produces core
//! groups (the same consensus combine as EPP), the graph is contracted and
//! the final RG solves the rest. CGGCi iterates the ensemble step — the
//! contracted graph is fed to a fresh ensemble until the consensus stops
//! improving modularity — and then applies the final algorithm. Both are
//! qualitatively at the top of the field and, like the originals, expensive.

use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use crate::combine::core_communities;
use crate::quality::modularity_gamma;
use crate::rg::Rg;
use parcom_graph::{coarsen, Coarsening, Graph, Partition};
use parcom_guard::{Budget, Termination};
use parcom_obs::{Recorder, RunReport};
use rayon::prelude::*;

/// The core-groups ensemble over RG.
#[derive(Clone, Debug)]
pub struct Cggc {
    /// Ensemble size per level.
    pub ensemble_size: usize,
    /// Iterate the ensemble step until consensus quality stalls (CGGCi).
    pub iterated: bool,
    /// Sample size of the RG base runs.
    pub rg_sample_size: usize,
    /// Resolution parameter.
    pub gamma: f64,
    /// Base RNG seed; run `i` at level `l` derives its own stream.
    pub seed: u64,
    /// Cap on ensemble iterations (CGGCi).
    pub max_levels: usize,
}

impl Cggc {
    /// One-level CGGC with the paper-style configuration.
    pub fn new(ensemble_size: usize) -> Self {
        Self {
            ensemble_size,
            iterated: false,
            rg_sample_size: 1,
            gamma: 1.0,
            seed: 1,
            max_levels: 16,
        }
    }

    /// The iterated variant CGGCi.
    pub fn iterated(ensemble_size: usize) -> Self {
        Self {
            iterated: true,
            ..Self::new(ensemble_size)
        }
    }

    /// One ensemble round: every RG member shares the caller's budget, so
    /// an expiring deadline or a cancel stops all of them within a merge
    /// interval — each returns its best dendrogram cut so far, and the
    /// consensus of degraded members is still a valid (if coarse) core
    /// grouping.
    fn ensemble_core(&self, g: &Graph, level: usize, budget: &Budget) -> Partition {
        let solutions: Vec<Partition> = (0..self.ensemble_size)
            .into_par_iter()
            .map(|i| {
                let rg = Rg {
                    sample_size: self.rg_sample_size,
                    gamma: self.gamma,
                    seed: self
                        .seed
                        .wrapping_add((level as u64) << 32)
                        .wrapping_add(i as u64 + 1),
                };
                rg.run_guarded(g, &Recorder::disabled(), budget).0
            })
            .collect();
        core_communities(&solutions)
    }

    fn prolong_chain(chain: &[Coarsening], coarse_solution: Partition) -> Partition {
        let mut zeta = coarse_solution;
        for contraction in chain.iter().rev() {
            zeta = contraction.prolong(&zeta);
        }
        zeta
    }

    /// The ensemble hierarchy under a recorder and a budget, shared by
    /// every entry point. The budget is tested at ensemble-level
    /// boundaries (each ensemble round consumes one sweep) and passed down
    /// into the RG members; on expiry the committed chain so far is
    /// finished off by the guarded final RG and prolonged — every
    /// committed contraction improved modularity on `g`, so the degraded
    /// result is a valid consensus prefix.
    fn run_guarded(
        &self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        let n = g.node_count();
        if n == 0 {
            return (Partition::singleton(0), Termination::Converged, None);
        }

        let mut chain: Vec<Coarsening> = Vec::new();
        let mut current = g.clone();
        let mut best_core_q = f64::NEG_INFINITY;
        let mut termination = Termination::Converged;
        let mut cut_phase = None;

        for level in 0..self.max_levels {
            if let Err(t) = budget.check_sweep() {
                termination = t;
                cut_phase = Some(format!("level-{level}/ensemble"));
                break;
            }
            let level_span = rec.span_fmt(format_args!("level-{level}"));
            level_span.counter("nodes", current.node_count() as u64);
            level_span.counter("edges", current.edge_count() as u64);
            let core = {
                let span = rec.span("ensemble");
                let core = self.ensemble_core(&current, level, budget);
                span.counter("members", self.ensemble_size as u64);
                span.counter("core-groups", core.number_of_subsets() as u64);
                core
            };
            // an expiry mid-ensemble degrades the members to near-singleton
            // cuts; record the cause here rather than mistaking the
            // uncontractable consensus for convergence
            if let Err(t) = budget.check() {
                termination = t;
                cut_phase = Some(format!("level-{level}/ensemble"));
                break;
            }
            if core.number_of_subsets() >= current.node_count() {
                break; // consensus is all-singletons: no contraction possible
            }
            let contraction = coarsen(&current, &core);
            let coarse = contraction.coarse.clone();

            if !self.iterated {
                chain.push(contraction);
                current = coarse;
                break;
            }
            // iterated: commit a level only while the consensus clustering
            // improves on G — a degrading contraction is irreversible
            // (coarse nodes can never be split again)
            let prolonged = {
                let start = contraction.prolong(&Partition::singleton(coarse.node_count()));
                Self::prolong_chain(&chain, start)
            };
            let q = modularity_gamma(g, &prolonged, self.gamma);
            if q <= best_core_q + 1e-9 {
                break;
            }
            best_core_q = q;
            chain.push(contraction);
            current = coarse;
        }

        let final_rg = Rg {
            sample_size: 2,
            gamma: self.gamma,
            seed: self.seed.wrapping_mul(0x9e3779b9).wrapping_add(7),
        };
        let (coarse_solution, final_term, _) = {
            let span = rec.span("final-rg");
            let out = final_rg.run_guarded(&current, rec, budget);
            span.counter("coarse-nodes", current.node_count() as u64);
            out
        };
        if !termination.interrupted() && final_term.interrupted() {
            termination = final_term;
            cut_phase = Some("final-rg".into());
        }
        let mut zeta = Self::prolong_chain(&chain, coarse_solution);
        zeta.compact();
        (zeta, termination, cut_phase)
    }
}

impl CommunityDetector for Cggc {
    fn name(&self) -> String {
        if self.iterated {
            "CGGCi".into()
        } else {
            "CGGC".into()
        }
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_guarded(g, &Recorder::disabled(), &Budget::unlimited())
            .0
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, _, _) = self.run_guarded(g, &rec, &Budget::unlimited());
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric("modularity", modularity_gamma(g, &zeta, self.gamma));
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};

    #[test]
    fn names() {
        assert_eq!(Cggc::new(4).name(), "CGGC");
        assert_eq!(Cggc::iterated(4).name(), "CGGCi");
    }

    #[test]
    fn near_optimal_on_ring_of_cliques() {
        // the RG bases can strand the odd singleton; near-optimal modularity
        // and no cross-clique merge are the robust properties
        let (g, truth) = ring_of_cliques(6, 6);
        let zeta = Cggc::new(4).detect(&g);
        let q = modularity(&g, &zeta);
        let q_truth = modularity(&g, &truth);
        assert!(q > q_truth - 0.08, "CGGC {q} vs truth {q_truth}");
        for u in g.nodes() {
            for v in g.nodes() {
                if zeta.in_same_subset(u, v) {
                    assert!(truth.in_same_subset(u, v), "cliques merged at {u},{v}");
                }
            }
        }
    }

    #[test]
    fn cggc_at_least_rg_quality() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.35), 31);
        let q_rg = modularity(&g, &Rg::new().detect(&g));
        let q_cggc = modularity(&g, &Cggc::new(4).detect(&g));
        assert!(
            q_cggc >= q_rg - 0.03,
            "CGGC ({q_cggc}) collapsed below RG ({q_rg})"
        );
    }

    #[test]
    fn iterated_at_least_one_level_quality() {
        let (g, _) = lfr(LfrParams::benchmark(600, 0.35), 32);
        let q1 = modularity(&g, &Cggc::new(3).detect(&g));
        let qi = modularity(&g, &Cggc::iterated(3).detect(&g));
        assert!(
            qi >= q1 - 0.03,
            "CGGCi ({qi}) clearly worse than CGGC ({q1})"
        );
    }

    #[test]
    fn report_has_ensemble_phases() {
        let (g, _) = ring_of_cliques(6, 6);
        let (_, report) = Cggc::new(3).detect_with_report(&g);
        let level0 = report.phase("level-0").expect("level-0 phase");
        let ensemble = level0.child("ensemble").expect("ensemble child");
        assert_eq!(ensemble.counter("members"), Some(3));
        assert!(ensemble.counter("core-groups").unwrap() > 0);
        assert!(report.phase("final-rg").is_some());
        assert!(report.metric("modularity").unwrap() > 0.5);
    }

    #[test]
    fn guarded_iteration_cap_cuts_at_ensemble_boundary() {
        let (g, _) = lfr(LfrParams::benchmark(500, 0.35), 33);
        // zero sweeps: the first ensemble round is denied, the guarded
        // final RG still produces a valid (unprolonged) partition
        let budget = Budget::unlimited().with_max_sweeps(0);
        let r = Cggc::iterated(3).detect_guarded(&g, &budget);
        assert_eq!(r.termination, Termination::IterationCap);
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate().is_ok());
        assert!(r.report.cut_phase.as_deref().unwrap().starts_with("level-"));
    }

    #[test]
    fn handles_edgeless_graph() {
        let g = parcom_graph::GraphBuilder::new(4).build();
        let zeta = Cggc::new(2).detect(&g);
        assert_eq!(zeta.number_of_subsets(), 4);
    }
}
