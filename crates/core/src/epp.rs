//! EPP — Ensemble Preprocessing (Algorithm 5).
//!
//! An ensemble of `b` cheap base algorithms (PLP instances with distinct
//! seeds) runs on the input graph; their consensus — the core communities —
//! identifies the uncontested parts of the graph, which are contracted away.
//! The stronger final algorithm (PLM or PLMR) then solves the much smaller
//! coarse graph, and the result is prolonged back. This trades a little
//! quality for a large speedup on big graphs (§III-D, Fig. 4).

use crate::algorithm::{guard_preflight, guarded_result, CommunityDetector, GuardedResult};
use crate::combine::core_communities;
use crate::moves::MoveStrategy;
use crate::plm::Plm;
use crate::plp::Plp;
use parcom_graph::{coarsen, coarsen_with, Graph, Partition};
use parcom_guard::{faultpoint, Budget, Termination};
use parcom_obs::{Recorder, RunReport};
use rayon::prelude::*;

/// A PLP base classifier with the given ensemble-member seed.
fn seeded_plp(seed: u64) -> Plp {
    let mut plp = Plp::new();
    plp.set_seed(seed);
    plp
}

/// The ensemble preprocessing scheme, generic in base and final algorithms.
///
/// # Examples
///
/// ```
/// use parcom_core::{CommunityDetector, Epp};
/// use parcom_generators::ring_of_cliques;
///
/// let (graph, _) = ring_of_cliques(6, 8);
/// let mut epp = Epp::plp_plm(4); // the paper's default EPP(4, PLP, PLM)
/// assert_eq!(epp.name(), "EPP(4,PLP,PLM)");
/// let communities = epp.detect(&graph);
/// assert_eq!(communities.number_of_subsets(), 6);
/// ```
pub struct Epp {
    /// The base classifiers; run concurrently on the input graph.
    pub bases: Vec<Box<dyn CommunityDetector + Send>>,
    /// The final algorithm, applied to the contracted graph.
    pub final_algorithm: Box<dyn CommunityDetector + Send>,
}

impl Epp {
    /// The paper's default instantiation `EPP(b, PLP, PLM)`.
    pub fn plp_plm(ensemble_size: usize) -> Self {
        Self::plp_plm_with(ensemble_size, MoveStrategy::Racy)
    }

    /// `EPP(b, PLP, PLM)` with an explicit move strategy on the PLM final
    /// (the `move=` knob forwards here; the PLP bases are unaffected).
    pub fn plp_plm_with(ensemble_size: usize, strategy: MoveStrategy) -> Self {
        Self::new(
            (0..ensemble_size)
                .map(|i| Box::new(seeded_plp(1 + i as u64)) as Box<dyn CommunityDetector + Send>)
                .collect(),
            Box::new(Plm::with_strategy(strategy)),
        )
    }

    /// `EPP(b, PLP, PLMR)` — refinement as the final algorithm (§V-D).
    pub fn plp_plmr(ensemble_size: usize) -> Self {
        Self::plp_plmr_with(ensemble_size, MoveStrategy::Racy)
    }

    /// `EPP(b, PLP, PLMR)` with an explicit move strategy on the final.
    pub fn plp_plmr_with(ensemble_size: usize, strategy: MoveStrategy) -> Self {
        Self::new(
            (0..ensemble_size)
                .map(|i| Box::new(seeded_plp(1 + i as u64)) as Box<dyn CommunityDetector + Send>)
                .collect(),
            Box::new(Plm {
                refine: true,
                move_strategy: strategy,
                ..Plm::default()
            }),
        )
    }

    /// An EPP over explicit base and final algorithms.
    pub fn new(
        bases: Vec<Box<dyn CommunityDetector + Send>>,
        final_algorithm: Box<dyn CommunityDetector + Send>,
    ) -> Self {
        assert!(!bases.is_empty(), "ensemble needs at least one base");
        Self {
            bases,
            final_algorithm,
        }
    }

    /// Ensemble size `b`.
    pub fn ensemble_size(&self) -> usize {
        self.bases.len()
    }

    /// The ensemble pipeline under a recorder and a budget, shared by
    /// every entry point. The budget is shared with every ensemble member
    /// and with the final algorithm via their own `detect_guarded`
    /// boundaries; an expiry during the ensemble degrades to the consensus
    /// of the (partial) member solutions — a valid, if conservative,
    /// partition of the input graph — and an expiry during the final phase
    /// prolongs whatever the final algorithm could finish.
    fn run_guarded(
        &mut self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        // 1. base solutions, in parallel; with an enabled recorder each
        //    member contributes its own sub-report
        let collect_reports = rec.is_enabled();
        let (base_solutions, member_term) = {
            let _span = rec.span("ensemble");
            let results: Vec<(Partition, Termination, Option<RunReport>)> = self
                .bases
                .par_iter_mut()
                .map(|base| {
                    faultpoint!("core/epp-member");
                    let r = base.detect_guarded(g, budget);
                    let report = collect_reports.then_some(r.report);
                    (r.partition, r.termination, report)
                })
                .collect();
            let mut member_term = Termination::Converged;
            let mut solutions = Vec::with_capacity(results.len());
            for (zeta, term, report) in results {
                if let Some(r) = report {
                    rec.sub_report(r);
                }
                if term.interrupted() && !member_term.interrupted() {
                    member_term = term;
                }
                solutions.push(zeta);
            }
            (solutions, member_term)
        };

        // 2. consensus core communities
        let core = {
            let span = rec.span("consensus");
            let core = core_communities(&base_solutions);
            span.counter("core-communities", core.number_of_subsets() as u64);
            core
        };

        // Expiry during the ensemble: the consensus of the partial member
        // solutions is itself a valid partition of `g` — return it instead
        // of spending more time on contraction and the final algorithm.
        if member_term.interrupted() {
            let mut zeta = core;
            zeta.compact();
            return (zeta, member_term, Some("ensemble".into()));
        }
        if let Err(t) = budget.check() {
            let mut zeta = core;
            zeta.compact();
            return (zeta, t, Some("consensus".into()));
        }

        // 3. contract (a `coarsen` span) and solve with the final algorithm
        let contraction = coarsen_with(g, &core, rec);
        let (coarse_solution, final_term, final_cut) = {
            let _span = rec.span("final");
            let r = self
                .final_algorithm
                .detect_guarded(&contraction.coarse, budget);
            let cut = r.report.cut_phase.clone();
            if collect_reports {
                rec.sub_report(r.report);
            }
            (r.partition, r.termination, cut)
        };

        // 4. prolong back to the input graph
        let mut zeta = {
            let _span = rec.span("prolong");
            contraction.prolong(&coarse_solution)
        };
        zeta.compact();
        // Postcondition: the prolonged consensus must cover the input graph
        // with a dense assignment, and every base stayed within the core —
        // i.e. the final solution cannot split a core community.
        #[cfg(any(debug_assertions, feature = "validate"))]
        {
            if zeta.len() != g.node_count() {
                panic!(
                    "EPP postcondition violated: partition covers {} of {} nodes",
                    zeta.len(),
                    g.node_count()
                );
            }
            if let Err(e) = zeta.validate_dense() {
                panic!("EPP postcondition violated: {e}");
            }
            if !core.is_refinement_of(&zeta) {
                panic!("EPP postcondition violated: final solution splits a core community");
            }
        }
        if final_term.interrupted() {
            let cut = match final_cut {
                Some(inner) => format!("final/{inner}"),
                None => "final".into(),
            };
            return (zeta, final_term, Some(cut));
        }
        (zeta, Termination::Converged, None)
    }
}

impl CommunityDetector for Epp {
    fn name(&self) -> String {
        format!(
            "EPP({},{},{})",
            self.bases.len(),
            self.bases.first().map_or_else(|| "?".into(), |b| b.name()),
            self.final_algorithm.name()
        )
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_guarded(g, &Recorder::disabled(), &Budget::unlimited())
            .0
    }

    /// Distributes distinct seeds derived from `seed` to the ensemble
    /// members (solution diversity needs distinct streams) and reseeds
    /// the final algorithm.
    fn set_seed(&mut self, seed: u64) {
        for (i, base) in self.bases.iter_mut().enumerate() {
            base.set_seed(seed.wrapping_add(1 + i as u64));
        }
        self.final_algorithm.set_seed(seed);
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        rec.counter("ensemble-size", self.bases.len() as u64);
        let (zeta, _, _) = self.run_guarded(g, &rec, &Budget::unlimited());
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric("modularity", crate::quality::modularity(g, &zeta));
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        rec.counter("ensemble-size", self.bases.len() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

/// EML — the iterated (multilevel) ensemble scheme of §III-D: after the core
/// communities are computed, the coarsened graph is fed to a *fresh*
/// ensemble, recursively, until the consensus stops improving modularity;
/// only then does the final algorithm run. The paper evaluates this scheme
/// and discards it ("the iterated scheme does not pay off in terms of
/// quality in most cases") — it is provided so that the ablation can be
/// reproduced (see the `ablations` bench).
pub struct EppIterated {
    /// Ensemble size per level.
    pub ensemble_size: usize,
    /// Cap on ensemble recursion depth.
    pub max_levels: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl EppIterated {
    /// EML with PLP bases and a PLM final, mirroring `EPP(b, PLP, PLM)`.
    pub fn new(ensemble_size: usize) -> Self {
        assert!(ensemble_size >= 1, "ensemble needs at least one base");
        Self {
            ensemble_size,
            max_levels: 16,
            seed: 1,
        }
    }
}

impl EppIterated {
    /// The iterated ensemble under a recorder and a budget. Each ensemble
    /// round consumes one sweep; the budget is shared with the PLP members
    /// and the final PLM, so expiry degrades to the consensus prefix
    /// committed so far, finished off by whatever PLM could do.
    fn run_guarded(
        &self,
        g: &Graph,
        rec: &Recorder,
        budget: &Budget,
    ) -> (Partition, Termination, Option<String>) {
        use crate::quality::modularity;
        let mut chain: Vec<parcom_graph::Coarsening> = Vec::new();
        let mut current = g.clone();
        let mut best_q = f64::NEG_INFINITY;
        let mut termination = Termination::Converged;
        let mut cut_phase = None;

        for level in 0..self.max_levels {
            if let Err(t) = budget.check_sweep() {
                termination = t;
                cut_phase = Some(format!("level-{level}/ensemble"));
                break;
            }
            let level_span = rec.span_fmt(format_args!("level-{level}"));
            level_span.counter("nodes", current.node_count() as u64);
            let bases: Vec<Partition> = (0..self.ensemble_size)
                .into_par_iter()
                .map(|i| {
                    faultpoint!("core/epp-member");
                    let mut plp = seeded_plp(self.seed + ((level as u64) << 32) + i as u64 + 1);
                    plp.detect_guarded(&current, budget).partition
                })
                .collect();
            let core = core_communities(&bases);
            if let Err(t) = budget.check() {
                termination = t;
                cut_phase = Some(format!("level-{level}/ensemble"));
                break;
            }
            if core.number_of_subsets() >= current.node_count() {
                break;
            }
            let contraction = coarsen(&current, &core);
            let coarse = contraction.coarse.clone();

            // commit the level only if the consensus clustering improves on
            // G; a degrading contraction would be irreversible (coarse
            // nodes cannot be split again)
            let mut prolonged = Partition::singleton(coarse.node_count());
            prolonged = contraction.prolong(&prolonged);
            for c in chain.iter().rev() {
                prolonged = c.prolong(&prolonged);
            }
            let q = modularity(g, &prolonged);
            if q <= best_q + 1e-9 {
                break;
            }
            best_q = q;
            chain.push(contraction);
            current = coarse;
        }

        let final_result = {
            let _span = rec.span("final");
            Plm::new().detect_guarded(&current, budget)
        };
        let mut zeta = final_result.partition;
        if !termination.interrupted() && final_result.termination.interrupted() {
            termination = final_result.termination;
            cut_phase = Some("final".into());
        }
        for c in chain.iter().rev() {
            zeta = c.prolong(&zeta);
        }
        zeta.compact();
        (zeta, termination, cut_phase)
    }
}

impl CommunityDetector for EppIterated {
    fn name(&self) -> String {
        format!("EML({},PLP,PLM)", self.ensemble_size)
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn detect(&mut self, g: &Graph) -> Partition {
        self.run_guarded(g, &Recorder::disabled(), &Budget::unlimited())
            .0
    }

    fn detect_with_report(&mut self, g: &Graph) -> (Partition, RunReport) {
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        rec.counter("ensemble-size", self.ensemble_size as u64);
        let (zeta, _, _) = self.run_guarded(g, &rec, &Budget::unlimited());
        rec.counter("communities", zeta.number_of_subsets() as u64);
        if rec.is_enabled() {
            rec.metric("modularity", crate::quality::modularity(g, &zeta));
        }
        (zeta, rec.finish(self.name()))
    }

    fn detect_guarded(&mut self, g: &Graph, budget: &Budget) -> GuardedResult {
        if let Err(early) = guard_preflight(self.name(), g, budget) {
            return early;
        }
        let rec = Recorder::from_env();
        rec.counter("nodes", g.node_count() as u64);
        rec.counter("edges", g.edge_count() as u64);
        let (zeta, termination, cut_phase) = self.run_guarded(g, &rec, budget);
        rec.counter("communities", zeta.number_of_subsets() as u64);
        guarded_result(zeta, termination, cut_phase, rec.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_generators::{lfr, ring_of_cliques, LfrParams};

    #[test]
    fn name_reflects_configuration() {
        assert_eq!(Epp::plp_plm(4).name(), "EPP(4,PLP,PLM)");
        assert_eq!(Epp::plp_plmr(2).name(), "EPP(2,PLP,PLMR)");
    }

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = ring_of_cliques(8, 8);
        let zeta = Epp::plp_plm(4).detect(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if truth.in_same_subset(u, v) {
                    assert!(zeta.in_same_subset(u, v), "clique split at {u},{v}");
                }
            }
        }
        assert!(modularity(&g, &zeta) > 0.7);
    }

    #[test]
    fn quality_between_plp_and_plm() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.4), 21);
        let q_epp = modularity(&g, &Epp::plp_plm(4).detect(&g));
        let q_plm = modularity(&g, &Plm::new().detect(&g));
        // EPP should land close to PLM (paper: slightly worse in most cases)
        assert!(
            q_epp > q_plm - 0.1,
            "EPP quality collapsed: {q_epp} vs PLM {q_plm}"
        );
    }

    #[test]
    fn improves_on_single_plp_for_noisy_graphs() {
        let (g, _) = lfr(LfrParams::benchmark(2000, 0.5), 22);
        let q_epp = modularity(&g, &Epp::plp_plm(4).detect(&g));
        let q_plp = modularity(&g, &seeded_plp(1).detect(&g));
        assert!(
            q_epp >= q_plp - 0.02,
            "EPP ({q_epp}) should improve on PLP ({q_plp})"
        );
    }

    #[test]
    fn ensemble_size_one_works() {
        let (g, _) = ring_of_cliques(5, 5);
        let zeta = Epp::plp_plm(1).detect(&g);
        assert!(modularity(&g, &zeta) > 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one base")]
    fn zero_ensemble_rejected() {
        Epp::plp_plm(0);
    }

    #[test]
    fn report_carries_member_sub_reports() {
        let (g, _) = ring_of_cliques(6, 8);
        let mut epp = Epp::plp_plm(3);
        let (_, report) = epp.detect_with_report(&g);
        // 3 ensemble members + the final algorithm
        assert_eq!(report.sub_reports.len(), 4);
        assert_eq!(
            report
                .sub_reports
                .iter()
                .filter(|r| r.algorithm == "PLP")
                .count(),
            3
        );
        assert_eq!(report.sub_reports.last().unwrap().algorithm, "PLM");
        for name in ["ensemble", "consensus", "coarsen", "final", "prolong"] {
            assert!(report.phase(name).is_some(), "missing phase {name}");
        }
        assert_eq!(report.counter("ensemble-size"), Some(3));
    }

    #[test]
    fn set_seed_diversifies_members() {
        let (g, _) = ring_of_cliques(5, 6);
        let mut epp = Epp::plp_plm(2);
        epp.set_seed(99);
        // members must not share a seed (diversity requires distinct streams)
        let zeta = epp.detect(&g);
        assert!(modularity(&g, &zeta) > 0.5);
    }

    #[test]
    fn guarded_ensemble_expiry_returns_consensus() {
        let (g, _) = lfr(LfrParams::benchmark(1000, 0.35), 24);
        // one sweep covers PLP member iteration 0; the members hit the cap
        // mid-run and EPP degrades to the consensus of their partial labels
        let budget = Budget::unlimited().with_max_sweeps(1);
        let r = Epp::plp_plm(3).detect_guarded(&g, &budget);
        assert!(r.termination.interrupted());
        assert_eq!(r.partition.len(), g.node_count());
        assert!(r.partition.validate().is_ok());
        assert!(r.report.cut_phase.is_some());
    }

    #[test]
    fn eml_name_and_quality() {
        let mut eml = EppIterated::new(3);
        assert_eq!(eml.name(), "EML(3,PLP,PLM)");
        let (g, truth) = ring_of_cliques(6, 8);
        let zeta = eml.detect(&g);
        assert!(modularity(&g, &zeta) > 0.9 * modularity(&g, &truth));
    }

    #[test]
    fn eml_comparable_to_epp() {
        // the paper found iteration does not pay off; it must at least not
        // collapse relative to one-level EPP
        let (g, _) = lfr(LfrParams::benchmark(1500, 0.4), 23);
        let q_epp = modularity(&g, &Epp::plp_plm(3).detect(&g));
        let q_eml = modularity(&g, &EppIterated::new(3).detect(&g));
        assert!(q_eml > q_epp - 0.1, "EML {q_eml} vs EPP {q_epp}");
    }
}
