//! Shared machinery for agglomerative modularity maximizers (CNM, RG).
//!
//! Both algorithms maintain the same state — per-community volumes,
//! intra-community weight, and symmetric between-community weight maps —
//! and differ only in *which* merge they execute next. [`MergeState`]
//! provides the state, Δmod scoring of a candidate merge, and merge
//! execution with neighbor-map rewiring.

use parcom_graph::hashing::FxHashMap;
use parcom_graph::{Graph, Partition, SparseWeightMap};

/// Mutable state of an agglomeration over the communities of a graph.
pub struct MergeState {
    /// ω(E).
    pub total: f64,
    /// Resolution parameter.
    pub gamma: f64,
    /// Whether a community id is still alive (not yet absorbed).
    pub active: Vec<bool>,
    /// vol(C) per community.
    pub vol: Vec<f64>,
    /// ω(C): intra-community weight per community.
    pub intra: Vec<f64>,
    /// Symmetric inter-community weight maps.
    pub between: Vec<FxHashMap<u32, f64>>,
    /// Absorption chain: `merged_into[c]` is the community that absorbed
    /// `c` (or `c` itself while alive).
    pub merged_into: Vec<u32>,
    /// Version counters for lazy invalidation of queued merge candidates.
    pub version: Vec<u64>,
    /// Number of currently active communities.
    pub active_count: usize,
}

impl MergeState {
    /// Initializes with every node of `g` as its own community.
    pub fn new(g: &Graph, gamma: f64) -> Self {
        let n = g.node_count();
        // Initial community ids are node ids — dense 0..n — so each node's
        // neighbor weights are tallied in one generation-stamped scratch
        // pass, then frozen into an exactly-sized hash map (the long-lived
        // `between` structure keeps hashing: after merges survivors hold
        // sparse subsets of an id space that never recompacts).
        let mut between: Vec<FxHashMap<u32, f64>> = Vec::with_capacity(n);
        let mut intra = vec![0.0; n];
        let mut scratch = SparseWeightMap::with_capacity(n);
        for u in g.nodes() {
            scratch.clear();
            for (v, w) in g.edges_of(u) {
                if v == u {
                    intra[u as usize] += w;
                } else {
                    scratch.add(v, w);
                }
            }
            let mut m = FxHashMap::with_capacity_and_hasher(scratch.len(), Default::default());
            m.extend(scratch.iter());
            between.push(m);
        }
        Self {
            total: g.total_edge_weight(),
            gamma,
            active: vec![true; n],
            vol: g.nodes().map(|u| g.volume(u)).collect(),
            intra,
            between,
            merged_into: (0..n as u32).collect(),
            version: vec![0; n],
            active_count: n,
        }
    }

    /// Δmod of merging active communities `a` and `b`.
    #[inline]
    pub fn delta(&self, a: u32, b: u32) -> f64 {
        let w_ab = self.between[a as usize].get(&b).copied().unwrap_or(0.0);
        w_ab / self.total
            - self.gamma * self.vol[a as usize] * self.vol[b as usize]
                / (2.0 * self.total * self.total)
    }

    /// Merges `a` and `b`; the community with the larger neighbor map
    /// survives. Returns the surviving id. Panics if either side is dead.
    pub fn merge(&mut self, a: u32, b: u32) -> u32 {
        assert!(self.active[a as usize] && self.active[b as usize] && a != b);
        let (survivor, absorbed) =
            if self.between[a as usize].len() >= self.between[b as usize].len() {
                (a, b)
            } else {
                (b, a)
            };
        let (s, o) = (survivor as usize, absorbed as usize);

        let w_so = self.between[s].remove(&absorbed).unwrap_or(0.0);
        self.intra[s] += self.intra[o] + w_so;
        self.vol[s] += self.vol[o];

        let o_neighbors = std::mem::take(&mut self.between[o]);
        for (c, w) in o_neighbors {
            if c == survivor {
                continue;
            }
            let cm = &mut self.between[c as usize];
            cm.remove(&absorbed);
            *cm.entry(survivor).or_insert(0.0) += w;
            *self.between[s].entry(c).or_insert(0.0) += w;
        }

        self.active[o] = false;
        self.merged_into[o] = survivor;
        self.version[s] += 1;
        self.version[o] += 1;
        self.active_count -= 1;
        survivor
    }

    /// Modularity of the current community structure.
    pub fn modularity(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let mut q = 0.0;
        for c in 0..self.active.len() {
            if self.active[c] {
                let vol = self.vol[c] / (2.0 * self.total);
                q += self.intra[c] / self.total - self.gamma * vol * vol;
            }
        }
        q
    }

    /// Resolves a (possibly absorbed) community id to its live
    /// representative, compressing the chain.
    pub fn find(&mut self, mut c: u32) -> u32 {
        while self.merged_into[c as usize] != c {
            let next = self.merged_into[c as usize];
            self.merged_into[c as usize] = self.merged_into[next as usize];
            c = next;
        }
        c
    }

    /// Extracts the current community assignment over the original nodes.
    pub fn to_partition(&mut self) -> Partition {
        let n = self.merged_into.len();
        let mut p = Partition::from_vec((0..n as u32).map(|v| self.find(v)).collect::<Vec<_>>());
        p.compact();
        p
    }
}

/// An f64 Δmod value with a total order, for use in `BinaryHeap`.
/// Construction asserts the value is not NaN.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedDelta(pub f64);

impl Eq for OrderedDelta {}

impl PartialOrd for OrderedDelta {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedDelta {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::modularity;
    use parcom_graph::GraphBuilder;

    fn two_triangles() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn initial_state_matches_graph() {
        let g = two_triangles();
        let s = MergeState::new(&g, 1.0);
        assert_eq!(s.active_count, 6);
        assert_eq!(s.vol[2], 3.0);
        assert_eq!(s.between[2].get(&3), Some(&1.0));
        assert!((s.modularity() - modularity(&g, &Partition::singleton(6))).abs() < 1e-12);
    }

    #[test]
    fn delta_matches_modularity_difference() {
        let g = two_triangles();
        let mut s = MergeState::new(&g, 1.0);
        let before = s.modularity();
        let predicted = s.delta(0, 1);
        s.merge(0, 1);
        let after = s.modularity();
        assert!((after - before - predicted).abs() < 1e-12);
    }

    #[test]
    fn merging_triangles_reaches_natural_partition() {
        let g = two_triangles();
        let mut s = MergeState::new(&g, 1.0);
        let a = s.merge(0, 1);
        let _ = s.merge(a, 2);
        let b = s.merge(3, 4);
        let _ = s.merge(b, 5);
        assert_eq!(s.active_count, 2);
        let p = s.to_partition();
        assert_eq!(p.number_of_subsets(), 2);
        assert!((s.modularity() - modularity(&g, &p)).abs() < 1e-12);
    }

    #[test]
    fn between_maps_stay_symmetric() {
        let g = two_triangles();
        let mut s = MergeState::new(&g, 1.0);
        let a = s.merge(1, 2);
        let live: Vec<u32> = (0..6).filter(|&c| s.active[c as usize]).collect();
        for &x in &live {
            for (&y, &w) in s.between[x as usize].iter() {
                assert!(s.active[y as usize], "dead neighbor {y} referenced");
                assert_eq!(s.between[y as usize].get(&x), Some(&w));
            }
        }
        assert!(s.between[a as usize].contains_key(&3) || s.between[3].contains_key(&a));
    }

    #[test]
    fn find_compresses_chains() {
        let g = two_triangles();
        let mut s = MergeState::new(&g, 1.0);
        let a = s.merge(0, 1);
        let b = s.merge(a, 2);
        assert_eq!(s.find(0), b);
        assert_eq!(s.find(1), b);
        assert_eq!(s.find(2), b);
    }

    #[test]
    fn ordered_delta_orders() {
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((OrderedDelta(0.1), 1));
        heap.push((OrderedDelta(0.5), 2));
        heap.push((OrderedDelta(-0.3), 3));
        assert_eq!(heap.pop().unwrap().1, 2);
        assert_eq!(heap.pop().unwrap().1, 1);
    }

    #[test]
    fn self_loops_enter_intra() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 2.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let s = MergeState::new(&g, 1.0);
        assert_eq!(s.intra[0], 2.0);
        assert_eq!(s.vol[0], 5.0);
    }
}
