//! Determinism hammering for the conflict-free move strategies (run with
//! `--features stress`): the DESIGN.md §14 contract says `Coloring` and
//! `Synchronized` produce *bit-identical* partitions at any thread count.
//! The quick regression in `tests/determinism.rs` checks 1/2/4 threads
//! once; this stress variant hammers the same property across many
//! repetitions and heavily oversubscribed pools (up to 4× the cores this
//! container has), where the shim's real OS threads interleave hardest.
//! One divergent label anywhere in the hierarchy — coloring, proposal
//! order, commit order, coarsening's segmented f64 sums — fails the run.
#![cfg(feature = "stress")]

use parcom_core::{CommunityDetector, MoveStrategy, Plm};
use parcom_generators::{barabasi_albert, lfr, LfrParams};
use parcom_graph::parallel::with_threads;

#[test]
fn oversubscribed_pools_never_change_the_partition() {
    // BA has hubs (high-degree color classes of very different sizes) and
    // LFR has planted blocks; both must hold the contract.
    let instances = [
        lfr(LfrParams::benchmark(1_500, 0.4), 21).0,
        barabasi_albert(1_500, 5, 22),
    ];
    let pools = [1usize, 2, 3, 4, 7, 8, 16];
    for (i, g) in instances.iter().enumerate() {
        for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
            let reference = with_threads(1, || Plm::with_strategy(strategy).detect(g));
            for rep in 0..5u32 {
                for &threads in &pools {
                    let zeta = with_threads(threads, || Plm::with_strategy(strategy).detect(g));
                    assert_eq!(
                        zeta.as_slice(),
                        reference.as_slice(),
                        "instance {i}, {strategy}, {threads} threads, rep {rep}"
                    );
                }
            }
        }
    }
}

#[test]
fn refinement_holds_the_contract_under_oversubscription() {
    let (g, _) = lfr(LfrParams::benchmark(1_200, 0.35), 23);
    for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
        let plmr = |threads| {
            with_threads(threads, || {
                Plm {
                    refine: true,
                    move_strategy: strategy,
                    ..Plm::default()
                }
                .detect(&g)
            })
        };
        let reference = plmr(1);
        for rep in 0..3u32 {
            for threads in [2usize, 8, 16] {
                assert_eq!(
                    plmr(threads).as_slice(),
                    reference.as_slice(),
                    "PLMR[{strategy}], {threads} threads, rep {rep}"
                );
            }
        }
    }
}
