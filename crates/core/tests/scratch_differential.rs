//! Differential property tests: every kernel decision made through the
//! generation-stamped [`SparseWeightMap`] must be *bit-identical* to the
//! same decision computed with a hash-map tally. Both kernels use
//! iteration-order-independent tie-breaks (PLP: salted-hash maximum with
//! the current label unbeatable on ties; PLM: smallest community id), so
//! the map's arbitrary order and the scratch map's first-touch order must
//! never disagree.

use parcom_core::quality::delta_modularity;
use parcom_graph::hashing::FxHashMap;
use parcom_graph::{Graph, GraphBuilder, Partition, SparseWeightMap};
use proptest::prelude::*;

/// SplitMix64 mixing — the same function PLP uses for its pseudo-random
/// tie-break (kept in sync by the `plp_decision_*` tests themselves: a
/// divergence would show up as a tie broken differently).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Strategy: a random weighted graph with up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..100u32);
        proptest::collection::vec(edge, 0..(4 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                b.add_edge(u, v, w as f64 / 10.0);
            }
            b.build()
        })
    })
}

/// Strategy: a graph plus a random (compacted) label assignment.
fn arb_graph_and_labels(max_n: usize) -> impl Strategy<Value = (Graph, Partition)> {
    arb_graph(max_n).prop_flat_map(|g| {
        let n = g.node_count();
        proptest::collection::vec(0..(n as u32 / 2 + 1), n).prop_map(move |data| {
            let mut p = Partition::from_vec(data);
            p.compact();
            (g.clone(), p)
        })
    })
}

/// PLP's dominant-label decision for `v`, tallying into the scratch map.
fn plp_decision_scratch(
    g: &Graph,
    labels: &Partition,
    v: u32,
    salt: u64,
    weight_to: &mut SparseWeightMap,
) -> u32 {
    weight_to.clear();
    for (u, w) in g.edges_of(v) {
        if u != v {
            weight_to.add(labels.subset_of(u), w);
        }
    }
    let current = labels.subset_of(v);
    let mut best = current;
    let mut best_weight = weight_to.get(current);
    let mut best_hash = u64::MAX; // current label: unbeatable on ties
    for (l, w) in weight_to.iter() {
        if w > best_weight {
            best = l;
            best_weight = w;
            best_hash = splitmix64(l as u64 ^ salt);
        } else if w == best_weight && best != current {
            let h = splitmix64(l as u64 ^ salt);
            if h > best_hash {
                best = l;
                best_hash = h;
            }
        }
    }
    best
}

/// The same decision with a hash-map tally (the pre-scratch formulation);
/// the hash map's arbitrary iteration order stands in for "any order".
fn plp_decision_fxhash(
    g: &Graph,
    labels: &Partition,
    v: u32,
    salt: u64,
    weight_to: &mut FxHashMap<u32, f64>,
) -> u32 {
    weight_to.clear();
    for (u, w) in g.edges_of(v) {
        if u != v {
            *weight_to.entry(labels.subset_of(u)).or_insert(0.0) += w;
        }
    }
    let current = labels.subset_of(v);
    let mut best = current;
    let mut best_weight = weight_to.get(&current).copied().unwrap_or(0.0);
    let mut best_hash = u64::MAX;
    for (&l, &w) in weight_to.iter() {
        if w > best_weight {
            best = l;
            best_weight = w;
            best_hash = splitmix64(l as u64 ^ salt);
        } else if w == best_weight && best != current {
            let h = splitmix64(l as u64 ^ salt);
            if h > best_hash {
                best = l;
                best_hash = h;
            }
        }
    }
    best
}

/// PLM's Δmod arg-max for `u` over the scratch tally.
fn plm_decision_scratch(
    g: &Graph,
    zeta: &Partition,
    volumes: &[f64],
    total: f64,
    u: u32,
    weight_to: &mut SparseWeightMap,
) -> (u32, f64) {
    weight_to.clear();
    for (v, w) in g.edges_of(u) {
        if v != u {
            weight_to.add(zeta.subset_of(v), w);
        }
    }
    let c = zeta.subset_of(u);
    let vol_u = g.volume(u);
    let weight_to_c = weight_to.get(c);
    let vol_c_without_u = volumes[c as usize] - vol_u;
    let mut best_delta = 0.0;
    let mut best = c;
    for (d, weight_to_d) in weight_to.iter() {
        if d == c {
            continue;
        }
        let delta = delta_modularity(
            weight_to_c,
            weight_to_d,
            vol_c_without_u,
            volumes[d as usize],
            vol_u,
            total,
            1.0,
        );
        if delta > best_delta || (delta == best_delta && best != c && d < best) {
            best_delta = delta;
            best = d;
        }
    }
    (best, best_delta)
}

/// The same arg-max over a hash-map tally.
fn plm_decision_fxhash(
    g: &Graph,
    zeta: &Partition,
    volumes: &[f64],
    total: f64,
    u: u32,
    weight_to: &mut FxHashMap<u32, f64>,
) -> (u32, f64) {
    weight_to.clear();
    for (v, w) in g.edges_of(u) {
        if v != u {
            *weight_to.entry(zeta.subset_of(v)).or_insert(0.0) += w;
        }
    }
    let c = zeta.subset_of(u);
    let vol_u = g.volume(u);
    let weight_to_c = weight_to.get(&c).copied().unwrap_or(0.0);
    let vol_c_without_u = volumes[c as usize] - vol_u;
    let mut best_delta = 0.0;
    let mut best = c;
    for (&d, &weight_to_d) in weight_to.iter() {
        if d == c {
            continue;
        }
        let delta = delta_modularity(
            weight_to_c,
            weight_to_d,
            vol_c_without_u,
            volumes[d as usize],
            vol_u,
            total,
            1.0,
        );
        if delta > best_delta || (delta == best_delta && best != c && d < best) {
            best_delta = delta;
            best = d;
        }
    }
    (best, best_delta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PLP label tally: scratch and hash tallies pick the same dominant
    /// label for every node, salt, and label assignment.
    #[test]
    fn plp_tally_decisions_match_hash_reference(
        (g, labels) in arb_graph_and_labels(50),
        salt in 0u64..u64::MAX,
    ) {
        let bound = labels.upper_bound() as usize;
        let mut scratch = SparseWeightMap::with_capacity(bound.max(1));
        let mut reference = FxHashMap::default();
        for v in g.nodes() {
            let a = plp_decision_scratch(&g, &labels, v, salt, &mut scratch);
            let b = plp_decision_fxhash(&g, &labels, v, salt, &mut reference);
            prop_assert_eq!(a, b);
        }
    }

    /// PLM Δmod arg-max: scratch and hash tallies pick the same target
    /// community with the same Δmod, bit for bit.
    #[test]
    fn plm_argmax_decisions_match_hash_reference(
        (g, zeta) in arb_graph_and_labels(50),
    ) {
        let total = g.total_edge_weight();
        if total > 0.0 {
            let k = zeta.upper_bound() as usize;
            let mut volumes = vec![0.0f64; k.max(1)];
            for u in g.nodes() {
                volumes[zeta.subset_of(u) as usize] += g.volume(u);
            }
            let mut scratch = SparseWeightMap::with_capacity(k.max(1));
            let mut reference = FxHashMap::default();
            for u in g.nodes() {
                let (ca, da) = plm_decision_scratch(&g, &zeta, &volumes, total, u, &mut scratch);
                let (cb, db) = plm_decision_fxhash(&g, &zeta, &volumes, total, u, &mut reference);
                prop_assert_eq!(ca, cb);
                prop_assert_eq!(da.to_bits(), db.to_bits());
            }
        }
    }

    /// Raw accumulation semantics: any sequence of `add`s leaves the
    /// scratch map with exactly the contents of a hash-map accumulator.
    #[test]
    fn accumulated_contents_match_hash_reference(
        ops in proptest::collection::vec((0u32..64, 1u32..100), 0..200),
    ) {
        let mut scratch = SparseWeightMap::with_capacity(64);
        let mut reference: FxHashMap<u32, f64> = FxHashMap::default();
        for &(k, w) in &ops {
            let w = w as f64 / 10.0;
            scratch.add(k, w);
            *reference.entry(k).or_insert(0.0) += w;
        }
        prop_assert_eq!(scratch.len(), reference.len());
        for (k, w) in scratch.iter() {
            let expect = reference.get(&k).copied();
            prop_assert_eq!(Some(w.to_bits()), expect.map(f64::to_bits));
        }
    }
}
