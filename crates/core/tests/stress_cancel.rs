//! Mid-run cancellation stress: a second thread fires the `CancelToken`
//! while PLM is working a Barabási–Albert graph, at a different point in
//! the run for every seed. Whatever sweep/level the cancel lands in, the
//! degraded result must be a valid dense partition with a coherent
//! termination record. Run with `--features stress` (implies `validate`,
//! so the algorithm postconditions are also checked internally).
#![cfg(feature = "stress")]

use parcom_core::{Budget, CancelToken, CommunityDetector, Plm, Termination};
use parcom_generators::barabasi_albert;
use std::thread;
use std::time::Duration;

#[test]
fn cancel_from_second_thread_mid_plm_always_degrades_cleanly() {
    let g = barabasi_albert(50_000, 6, 42);
    let mut converged = 0u32;
    let mut cancelled = 0u32;
    for seed in 0..100u64 {
        let token = CancelToken::new();
        let trigger = token.clone();
        // stagger the fire point: 0..990µs in 10µs steps, so the cancel
        // lands everywhere from preflight to deep in the level loop
        let delay = Duration::from_micros((seed % 100) * 10);
        let firer = thread::spawn(move || {
            thread::sleep(delay);
            trigger.cancel();
        });
        let budget = Budget::unlimited().with_token(token);
        let mut plm = Plm::new();
        plm.set_seed(seed);
        let r = plm.detect_guarded(&g, &budget);
        firer.join().unwrap();
        assert_eq!(r.partition.len(), g.node_count(), "seed {seed}");
        assert!(
            r.partition.validate_dense().is_ok(),
            "seed {seed}: {:?}",
            r.partition.validate_dense()
        );
        match r.termination {
            Termination::Cancelled => {
                cancelled += 1;
                assert_eq!(
                    r.report.termination.as_deref(),
                    Some("cancelled"),
                    "seed {seed}"
                );
            }
            Termination::Converged => converged += 1,
            other => panic!("seed {seed}: unexpected termination {other:?}"),
        }
    }
    // the stagger must actually exercise the abort path, not just the
    // happy path racing to completion
    assert!(
        cancelled > 0,
        "no run was ever cancelled (converged {converged})"
    );
}
