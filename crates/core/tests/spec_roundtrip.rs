//! Golden round-trip tests for the [`DetectorSpec`] wire forms.
//!
//! The spec is the single construction path for every detector (CLI and
//! parcom-serve both go through it), so its two wire forms — the compact
//! string (`plm:gamma=1.5,seed=7`) and the flat JSON object — are pinned
//! here: every registered algorithm round-trips through both with every
//! knob it accepts, and the error surface (unknown algorithm, inapplicable
//! knob, malformed value) is exact.

use parcom_core::spec::{Knob, REGISTRY};
use parcom_core::{DetectorSpec, MoveStrategy, SpecError};
use parcom_obs::json;

/// A spec exercising every knob `info` accepts, with distinctive values.
fn full_spec(name: &str) -> DetectorSpec {
    let info = parcom_core::spec::lookup(name).expect("registered");
    let mut spec = DetectorSpec::new(name).unwrap().with_seed(42);
    if info.accepts(Knob::Gamma) {
        spec = spec.with_gamma(1.5);
    }
    if info.accepts(Knob::Ensemble) {
        spec = spec.with_ensemble(3);
    }
    if info.accepts(Knob::Randomized) {
        spec = spec.with_randomized(true);
    }
    if info.accepts(Knob::Move) {
        spec = spec.with_move(MoveStrategy::Coloring);
    }
    spec
}

#[test]
fn every_algorithm_round_trips_the_string_form() {
    for info in REGISTRY {
        let spec = full_spec(info.name);
        let wire = spec.to_string();
        let back = DetectorSpec::parse(&wire)
            .unwrap_or_else(|e| panic!("{}: `{wire}` failed to re-parse: {e}", info.name));
        assert_eq!(back, spec, "{}: `{wire}` did not round-trip", info.name);
        // and the canonical form is a fixed point
        assert_eq!(back.to_string(), wire);
    }
}

#[test]
fn every_algorithm_round_trips_the_json_form() {
    for info in REGISTRY {
        let spec = full_spec(info.name);
        let wire = spec.to_json();
        let back = DetectorSpec::parse_json(&wire)
            .unwrap_or_else(|e| panic!("{}: `{wire}` failed to re-parse: {e}", info.name));
        assert_eq!(back, spec, "{}: `{wire}` did not round-trip", info.name);
        // the emitted JSON is well-formed by the obs validator too
        json::validate(&wire).unwrap();
    }
}

#[test]
fn bare_names_parse_and_build() {
    for info in REGISTRY {
        let spec = DetectorSpec::parse(info.name).unwrap();
        let detector = spec.build().unwrap();
        assert!(
            !detector.name().is_empty(),
            "{} built a nameless detector",
            info.name
        );
    }
}

#[test]
fn json_string_and_object_forms_are_interchangeable() {
    let from_string = DetectorSpec::from_json(&json::parse("\"plm:gamma=1.5,seed=7\"").unwrap());
    let from_object = DetectorSpec::from_json(
        &json::parse("{\"algo\":\"plm\",\"gamma\":1.5,\"seed\":7}").unwrap(),
    );
    assert_eq!(from_string.unwrap(), from_object.unwrap());
}

#[test]
fn golden_wire_forms() {
    // pin the exact canonical serializations; a change here is a wire
    // format break that serve clients would notice
    let spec = DetectorSpec::new("epp")
        .unwrap()
        .with_ensemble(8)
        .with_seed(3);
    assert_eq!(spec.to_string(), "epp:ensemble=8,seed=3");
    assert_eq!(
        spec.to_json(),
        "{\"algo\":\"epp\",\"ensemble\":8,\"seed\":3}"
    );
    let spec = DetectorSpec::new("plp").unwrap().with_randomized(true);
    assert_eq!(spec.to_string(), "plp:randomized=true");
    assert_eq!(spec.to_json(), "{\"algo\":\"plp\",\"randomized\":true}");
    assert_eq!(DetectorSpec::new("cnm").unwrap().to_string(), "cnm");
}

#[test]
fn move_knob_round_trips_both_wire_forms() {
    // string form, every strategy
    for (wire, strategy) in [
        ("racy", MoveStrategy::Racy),
        ("coloring", MoveStrategy::Coloring),
        ("sync", MoveStrategy::Synchronized),
    ] {
        let spec = DetectorSpec::parse(&format!("plm:move={wire},seed=7")).unwrap();
        assert_eq!(spec.move_strategy, Some(strategy));
        assert_eq!(spec.to_string(), format!("plm:move={wire},seed=7"));
    }
    // JSON form
    let spec =
        DetectorSpec::parse_json("{\"algo\":\"plm\",\"move\":\"coloring\",\"seed\":7}").unwrap();
    assert_eq!(spec.move_strategy, Some(MoveStrategy::Coloring));
    assert_eq!(
        spec.to_json(),
        "{\"algo\":\"plm\",\"move\":\"coloring\",\"seed\":7}"
    );
    // and both forms agree
    assert_eq!(
        spec,
        DetectorSpec::parse("plm:move=coloring,seed=7").unwrap()
    );
}

#[test]
fn unknown_move_value_enumerates_the_accepted_set() {
    let err = DetectorSpec::parse("plm:move=eager").err().unwrap();
    assert!(matches!(err, SpecError::BadValue { .. }), "{err:?}");
    let message = err.to_string();
    for value in ["racy", "coloring", "sync"] {
        assert!(message.contains(value), "missing {value}: {message}");
    }
}

#[test]
fn move_knob_rejected_on_non_plm_algorithms() {
    for algo in ["plp", "louvain", "cnm", "rg", "pam"] {
        let err = DetectorSpec::parse(&format!("{algo}:move=coloring"))
            .err()
            .unwrap();
        assert!(
            matches!(err, SpecError::UnknownKnob { .. }),
            "{algo}: {err:?}"
        );
    }
}

#[test]
fn epp_and_eppr_forward_the_move_strategy_to_their_final_plm() {
    let epp = DetectorSpec::parse("epp:move=coloring")
        .unwrap()
        .build()
        .unwrap();
    assert_eq!(epp.name(), "EPP(4,PLP,PLM[coloring])");
    let eppr = DetectorSpec::parse("eppr:move=sync")
        .unwrap()
        .build()
        .unwrap();
    assert_eq!(eppr.name(), "EPP(4,PLP,PLMR[sync])");
    // plm/plmr themselves carry the strategy in their names too
    assert_eq!(
        DetectorSpec::parse("plmr:move=coloring")
            .unwrap()
            .build()
            .unwrap()
            .name(),
        "PLMR[coloring]"
    );
    // default stays the racy paper behavior under the unsuffixed name
    assert_eq!(
        DetectorSpec::parse("epp").unwrap().build().unwrap().name(),
        "EPP(4,PLP,PLM)"
    );
}

#[test]
fn unknown_algorithm_error_enumerates_the_registry() {
    let err = DetectorSpec::parse("florp").err().unwrap();
    assert!(matches!(err, SpecError::UnknownAlgo { .. }));
    let message = err.to_string();
    for info in REGISTRY {
        assert!(
            message.contains(info.name),
            "missing {}: {message}",
            info.name
        );
    }
}

#[test]
fn inapplicable_knob_errors_name_the_accepted_set() {
    // gamma on a propagation algorithm
    let err = DetectorSpec::parse("plp:gamma=1.5").err().unwrap();
    assert!(matches!(err, SpecError::UnknownKnob { algo: "plp", .. }));
    let message = err.to_string();
    assert!(message.contains("randomized"), "{message}");
    assert!(message.contains("seed"), "{message}");
    // ensemble on a single-run algorithm
    let err = DetectorSpec::parse("louvain:ensemble=4").err().unwrap();
    assert!(matches!(
        err,
        SpecError::UnknownKnob {
            algo: "louvain",
            ..
        }
    ));
    // entirely unknown knob key
    let err = DetectorSpec::parse("plm:flavor=mint").err().unwrap();
    assert!(matches!(err, SpecError::UnknownKnob { algo: "plm", .. }));
}

#[test]
fn malformed_values_are_rejected_with_context() {
    assert!(matches!(
        DetectorSpec::parse("plm:gamma=spicy").err().unwrap(),
        SpecError::BadValue { .. }
    ));
    assert!(matches!(
        DetectorSpec::parse("epp:ensemble=-1").err().unwrap(),
        SpecError::BadValue { .. }
    ));
    assert!(matches!(
        DetectorSpec::parse("epp:ensemble=0").err().unwrap(),
        SpecError::BadValue { .. }
    ));
    assert!(matches!(
        DetectorSpec::parse("plm:gamma=-2").err().unwrap(),
        SpecError::BadValue { .. }
    ));
    assert!(matches!(
        DetectorSpec::parse("plm:gamma").err().unwrap(),
        SpecError::Malformed(_)
    ));
    assert!(matches!(
        DetectorSpec::parse("").err().unwrap(),
        SpecError::Malformed(_)
    ));
    assert!(matches!(
        DetectorSpec::parse_json("{\"gamma\":1.5}").err().unwrap(),
        SpecError::Malformed(_)
    ));
    assert!(matches!(
        DetectorSpec::parse_json("{\"algo\":\"plm\",\"gamma\":[1.5]}")
            .err()
            .unwrap(),
        SpecError::BadValue { .. }
    ));
}

#[test]
fn seed_is_universal_and_reaches_the_detector() {
    // every algorithm accepts seed=; randomized detectors must be
    // deterministic under it
    let (g, _) = parcom_generators::lfr(parcom_generators::LfrParams::benchmark(300, 0.4), 5);
    for info in REGISTRY {
        let spec = DetectorSpec::parse(&format!("{}:seed=11", info.name)).unwrap();
        let a = spec.build().unwrap().detect(&g);
        let b = spec.build().unwrap().detect(&g);
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "{} is not deterministic under a fixed spec seed",
            info.name
        );
    }
}
