//! Degenerate-input matrix: every detector configuration the CLI can name,
//! run through `detect_guarded` on pathological graphs — empty, a single
//! node, pure self-loops, a star, and a disconnected forest. The contract
//! is uniform: no panic, `Converged`, and a valid partition covering every
//! node.

use parcom_core::{
    Budget, Cggc, Cnm, CommunityDetector, Epp, EppIterated, Louvain, Pam, Plm, Plp, Rg, Termination,
};
use parcom_graph::{Graph, GraphBuilder};

fn configs() -> Vec<(&'static str, Box<dyn CommunityDetector + Send>)> {
    vec![
        ("plp", Box::new(Plp::new())),
        ("plm", Box::new(Plm::new())),
        (
            "plmr",
            Box::new(Plm {
                refine: true,
                ..Plm::default()
            }),
        ),
        ("epp", Box::new(Epp::plp_plm(3))),
        ("eppr", Box::new(Epp::plp_plmr(3))),
        ("eml", Box::new(EppIterated::new(3))),
        ("louvain", Box::new(Louvain::new())),
        ("pam", Box::new(Pam::new())),
        ("cel", Box::new(Pam::cel())),
        ("cnm", Box::new(Cnm::new())),
        ("rg", Box::new(Rg::new())),
        ("cggc", Box::new(Cggc::new(3))),
        ("cggci", Box::new(Cggc::iterated(3))),
    ]
}

fn degenerate_graphs() -> Vec<(&'static str, Graph)> {
    let star_edges: Vec<(u32, u32)> = (1..9u32).map(|leaf| (0, leaf)).collect();
    vec![
        ("empty", GraphBuilder::from_edges(0, &[])),
        ("single-node", GraphBuilder::from_edges(1, &[])),
        (
            "all-self-loops",
            GraphBuilder::from_edges(4, &[(0, 0), (1, 1), (2, 2), (3, 3)]),
        ),
        ("star", GraphBuilder::from_edges(9, &star_edges)),
        (
            "disconnected",
            GraphBuilder::from_edges(
                8,
                // two triangles plus two isolated nodes, no bridge anywhere
                &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
            ),
        ),
    ]
}

#[test]
fn every_detector_converges_on_every_degenerate_graph() {
    let budget = Budget::unlimited();
    for (graph_name, g) in degenerate_graphs() {
        for (algo_name, mut algo) in configs() {
            algo.set_seed(7);
            let r = algo.detect_guarded(&g, &budget);
            assert_eq!(
                r.termination,
                Termination::Converged,
                "{algo_name} on {graph_name}: {:?}",
                r.termination
            );
            assert_eq!(
                r.partition.len(),
                g.node_count(),
                "{algo_name} on {graph_name}: partition size"
            );
            assert!(
                r.partition.validate().is_ok(),
                "{algo_name} on {graph_name}: {:?}",
                r.partition.validate()
            );
            assert_eq!(
                r.report.termination.as_deref(),
                Some("converged"),
                "{algo_name} on {graph_name}: report termination"
            );
        }
    }
}

#[test]
fn guarded_rejection_of_oversized_input_is_graceful() {
    // preflight admission: a graph beyond the budget's input limits is
    // rejected before any detector state is built, uniformly
    let g = GraphBuilder::from_edges(9, &(1..9u32).map(|l| (0, l)).collect::<Vec<_>>());
    let budget = Budget::unlimited().with_input_limits(4, 1_000_000);
    for (algo_name, mut algo) in configs() {
        let r = algo.detect_guarded(&g, &budget);
        assert_eq!(
            r.termination,
            Termination::InputRejected,
            "{algo_name}: {:?}",
            r.termination
        );
        assert_eq!(r.partition.len(), g.node_count(), "{algo_name}");
        assert!(r.partition.validate().is_ok(), "{algo_name}");
    }
}
