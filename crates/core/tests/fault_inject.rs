//! Abort-path tests for the fault-injection sites as seen from the
//! detectors: a cancel planted at `core/epp-member` or
//! `graph/coarsen-merge` must degrade the guarded run to a valid partition
//! with the right termination cause, and a panic planted at any site must
//! unwind without poisoning pooled scratch or global state — the next run
//! on the same graph converges normally.
//!
//! Compiled only under `--features fault-inject`.
#![cfg(feature = "fault-inject")]

use parcom_core::{Budget, CancelToken, CommunityDetector, Epp, Plm, Termination};
use parcom_generators::{lfr, LfrParams};
use parcom_guard::fault::{serial_guard, FaultAction, FaultPlan};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn epp_member_cancel_degrades_to_member_consensus() {
    let _g = serial_guard();
    FaultPlan::clear();
    let (g, _) = lfr(LfrParams::benchmark(600, 0.3), 3);
    let token = CancelToken::new();
    FaultPlan::arm("core/epp-member", 2, FaultAction::Cancel(token.clone()));
    let budget = Budget::unlimited().with_token(token);
    let r = Epp::plp_plm(3).detect_guarded(&g, &budget);
    assert_eq!(r.termination, Termination::Cancelled);
    assert_eq!(r.partition.len(), g.node_count());
    assert!(r.partition.validate().is_ok());
    assert_eq!(r.report.cut_phase.as_deref(), Some("ensemble"));
    assert!(FaultPlan::crossings("core/epp-member") >= 2);
    FaultPlan::clear();
}

#[test]
fn epp_member_panic_unwinds_and_harness_recovers() {
    let _g = serial_guard();
    FaultPlan::clear();
    let (g, _) = lfr(LfrParams::benchmark(400, 0.35), 4);
    FaultPlan::arm("core/epp-member", 1, FaultAction::Panic);
    let mut epp = Epp::plp_plm(3);
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        epp.detect_guarded(&g, &Budget::unlimited())
    }));
    assert!(unwound.is_err());
    FaultPlan::clear();
    // no poisoned mutex, no stuck plan: a fresh ensemble converges
    let r = Epp::plp_plm(3).detect_guarded(&g, &Budget::unlimited());
    assert_eq!(r.termination, Termination::Converged);
    assert!(r.partition.validate().is_ok());
}

#[test]
fn coarsen_cancel_mid_plm_bubbles_the_current_level_up() {
    let _g = serial_guard();
    FaultPlan::clear();
    let (g, _) = lfr(LfrParams::benchmark(2000, 0.3), 5);
    let token = CancelToken::new();
    FaultPlan::arm("graph/coarsen-merge", 1, FaultAction::Cancel(token.clone()));
    let budget = Budget::unlimited().with_token(token);
    let r = Plm::new().detect_guarded(&g, &budget);
    // the cancel fires inside level 0's contraction; the next budget check
    // sees it and the level-0 assignment is prolonged up
    assert_eq!(r.termination, Termination::Cancelled);
    assert_eq!(r.partition.len(), g.node_count());
    assert!(r.partition.validate_dense().is_ok());
    assert!(r.report.cut_phase.is_some());
    assert_eq!(r.report.termination.as_deref(), Some("cancelled"));
    FaultPlan::clear();
}

#[test]
fn csr_assembly_panic_mid_plm_releases_pooled_scratch() {
    let _g = serial_guard();
    FaultPlan::clear();
    // the graph is built *before* arming, so the first crossing is the
    // coarse-graph assembly inside PLM's contraction
    let (g, _) = lfr(LfrParams::benchmark(1000, 0.3), 6);
    FaultPlan::arm("graph/csr-assembly", 1, FaultAction::Panic);
    let mut plm = Plm::new();
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        plm.detect_guarded(&g, &Budget::unlimited())
    }));
    assert!(unwound.is_err());
    FaultPlan::clear();
    // pooled scratch died with the run (no global pool to poison) and the
    // next run on the same graph converges
    let r = Plm::new().detect_guarded(&g, &Budget::unlimited());
    assert_eq!(r.termination, Termination::Converged);
    assert!(r.partition.validate_dense().is_ok());
}

#[test]
fn seeded_fault_matrix_always_yields_wellformed_results() {
    let _g = serial_guard();
    let (g, _) = lfr(LfrParams::benchmark(500, 0.35), 7);
    // a deterministic matrix over seeds: the cancel fires at a derived
    // K-th member crossing; wherever it lands, the guarded result must be
    // well-formed and the partition valid
    for seed in 0..6u64 {
        FaultPlan::clear();
        let token = CancelToken::new();
        let k = FaultPlan::derive_k(seed, "core/epp-member", 4);
        FaultPlan::arm("core/epp-member", k, FaultAction::Cancel(token.clone()));
        let budget = Budget::unlimited().with_token(token);
        let r = Epp::plp_plm(4).detect_guarded(&g, &budget);
        assert_eq!(r.partition.len(), g.node_count(), "seed {seed}");
        assert!(r.partition.validate().is_ok(), "seed {seed}");
        assert_eq!(
            r.report.termination.as_deref().unwrap(),
            r.termination.as_str(),
            "seed {seed}"
        );
    }
    FaultPlan::clear();
}
