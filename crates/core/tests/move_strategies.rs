//! Differential quality tests for the PLM move strategies (DESIGN.md §14).
//!
//! `Coloring` and `Synchronized` trade the racy move phase's wild
//! interleavings for conflict-free schedules. That changes *which* local
//! optimum each run lands in, but must not change the quality regime: on
//! seeded LFR and R-MAT instances both deterministic strategies have to
//! stay within a small modularity tolerance of the `Racy` baseline, be
//! exactly reproducible run-to-run, and degrade gracefully when a budget
//! cuts them at a class/commit boundary.

use parcom_core::quality::modularity;
use parcom_core::{Budget, CommunityDetector, MoveStrategy, Plm, Termination};
use parcom_generators::{lfr, rmat, LfrParams, RmatParams};
use parcom_graph::Graph;

/// Modularity of a fresh seeded run under `strategy`.
fn run(g: &Graph, strategy: MoveStrategy, refine: bool) -> (f64, Vec<u32>) {
    let mut plm = Plm {
        refine,
        move_strategy: strategy,
        ..Plm::default()
    };
    plm.set_seed(1);
    let zeta = plm.detect(g);
    (modularity(g, &zeta), zeta.as_slice().to_vec())
}

/// The paper's quality claim, transposed to strategies: conflict-free
/// schedules may shift the local optimum but not the quality regime.
const TOLERANCE: f64 = 0.05;

#[test]
fn deterministic_strategies_match_racy_quality_on_lfr() {
    for (n, mu, seed) in [(2_000, 0.3, 5), (1_500, 0.45, 9)] {
        let (g, _) = lfr(LfrParams::benchmark(n, mu), seed);
        let (q_racy, _) = run(&g, MoveStrategy::Racy, false);
        for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
            let (q, zeta) = run(&g, strategy, false);
            assert!(
                q >= q_racy - TOLERANCE,
                "{strategy} on LFR({n},{mu}) seed {seed}: q={q} vs racy {q_racy}"
            );
            // exactly reproducible run-to-run, not merely close
            let (q2, zeta2) = run(&g, strategy, false);
            assert_eq!(zeta, zeta2, "{strategy} not reproducible run-to-run");
            assert_eq!(q.to_bits(), q2.to_bits(), "{strategy} modularity drifts");
        }
    }
}

#[test]
fn deterministic_strategies_match_racy_quality_on_rmat() {
    // R-MAT has no planted structure, so absolute modularity is low; the
    // differential bound is what matters.
    let g = rmat(RmatParams::paper_with_edge_factor(12, 8), 3);
    let (q_racy, _) = run(&g, MoveStrategy::Racy, false);
    for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
        let (q, zeta) = run(&g, strategy, false);
        assert!(
            q >= q_racy - TOLERANCE,
            "{strategy} on R-MAT s12: q={q} vs racy {q_racy}"
        );
        let (_, zeta2) = run(&g, strategy, false);
        assert_eq!(zeta, zeta2, "{strategy} not reproducible on R-MAT");
    }
}

#[test]
fn refinement_keeps_the_differential_bound() {
    let (g, _) = lfr(LfrParams::benchmark(1_200, 0.35), 7);
    let (q_racy, _) = run(&g, MoveStrategy::Racy, true);
    for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
        let (q, _) = run(&g, strategy, true);
        assert!(
            q >= q_racy - TOLERANCE,
            "PLMR[{strategy}]: q={q} vs racy {q_racy}"
        );
    }
}

#[test]
fn budget_cuts_at_class_and_commit_boundaries_stay_valid() {
    // A sweep budget small enough to expire inside the move phase: the
    // coloring strategy must cut at a color-class boundary and the sync
    // strategy at a commit boundary, both returning a valid dense
    // partition with a budget-expired termination record.
    let (g, _) = lfr(LfrParams::benchmark(2_000, 0.4), 11);
    for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
        // the sweep counter lives inside the budget, so each run gets a
        // fresh one
        let r = Plm::with_strategy(strategy)
            .detect_guarded(&g, &Budget::unlimited().with_max_sweeps(1));
        assert_eq!(r.partition.len(), g.node_count(), "{strategy}");
        r.partition
            .validate_dense()
            .unwrap_or_else(|e| panic!("{strategy}: invalid degraded partition: {e:?}"));
        assert_eq!(
            r.termination,
            Termination::IterationCap,
            "{strategy}: sweep budget of 1 should expire mid-run"
        );
        // degraded-but-deterministic: the cut lands at the same boundary
        // every time
        let r2 = Plm::with_strategy(strategy)
            .detect_guarded(&g, &Budget::unlimited().with_max_sweeps(1));
        assert_eq!(
            r.partition.as_slice(),
            r2.partition.as_slice(),
            "{strategy}: budget cut is not deterministic"
        );
    }
}
