//! The structured result of an observed run.
//!
//! A [`RunReport`] is a tree: run-level counters/series/metrics plus one
//! [`PhaseReport`] per top-level span, each with nested children. EPP-style
//! ensemble algorithms attach one whole `RunReport` per member under
//! `sub_reports`.
//!
//! The JSON schema (`parcom-run-report/v2`) is pinned by a golden test in
//! `tests/report_schema.rs`; downstream tooling may rely on the field
//! names and nesting emitted here. v2 added the always-present
//! `termination` and `cut_phase` keys (JSON `null` when the run was not
//! guarded) recording how a budgeted run ended and which phase was cut.

use crate::json;

/// Schema identifier emitted in every serialized report.
pub const SCHEMA: &str = "parcom-run-report/v2";

/// One timed phase (span) of a run: wall time, counters, iteration series
/// and nested sub-phases.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseReport {
    /// Phase name, e.g. `"level-0"` or `"move-phase"`.
    pub name: String,
    /// Wall-clock time spent between span open and close.
    pub wall_seconds: f64,
    /// Event totals attached to this phase, in insertion order.
    pub counters: Vec<(String, u64)>,
    /// Per-iteration series attached to this phase, in insertion order.
    pub series: Vec<(String, Vec<f64>)>,
    /// Nested phases, in open order.
    pub children: Vec<PhaseReport>,
}

impl PhaseReport {
    /// The first direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&PhaseReport> {
        self.children.iter().find(|c| c.name == name)
    }

    /// The value of a counter on this phase.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A series attached to this phase.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Summed wall time of the direct children. Nesting discipline means
    /// this never exceeds `wall_seconds` (children run inside the parent).
    pub fn children_wall_seconds(&self) -> f64 {
        self.children.iter().map(|c| c.wall_seconds).sum()
    }

    /// Every phase in this subtree (self included, pre-order).
    pub fn walk(&self) -> Vec<&PhaseReport> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.walk());
        }
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        json::write_str(out, &self.name);
        out.push_str(",\"wall_seconds\":");
        json::write_f64(out, self.wall_seconds);
        out.push_str(",\"counters\":");
        write_counter_map(out, &self.counters);
        out.push_str(",\"series\":");
        write_series_map(out, &self.series);
        out.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }
}

/// The full structured record of one algorithm run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Algorithm label as used in the paper's figures (e.g. `"PLM"`).
    pub algorithm: String,
    /// Run-level event totals (e.g. input `nodes`/`edges`).
    pub counters: Vec<(String, u64)>,
    /// Run-level iteration series (e.g. PLP's Fig. 1 update counts).
    pub series: Vec<(String, Vec<f64>)>,
    /// Final scalar metrics (e.g. `modularity`).
    pub metrics: Vec<(String, f64)>,
    /// Top-level phases, in open order.
    pub phases: Vec<PhaseReport>,
    /// Reports of constituent runs (EPP ensemble members, final algorithm).
    pub sub_reports: Vec<RunReport>,
    /// How a guarded run ended (`"converged"`, `"deadline"`, ...), set by
    /// `detect_guarded`. `None` for unguarded runs; serialized as `null`.
    pub termination: Option<String>,
    /// The phase that was executing when the budget expired, when a guarded
    /// run was cut short. `None` otherwise; serialized as `null`.
    pub cut_phase: Option<String>,
}

impl RunReport {
    /// An empty report carrying only the algorithm name (what a disabled
    /// recorder produces).
    pub fn empty(algorithm: impl Into<String>) -> Self {
        Self {
            algorithm: algorithm.into(),
            ..Self::default()
        }
    }

    /// True when nothing was recorded (disabled instrumentation).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.series.is_empty()
            && self.metrics.is_empty()
            && self.phases.is_empty()
            && self.sub_reports.is_empty()
    }

    /// The first top-level phase with the given name.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The value of a run-level counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A run-level series.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// A final metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Summed wall time of the top-level phases.
    pub fn total_phase_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_seconds).sum()
    }

    /// Every phase in the report (all trees, pre-order), for assertions
    /// and ad-hoc analysis. Sub-reports are not descended into.
    pub fn all_phases(&self) -> Vec<&PhaseReport> {
        self.phases.iter().flat_map(|p| p.walk()).collect()
    }

    /// Serializes the report as one JSON object (schema
    /// [`SCHEMA`](crate::SCHEMA)).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"schema\":");
        json::write_str(out, SCHEMA);
        out.push_str(",\"algorithm\":");
        json::write_str(out, &self.algorithm);
        out.push_str(",\"counters\":");
        write_counter_map(out, &self.counters);
        out.push_str(",\"series\":");
        write_series_map(out, &self.series);
        out.push_str(",\"metrics\":{");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(out, name);
            out.push(':');
            json::write_f64(out, *v);
        }
        out.push_str("},\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            p.write_json(out);
        }
        out.push_str("],\"sub_reports\":[");
        for (i, r) in self.sub_reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.write_json(out);
        }
        out.push_str("],\"termination\":");
        write_opt_str(out, self.termination.as_deref());
        out.push_str(",\"cut_phase\":");
        write_opt_str(out, self.cut_phase.as_deref());
        out.push('}');
    }
}

fn write_opt_str(out: &mut String, s: Option<&str>) {
    match s {
        Some(s) => json::write_str(out, s),
        None => out.push_str("null"),
    }
}

fn write_counter_map(out: &mut String, counters: &[(String, u64)]) {
    out.push('{');
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push('}');
}

fn write_series_map(out: &mut String, series: &[(String, Vec<f64>)]) {
    out.push('{');
    for (i, (name, values)) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, name);
        out.push_str(":[");
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_f64(out, *v);
        }
        out.push(']');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_find_by_name() {
        let r = RunReport {
            algorithm: "X".into(),
            counters: vec![("nodes".into(), 10)],
            series: vec![("updated".into(), vec![3.0, 1.0])],
            metrics: vec![("modularity".into(), 0.5)],
            phases: vec![PhaseReport {
                name: "outer".into(),
                wall_seconds: 2.0,
                children: vec![PhaseReport {
                    name: "inner".into(),
                    wall_seconds: 1.5,
                    ..PhaseReport::default()
                }],
                ..PhaseReport::default()
            }],
            ..RunReport::default()
        };
        assert_eq!(r.counter("nodes"), Some(10));
        assert_eq!(r.series("updated"), Some(&[3.0, 1.0][..]));
        assert_eq!(r.metric("modularity"), Some(0.5));
        let outer = r.phase("outer").unwrap();
        assert_eq!(outer.child("inner").unwrap().wall_seconds, 1.5);
        assert!(outer.children_wall_seconds() <= outer.wall_seconds);
        assert_eq!(r.all_phases().len(), 2);
        assert!(!r.is_empty());
        assert!(RunReport::empty("Y").is_empty());
    }

    #[test]
    fn json_is_wellformed() {
        let r = RunReport {
            algorithm: "A\"B".into(),
            counters: vec![("c".into(), 1)],
            series: vec![("s".into(), vec![1.0, f64::NAN])],
            metrics: vec![("m".into(), 0.25)],
            phases: vec![PhaseReport {
                name: "p".into(),
                wall_seconds: 0.125,
                ..PhaseReport::default()
            }],
            sub_reports: vec![RunReport::empty("member")],
            termination: Some("deadline".into()),
            cut_phase: Some("move-phase".into()),
        };
        crate::json::validate(&r.to_json()).unwrap();
        assert!(r.to_json().contains("\"termination\":\"deadline\""));
        assert!(r.to_json().contains("\"cut_phase\":\"move-phase\""));
    }
}
