//! Sharded event counters for parallel hot loops.
//!
//! The pattern: the driver allocates one [`CounterCell`] per event kind
//! and each worker carries a [`LocalCount`] in its per-thread state (for
//! rayon, the `init` value of `for_each_init`). Workers bump the local
//! plain integer — no cache-line contention — and the total is merged
//! into the shared atomic exactly once, when the local state drops at the
//! end of the parallel region (i.e. at span close). The merge is a
//! relaxed `fetch_add`: the cell is a statistic, not a synchronization
//! point, and is only read after the parallel region has joined.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared event counter: one cache line, relaxed atomic adds.
#[derive(Debug, Default)]
pub struct CounterCell(AtomicU64);

impl CounterCell {
    /// A fresh zero counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n` events. Safe to call from any thread.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total. Only meaningful after the parallel region producing
    /// the events has joined.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-local shard of a [`CounterCell`]: accumulates into a plain
/// integer and merges into the shared cell on [`flush`](Self::flush) or
/// drop.
#[derive(Debug)]
pub struct LocalCount<'a> {
    cell: &'a CounterCell,
    pending: u64,
}

impl<'a> LocalCount<'a> {
    /// A fresh shard of `cell`.
    pub fn new(cell: &'a CounterCell) -> Self {
        Self { cell, pending: 0 }
    }

    /// Counts `n` events locally (no shared-memory traffic).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.pending += n;
    }

    /// Counts one event locally.
    #[inline]
    pub fn bump(&mut self) {
        self.pending += 1;
    }

    /// Merges the pending local total into the shared cell now.
    pub fn flush(&mut self) {
        self.cell.add(self.pending);
        self.pending = 0;
    }
}

impl Drop for LocalCount<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_counts_merge_on_drop() {
        let cell = CounterCell::new();
        {
            let mut a = LocalCount::new(&cell);
            let mut b = LocalCount::new(&cell);
            a.add(3);
            b.bump();
            b.bump();
            // nothing merged while the shards are alive
            assert_eq!(cell.get(), 0);
        }
        assert_eq!(cell.get(), 5);
    }

    #[test]
    fn explicit_flush_resets_pending() {
        let cell = CounterCell::new();
        let mut l = LocalCount::new(&cell);
        l.add(7);
        l.flush();
        assert_eq!(cell.get(), 7);
        drop(l); // second flush adds nothing
        assert_eq!(cell.get(), 7);
    }

    #[test]
    fn shards_from_many_threads() {
        let cell = CounterCell::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut l = LocalCount::new(&cell);
                    for _ in 0..1000 {
                        l.bump();
                    }
                });
            }
        });
        assert_eq!(cell.get(), 8000);
    }
}
