//! Scoped phase timers building a [`RunReport`] tree.
//!
//! A [`Recorder`] is a cheap cloneable handle (an `Option<Arc<..>>`) that
//! algorithms thread through their internal entry points. Opening a
//! [`Span`] starts a phase; dropping the guard closes it and records the
//! wall time. Spans nest: a span opened while another is open becomes its
//! child, so PLM naturally produces `level-0 → move-phase / coarsen`
//! trees. Counters and series attach to the *innermost open* span (or to
//! the run itself when no span is open).
//!
//! The disabled recorder (`Recorder::disabled()`, `PARCOM_OBS=0`, or the
//! `disabled` cargo feature) carries `None` and every operation is an
//! early-out on that discriminant — no clock reads, no allocation, no
//! locking. This is the "zero-cost when off" contract the hot loops rely
//! on.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::report::{PhaseReport, RunReport};

/// Arena index of the implicit run-level root node.
const ROOT: usize = 0;

#[derive(Debug)]
struct Node {
    name: String,
    started: Option<Instant>,
    wall_seconds: f64,
    counters: Vec<(String, u64)>,
    series: Vec<(String, Vec<f64>)>,
    children: Vec<usize>,
}

impl Node {
    fn new(name: String, started: Option<Instant>) -> Self {
        Self {
            name,
            started,
            wall_seconds: 0.0,
            counters: Vec::new(),
            series: Vec::new(),
            children: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct State {
    /// Span arena; node 0 is the implicit run-level root.
    nodes: Vec<Node>,
    /// Arena indices of currently-open spans, outermost first.
    open: Vec<usize>,
    metrics: Vec<(String, f64)>,
    sub_reports: Vec<RunReport>,
}

impl State {
    fn new() -> Self {
        Self {
            nodes: vec![Node::new(String::new(), None)],
            open: Vec::new(),
            metrics: Vec::new(),
            sub_reports: Vec::new(),
        }
    }

    fn innermost(&self) -> usize {
        self.open.last().copied().unwrap_or(ROOT)
    }

    fn add_counter(&mut self, node: usize, name: &str, n: u64) {
        let counters = &mut self.nodes[node].counters;
        match counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += n,
            None => counters.push((name.to_string(), n)),
        }
    }

    fn push_series(&mut self, node: usize, name: &str, value: f64) {
        let series = &mut self.nodes[node].series;
        match series.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => v.push(value),
            None => series.push((name.to_string(), vec![value])),
        }
    }

    fn into_phase(nodes: &mut [Node], id: usize) -> PhaseReport {
        let children: Vec<usize> = std::mem::take(&mut nodes[id].children);
        let children = children
            .into_iter()
            .map(|c| Self::into_phase(nodes, c))
            .collect();
        let node = &mut nodes[id];
        PhaseReport {
            name: std::mem::take(&mut node.name),
            wall_seconds: node.wall_seconds,
            counters: std::mem::take(&mut node.counters),
            series: std::mem::take(&mut node.series),
            children,
        }
    }
}

/// Handle used to record phases, counters, series and metrics for one run.
///
/// Cloning is cheap and clones share the same underlying report; a
/// disabled recorder makes every operation a no-op.
#[derive(Clone, Debug)]
pub struct Recorder {
    inner: Option<Arc<Mutex<State>>>,
}

impl Recorder {
    /// A recording recorder. With the `disabled` cargo feature this still
    /// returns the no-op recorder, so the feature globally kills
    /// instrumentation regardless of call sites.
    pub fn enabled() -> Self {
        if cfg!(feature = "disabled") {
            Self::disabled()
        } else {
            Self {
                inner: Some(Arc::new(Mutex::new(State::new()))),
            }
        }
    }

    /// The no-op recorder: records nothing, costs (almost) nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled recorder unless the `PARCOM_OBS` environment variable
    /// turns instrumentation off (`0`, `off`, `false`, `no`, any case).
    pub fn from_env() -> Self {
        match std::env::var("PARCOM_OBS") {
            Ok(v) if env_disables(&v) => Self::disabled(),
            _ => Self::enabled(),
        }
    }

    /// True when this recorder is actually recording. Use to skip work
    /// that only exists to feed the report (e.g. collecting sub-reports).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a phase span; the returned guard closes it on drop. A span
    /// opened while another is open becomes its child.
    pub fn span(&self, name: &str) -> Span {
        self.open_span(|| name.to_string())
    }

    /// Like [`span`](Self::span) for dynamic names (`level-{depth}`),
    /// formatting only when the recorder is enabled.
    pub fn span_fmt(&self, name: fmt::Arguments<'_>) -> Span {
        self.open_span(|| name.to_string())
    }

    fn open_span(&self, name: impl FnOnce() -> String) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                recorder: Self::disabled(),
                node: ROOT,
            };
        };
        let mut st = inner.lock().unwrap();
        let id = st.nodes.len();
        st.nodes.push(Node::new(name(), Some(Instant::now())));
        let parent = st.innermost();
        st.nodes[parent].children.push(id);
        st.open.push(id);
        Span {
            recorder: self.clone(),
            node: id,
        }
    }

    /// Adds `n` to the named counter on the innermost open span (or the
    /// run itself). Repeated calls with the same name accumulate.
    pub fn counter(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock().unwrap();
            let node = st.innermost();
            st.add_counter(node, name, n);
        }
    }

    /// Appends one value to the named series on the innermost open span
    /// (or the run itself). Useful for per-iteration measurements.
    pub fn push_series(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock().unwrap();
            let node = st.innermost();
            st.push_series(node, name, value);
        }
    }

    /// Records a run-level scalar metric (e.g. final modularity). Later
    /// values for the same name overwrite earlier ones.
    pub fn metric(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock().unwrap();
            match st.metrics.iter_mut().find(|(k, _)| k == name) {
                Some((_, v)) => *v = value,
                None => st.metrics.push((name.to_string(), value)),
            }
        }
    }

    /// Attaches the report of a constituent run (an EPP ensemble member,
    /// the final-phase algorithm) to this run.
    pub fn sub_report(&self, report: RunReport) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().sub_reports.push(report);
        }
    }

    /// Closes the recorder and produces the report. Open spans are closed
    /// as of now. Other clones of this recorder keep working but record
    /// into a tree that has already been harvested, so call this last.
    pub fn finish(self, algorithm: impl Into<String>) -> RunReport {
        let Some(inner) = self.inner else {
            return RunReport::empty(algorithm);
        };
        let mut st = inner.lock().unwrap();
        for id in std::mem::take(&mut st.open) {
            if let Some(started) = st.nodes[id].started.take() {
                st.nodes[id].wall_seconds = started.elapsed().as_secs_f64();
            }
        }
        let children: Vec<usize> = std::mem::take(&mut st.nodes[ROOT].children);
        let phases = children
            .into_iter()
            .map(|c| State::into_phase(&mut st.nodes, c))
            .collect();
        RunReport {
            algorithm: algorithm.into(),
            counters: std::mem::take(&mut st.nodes[ROOT].counters),
            series: std::mem::take(&mut st.nodes[ROOT].series),
            metrics: std::mem::take(&mut st.metrics),
            phases,
            sub_reports: std::mem::take(&mut st.sub_reports),
            termination: None,
            cut_phase: None,
        }
    }
}

impl Default for Recorder {
    /// The *disabled* recorder: instrumentation is opt-in.
    fn default() -> Self {
        Self::disabled()
    }
}

fn env_disables(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "0" | "off" | "false" | "no"
    )
}

/// Guard for an open phase; closes the phase (recording its wall time)
/// when dropped.
#[derive(Debug)]
#[must_use = "dropping the span immediately records a zero-length phase"]
pub struct Span {
    recorder: Recorder,
    node: usize,
}

impl Span {
    /// Adds `n` to the named counter on *this* span, which may no longer
    /// be the innermost one.
    pub fn counter(&self, name: &str, n: u64) {
        if let Some(inner) = &self.recorder.inner {
            inner.lock().unwrap().add_counter(self.node, name, n);
        }
    }

    /// Appends one value to the named series on *this* span.
    pub fn push_series(&self, name: &str, value: f64) {
        if let Some(inner) = &self.recorder.inner {
            inner.lock().unwrap().push_series(self.node, name, value);
        }
    }

    /// Closes the span now, before end of scope.
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.recorder.inner {
            let mut st = inner.lock().unwrap();
            if let Some(started) = st.nodes[self.node].started.take() {
                st.nodes[self.node].wall_seconds = started.elapsed().as_secs_f64();
            }
            // Un-nest: drop this span (and any children left open, which
            // keeps attachment sane even if guards drop out of order).
            if let Some(at) = st.open.iter().position(|&id| id == self.node) {
                st.open.truncate(at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_form_a_tree_and_child_wall_fits_in_parent() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = rec.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let report = rec.finish("t");
        let outer = report.phase("outer").expect("outer phase");
        let inner = outer.child("inner").expect("inner nested under outer");
        assert!(inner.wall_seconds > 0.0);
        assert!(outer.wall_seconds >= outer.children_wall_seconds());
        assert!(report.phase("inner").is_none(), "inner is not top-level");
    }

    #[test]
    fn counters_and_series_attach_to_innermost_open_span() {
        let rec = Recorder::enabled();
        rec.counter("run-level", 1);
        {
            let _phase = rec.span("phase");
            rec.counter("moves", 3);
            rec.counter("moves", 4);
            rec.push_series("updated", 10.0);
            rec.push_series("updated", 5.0);
        }
        rec.metric("modularity", 0.5);
        rec.metric("modularity", 0.75); // overwrite
        let report = rec.finish("t");
        assert_eq!(report.counter("run-level"), Some(1));
        let phase = report.phase("phase").unwrap();
        assert_eq!(phase.counter("moves"), Some(7));
        assert_eq!(phase.series("updated"), Some(&[10.0, 5.0][..]));
        assert_eq!(report.metric("modularity"), Some(0.75));
    }

    #[test]
    fn span_handle_targets_its_own_node() {
        let rec = Recorder::enabled();
        let outer = rec.span("outer");
        {
            let _inner = rec.span("inner");
            // attach to the *outer* span explicitly while inner is open
            outer.counter("direct", 2);
            outer.push_series("s", 1.0);
        }
        outer.close();
        let report = rec.finish("t");
        let outer = report.phase("outer").unwrap();
        assert_eq!(outer.counter("direct"), Some(2));
        assert_eq!(outer.series("s"), Some(&[1.0][..]));
        assert!(outer.child("inner").is_some());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let span = rec.span("phase");
            span.counter("x", 1);
            rec.counter("y", 1);
            rec.push_series("s", 1.0);
            rec.metric("m", 1.0);
            rec.sub_report(RunReport::empty("member"));
        }
        let report = rec.finish("t");
        assert_eq!(report.algorithm, "t");
        assert!(report.is_empty());
    }

    #[test]
    fn sub_reports_are_carried_through() {
        let rec = Recorder::enabled();
        rec.sub_report(RunReport::empty("m0"));
        rec.sub_report(RunReport::empty("m1"));
        let report = rec.finish("ensemble");
        assert_eq!(report.sub_reports.len(), 2);
        assert_eq!(report.sub_reports[0].algorithm, "m0");
    }

    #[test]
    fn finish_closes_still_open_spans() {
        let rec = Recorder::enabled();
        let span = rec.span("open");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let report = rec.clone().finish("t");
        assert!(report.phase("open").unwrap().wall_seconds > 0.0);
        drop(span);
    }

    #[test]
    fn env_kill_switch_values() {
        for v in ["0", "off", "FALSE", " no "] {
            assert!(env_disables(v), "{v}");
        }
        for v in ["1", "on", "", "yes"] {
            assert!(!env_disables(v), "{v}");
        }
    }

    #[test]
    fn span_fmt_builds_dynamic_names() {
        let rec = Recorder::enabled();
        for depth in 0..2 {
            let _level = rec.span_fmt(format_args!("level-{depth}"));
        }
        let report = rec.finish("t");
        assert!(report.phase("level-0").is_some());
        assert!(report.phase("level-1").is_some());
    }
}
