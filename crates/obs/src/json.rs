//! Hand-rolled JSON emission and a minimal well-formedness checker.
//!
//! The workspace is dependency-free, so report serialization cannot lean
//! on serde. The emitter covers exactly what [`crate::RunReport`] needs:
//! objects, arrays, strings with escapes, and finite numbers. The checker
//! is a recursive-descent syntax validator used by the report golden
//! tests and the CLI smoke test — it verifies *syntax* only, not schema.

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. JSON has no NaN/Infinity, so non-finite
/// values are emitted as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's default f64 Display is the shortest round-trip form and
        // always contains enough precision; integral values print without
        // a fractional part, which is still a valid JSON number.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Checks that `s` is one syntactically well-formed JSON value.
///
/// Returns the byte offset and a message on the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {}", *pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {}", *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {}", *pos)),
            },
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert!(validate(&out).is_ok());
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn validator_accepts_wellformed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\": [1, 2, {\"b\": \"x\\ny\"}], \"c\": true}",
            "  {\"k\": null}  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "{} extra",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }
}
