//! Hand-rolled JSON emission, parsing, and a well-formedness checker.
//!
//! The workspace is dependency-free, so serialization cannot lean on
//! serde. The emitter covers exactly what [`crate::RunReport`] needs:
//! objects, arrays, strings with escapes, and finite numbers. The parser
//! ([`parse`] → [`Value`]) is the request-decoding counterpart used by
//! `parcom-serve` request bodies and `DetectorSpec::parse_json`; the
//! [`validate`] checker (report golden tests, CLI smoke test) is the same
//! grammar with the value construction skipped — it verifies *syntax*
//! only, not schema.

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. JSON has no NaN/Infinity, so non-finite
/// values are emitted as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's default f64 Display is the shortest round-trip form and
        // always contains enough precision; integral values print without
        // a fractional part, which is still a valid JSON number.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
///
/// Objects are association lists in document order — the handful of keys
/// in a request body never justifies a hash map — and [`Value::get`]
/// returns the *first* occurrence of a key.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as `(key, value)` pairs in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first occurrence); `None` on non-objects and
    /// absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: the number must be
    /// integral and representable (serve ids/counters come in this way).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(v) if *v >= 0.0 && *v <= 2f64.powi(53) && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Nesting bound of [`parse`]: serve decodes untrusted request bodies, so
/// recursion depth is capped instead of trusting the input.
const MAX_DEPTH: usize = 64;

/// Parses one JSON value from `s` (surrounding whitespace allowed,
/// trailing data rejected). Returns a message with a byte offset on the
/// first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b't') => literal(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            number(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| format!("non-UTF-8 number at byte {start}"))?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| format!("unrepresentable number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {}", *pos)),
    }
}

/// Parses a string literal at `*pos`, resolving escapes (including
/// `\uXXXX` surrogate pairs).
fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    string(b, pos)?; // syntax check + end position
    let body = &b[start + 1..*pos - 1];
    let raw = std::str::from_utf8(body).map_err(|_| format!("non-UTF-8 string at byte {start}"))?;
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                fn unit(chars: &mut std::str::Chars<'_>, start: usize) -> Result<u32, String> {
                    let hex: String = chars.by_ref().take(4).collect();
                    u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape in string at byte {start}"))
                }
                let hi = unit(&mut chars, start)?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // high surrogate: a `\uXXXX` low surrogate must follow
                    if chars.next() != Some('\\') || chars.next() != Some('u') {
                        return Err(format!("lone surrogate in string at byte {start}"));
                    }
                    let lo = unit(&mut chars, start)?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(format!("lone surrogate in string at byte {start}"));
                    }
                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(format!("invalid codepoint in string at byte {start}")),
                }
            }
            _ => return Err(format!("bad escape in string at byte {start}")),
        }
    }
    Ok(out)
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    let mut pairs = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        let v = parse_value(b, pos, depth + 1)?;
        pairs.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

/// Checks that `s` is one syntactically well-formed JSON value.
///
/// Returns the byte offset and a message on the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {}", *pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {}", *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {}", *pos)),
            },
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert!(validate(&out).is_ok());
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn validator_accepts_wellformed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\": [1, 2, {\"b\": \"x\\ny\"}], \"c\": true}",
            "  {\"k\": null}  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn parses_nested_values() {
        let v = parse("{\"a\": [1, 2.5, {\"b\": \"x\\ny\"}], \"c\": true, \"d\": null}").unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert!(v.get("d").unwrap().is_null());
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.entries().unwrap().len(), 3);
    }

    #[test]
    fn parse_resolves_escapes_and_surrogates() {
        assert_eq!(
            parse("\"a\\u0041\\\\\\n\\u00e9\"").unwrap(),
            Value::String("aA\\\né".into())
        );
        // U+1F600 as a surrogate pair
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        assert!(parse("\"\\ud83d alone\"").is_err());
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(
            parse(&out).unwrap(),
            Value::String("a\"b\\c\nd\te\u{1}".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_and_bounds_depth() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1e", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn integral_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.25").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("7.25").unwrap().as_f64(), Some(7.25));
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "{} extra",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }
}
