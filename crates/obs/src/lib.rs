#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-obs — phase-level observability for the parcom workspace
//!
//! The paper's entire evaluation is built on *phase-level* measurements:
//! PLP iteration series (Fig. 1), PLM move-phase vs. coarsening vs.
//! refinement time (Figs. 1/3), per-ensemble-member cost in EPP (Fig. 4).
//! This crate is the measurement substrate those breakdowns are recorded
//! on. It is deliberately dependency-free — it sits below every other
//! workspace crate.
//!
//! Three layers:
//!
//! * [`Recorder`] / [`Span`] ([`timer`]) — scoped, nestable phase timers.
//!   A recorder builds a tree of phases as spans open and close; counters
//!   and series attach to the innermost open span.
//! * [`CounterCell`] / [`LocalCount`] ([`counters`]) — sharded event
//!   counters for parallel hot loops: each worker accumulates into a
//!   plain thread-local integer and merges it into the shared atomic cell
//!   exactly once, when the worker's local state drops at span close.
//! * [`RunReport`] / [`PhaseReport`] ([`report`]) — the structured result:
//!   algorithm name, per-phase wall time, counters, iteration series,
//!   final quality metrics and nested sub-reports (EPP ensemble members),
//!   with hand-rolled JSON serialization ([`json`], schema
//!   `parcom-run-report/v2`).
//!
//! ## Kill switches
//!
//! Instrumentation must never tax a production run that does not want it:
//!
//! * **Env:** `PARCOM_OBS=0` (also `off`/`false`/`no`) makes
//!   [`Recorder::from_env`] return the disabled recorder.
//! * **Compile time:** building this crate with the `disabled` feature
//!   makes *every* constructor return the disabled recorder, so the
//!   optimizer erases the instrumentation entirely.
//!
//! A disabled recorder records nothing: spans are no-op guards, counters
//! and series are discarded, and [`Recorder::finish`] returns an empty
//! report carrying only the algorithm name.

pub mod counters;
pub mod json;
pub mod report;
pub mod timer;

pub use counters::{CounterCell, LocalCount};
pub use report::{PhaseReport, RunReport, SCHEMA};
pub use timer::{Recorder, Span};
