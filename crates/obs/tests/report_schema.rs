//! Golden test pinning the `parcom-run-report/v2` JSON schema.
//!
//! Downstream tooling (CI smoke step, plotting scripts) parses this
//! format; any change to field names, nesting or value encoding must be
//! deliberate and bump the schema tag. v2 added the always-present
//! `termination`/`cut_phase` keys (`null` for unguarded runs).

use parcom_obs::{json, PhaseReport, Recorder, RunReport, SCHEMA};

/// A fully deterministic report exercising every field of the schema.
fn sample_report() -> RunReport {
    RunReport {
        algorithm: "PLM".into(),
        counters: vec![("nodes".into(), 100), ("edges".into(), 250)],
        series: vec![("updated".into(), vec![42.0, 7.0, 0.0])],
        metrics: vec![("modularity".into(), 0.5)],
        phases: vec![PhaseReport {
            name: "level-0".into(),
            wall_seconds: 0.25,
            counters: vec![("merges".into(), 60)],
            series: vec![],
            children: vec![PhaseReport {
                name: "move-phase".into(),
                wall_seconds: 0.125,
                counters: vec![("moves".into(), 40)],
                series: vec![],
                children: vec![],
            }],
        }],
        sub_reports: vec![RunReport {
            algorithm: "PLP".into(),
            metrics: vec![("modularity".into(), 0.375)],
            ..RunReport::default()
        }],
        termination: Some("deadline".into()),
        cut_phase: Some("move-phase".into()),
    }
}

#[test]
fn golden_json_is_pinned() {
    let expected = concat!(
        "{\"schema\":\"parcom-run-report/v2\",",
        "\"algorithm\":\"PLM\",",
        "\"counters\":{\"nodes\":100,\"edges\":250},",
        "\"series\":{\"updated\":[42,7,0]},",
        "\"metrics\":{\"modularity\":0.5},",
        "\"phases\":[",
        "{\"name\":\"level-0\",\"wall_seconds\":0.25,",
        "\"counters\":{\"merges\":60},\"series\":{},",
        "\"children\":[",
        "{\"name\":\"move-phase\",\"wall_seconds\":0.125,",
        "\"counters\":{\"moves\":40},\"series\":{},\"children\":[]}",
        "]}",
        "],",
        "\"sub_reports\":[",
        "{\"schema\":\"parcom-run-report/v2\",\"algorithm\":\"PLP\",",
        "\"counters\":{},\"series\":{},\"metrics\":{\"modularity\":0.375},",
        "\"phases\":[],\"sub_reports\":[],",
        "\"termination\":null,\"cut_phase\":null}",
        "],",
        "\"termination\":\"deadline\",\"cut_phase\":\"move-phase\"}",
    );
    let got = sample_report().to_json();
    assert_eq!(got, expected, "RunReport JSON schema drifted");
    json::validate(&got).expect("pinned JSON must be well-formed");
    assert!(got.contains(SCHEMA));
}

#[test]
fn empty_report_still_emits_every_field() {
    let got = RunReport::empty("PLP").to_json();
    assert_eq!(
        got,
        "{\"schema\":\"parcom-run-report/v2\",\"algorithm\":\"PLP\",\
         \"counters\":{},\"series\":{},\"metrics\":{},\"phases\":[],\
         \"sub_reports\":[],\"termination\":null,\"cut_phase\":null}"
    );
    json::validate(&got).unwrap();
}

#[test]
fn recorder_output_matches_schema_shape() {
    let rec = Recorder::enabled();
    {
        let _outer = rec.span("outer");
        rec.counter("moves", 3);
        let _inner = rec.span("inner");
    }
    rec.metric("modularity", 0.25);
    let json = rec.finish("X").to_json();
    json::validate(&json).unwrap();
    assert!(json.starts_with("{\"schema\":\"parcom-run-report/v2\""));
    assert!(json.contains("\"name\":\"inner\""));
    assert!(json.contains("\"termination\":null"));
}

#[test]
fn disabled_recorder_emits_the_empty_shape() {
    let rec = Recorder::disabled();
    let _span = rec.span("ignored");
    rec.counter("ignored", 1);
    let report = rec.finish("PLM");
    assert!(report.is_empty());
    assert!(report.to_json().contains("\"phases\":[]"));
}
