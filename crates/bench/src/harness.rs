//! Timing, scoring and table-formatting utilities shared by the bench
//! targets.

use parcom_core::quality::modularity;
use parcom_core::CommunityDetector;
use parcom_graph::{Graph, Partition};
use parcom_obs::RunReport;
use std::time::{Duration, Instant};

/// One algorithm run on one instance.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Algorithm label.
    pub algorithm: String,
    /// Instance name.
    pub instance: String,
    /// Wall-clock running time.
    pub time: Duration,
    /// Modularity of the solution.
    pub modularity: f64,
    /// Number of detected communities.
    pub communities: usize,
    /// Structured phase report from the run (empty when `PARCOM_OBS`
    /// disables instrumentation).
    pub report: RunReport,
}

/// Times a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs `algo` on `g` and records time, modularity and community count.
pub fn run_measured(
    algo: &mut dyn CommunityDetector,
    g: &Graph,
    instance: &str,
) -> (Partition, Measurement) {
    let name = algo.name();
    let ((zeta, report), elapsed) = time(|| algo.detect_with_report(g));
    let q = modularity(g, &zeta);
    let m = Measurement {
        algorithm: name,
        instance: instance.to_string(),
        time: elapsed,
        modularity: q,
        communities: zeta.number_of_subsets(),
        report,
    };
    (zeta, m)
}

/// Geometric mean of strictly positive values (the paper's time score,
/// §V-F). Returns NaN on empty input.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean. Returns NaN on empty input.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Edges per second of a run.
pub fn edges_per_second(edges: usize, t: Duration) -> f64 {
    edges as f64 / t.as_secs_f64().max(1e-12)
}

/// Formats a duration as seconds with millisecond resolution.
pub fn fmt_secs(t: Duration) -> String {
    format!("{:.3}", t.as_secs_f64())
}

/// Prints a row-aligned table: `header` then `rows`, column widths derived
/// from content. Also prints a machine-readable TSV block prefixed with
/// `#tsv` so EXPERIMENTS.md numbers can be regenerated mechanically.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
    // machine-readable block
    println!("#tsv {}", header.join("\t"));
    for row in rows {
        println!("#tsv {}", row.join("\t"));
    }
}

/// The paper's five "our algorithms" (Figs. 6, 9): PLP, PLM, PLMR,
/// EPP(4,PLP,PLM), EPP(4,PLP,PLMR).
pub fn our_algorithms() -> Vec<Box<dyn CommunityDetector + Send>> {
    use parcom_core::{Epp, Plm, Plp};
    vec![
        Box::new(Plp::new()),
        Box::new(Plm::new()),
        Box::new(Plm::with_refinement()),
        Box::new(Epp::plp_plm(4)),
        Box::new(Epp::plp_plmr(4)),
    ]
}

/// The competitor reimplementations (Fig. 7): Louvain, PAM (CLU_TBB-like),
/// CEL, RG, CGGC, CGGCi — the paper's §V-E set. CNM is implemented
/// (`parcom_core::Cnm`) but appears only in related work in the paper, and
/// its globally greedy heap degrades badly on scale-free hubs, so it is not
/// part of the figure registry.
pub fn competitor_algorithms() -> Vec<Box<dyn CommunityDetector + Send>> {
    use parcom_core::{Cggc, Louvain, Pam, Rg};
    vec![
        Box::new(Louvain::new()),
        Box::new(Pam::new()),
        Box::new(Pam::cel()),
        Box::new(Rg::new()),
        Box::new(Cggc::new(4)),
        Box::new(Cggc::iterated(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_core::Plp;
    use parcom_generators::ring_of_cliques;

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn arithmetic_mean_basic() {
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn run_measured_records_everything() {
        let (g, _) = ring_of_cliques(4, 5);
        let mut plp = Plp::new();
        let (zeta, m) = run_measured(&mut plp, &g, "ring");
        assert_eq!(m.algorithm, "PLP");
        assert_eq!(m.instance, "ring");
        assert_eq!(m.communities, zeta.number_of_subsets());
        assert!(m.modularity > 0.5);
        assert!(m.time.as_nanos() > 0);
        // the measurement carries the structured report of the same run
        assert_eq!(m.report.algorithm, "PLP");
        assert!(m.report.counter("communities").is_some());
    }

    #[test]
    fn registries_are_populated() {
        assert_eq!(our_algorithms().len(), 5);
        assert_eq!(competitor_algorithms().len(), 6);
    }

    #[test]
    fn edges_per_second_sane() {
        let eps = edges_per_second(1000, Duration::from_millis(100));
        assert!((eps - 10_000.0).abs() < 1.0);
    }
}
