#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-bench — the experiment harness
//!
//! One `cargo bench` target per table/figure of the paper (see DESIGN.md §3
//! for the index). This library holds what the targets share: the instance
//! suite standing in for the paper's graph corpus, the algorithm registry,
//! and timing/score utilities (including the Pareto scores of §V-F).

pub mod harness;
pub mod kernels;
pub mod suite;

pub use harness::{geometric_mean, time, Measurement};
pub use suite::{
    massive_graph, massive_quality_graph, standard_suite, weak_scaling_series, Instance,
};
