//! `baseline` — a fixed, reproducible perf baseline for the hot kernels.
//!
//! Runs PLP and PLM on two fixed generated instances (fixed seeds, fixed
//! algorithm seeds) and times one pass of the neighborhood-aggregation
//! microkernel in both formulations (hash map vs generation-stamped
//! scratch) on each graph, plus end-to-end graph ingest (METIS parse +
//! CSR build) on a ~1M-edge instance: the retained sequential reference
//! path against the chunked parallel pipeline, and a resident-vs-cold
//! serving comparison: the same detection request against a running
//! `parcom-serve` daemon holding the graph in memory versus the cold
//! parse-then-detect path a CLI invocation pays, and a move-strategy
//! comparison (racy vs coloring vs sync move phases at 1/2/4 threads, plus
//! the coloring setup cost) on both instances, and a memory-format
//! comparison (DESIGN.md §15): parallel METIS text parse vs `.pcg` binary
//! reopen on the ~1M-edge instance, plus the cache effect of degree-ordered
//! relabeling on the hot kernels (tally pass, PLP, PLM) for the skewed
//! instances, and a durability comparison (DESIGN.md §16): WAL append
//! overhead per mutation batch under both fsync policies plus warm
//! recovery (checkpoint reopen + log replay) against the cold text
//! reload. Results go to `BENCH_kernels.json` (schema
//! `parcom-bench-kernels/v6`) together with each run's structured
//! [`RunReport`]; a human-readable summary goes to stderr.
//!
//! Reproduce with:
//!
//! ```text
//! cargo run --release -p parcom-bench --bin baseline
//! cargo run --release -p parcom-bench --bin baseline -- --out target/BENCH_kernels.json
//! ```

use parcom_bench::harness::{run_measured, Measurement};
use parcom_bench::kernels::{tally_pass_fxhash, tally_pass_scratch};
use parcom_bench::time;
use parcom_core::quality::modularity;
use parcom_core::{
    move_phase_strategy, move_phase_with_coloring, CommunityDetector, MoveStrategy, Plm, Plp,
};
use parcom_generators::{barabasi_albert, lfr, rmat, LfrParams, RmatParams};
use parcom_graph::hashing::FxHashMap;
use parcom_graph::parallel::with_threads;
use parcom_graph::relabel::Relabeling;
use parcom_graph::{Coloring, Graph, Partition, SparseWeightMap};
use parcom_guard::Budget;
use parcom_obs::{json, Recorder};

/// Schema tag of the emitted JSON document.
const SCHEMA: &str = "parcom-bench-kernels/v6";
/// Seed of both instance generators and (offset by algorithm) the runs.
const SEED: u64 = 42;
/// Repetitions of each microkernel pass; the minimum is reported.
const KERNEL_REPS: usize = 3;

/// Timings of one aggregation-kernel comparison on one graph.
struct KernelTiming {
    fxhash_ms: f64,
    scratch_ms: f64,
}

/// Everything measured on one instance.
struct InstanceResult {
    name: String,
    nodes: usize,
    edges: usize,
    kernel: KernelTiming,
    runs: Vec<Measurement>,
}

/// Minimum wall time of `reps` executions, in milliseconds.
fn min_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, t) = time(&mut f);
        best = best.min(t.as_secs_f64() * 1e3);
    }
    best
}

/// Times one tally + arg-max pass in both formulations, asserting they
/// choose identical labels (singleton labels: worst case for hashing).
fn kernel_timing(g: &Graph) -> KernelTiming {
    let labels: Vec<u32> = g.nodes().collect();
    let mut h = FxHashMap::default();
    let mut s = SparseWeightMap::with_capacity(g.node_count());
    assert_eq!(
        tally_pass_fxhash(g, &labels, &mut h),
        tally_pass_scratch(g, &labels, &mut s),
        "hash and scratch formulations diverged"
    );
    KernelTiming {
        fxhash_ms: min_ms(KERNEL_REPS, || tally_pass_fxhash(g, &labels, &mut h)),
        scratch_ms: min_ms(KERNEL_REPS, || tally_pass_scratch(g, &labels, &mut s)),
    }
}

fn measure_instance(name: &str, g: &Graph) -> InstanceResult {
    eprintln!(
        "[baseline] {name}: n={} m={}",
        g.node_count(),
        g.edge_count()
    );
    let kernel = kernel_timing(g);
    eprintln!(
        "[baseline]   kernel tally: fxhash {:.3} ms, scratch {:.3} ms ({:.2}x)",
        kernel.fxhash_ms,
        kernel.scratch_ms,
        kernel.fxhash_ms / kernel.scratch_ms.max(1e-9)
    );
    let mut algorithms: Vec<Box<dyn CommunityDetector>> =
        vec![Box::new(Plp::new()), Box::new(Plm::new())];
    let mut runs = Vec::new();
    for algo in &mut algorithms {
        algo.set_seed(1);
        let (_, m) = run_measured(algo.as_mut(), g, name);
        eprintln!(
            "[baseline]   {}: {:.3} s, modularity {:.4}, {} communities",
            m.algorithm,
            m.time.as_secs_f64(),
            m.modularity,
            m.communities
        );
        runs.push(m);
    }
    InstanceResult {
        name: name.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        kernel,
        runs,
    }
}

/// End-to-end ingest comparison on one ~1M-edge METIS buffer.
struct IngestResult {
    name: String,
    nodes: usize,
    edges: usize,
    bytes: usize,
    /// Retained pre-parallel path: `String` per line + sequential assembly.
    seq_ms: f64,
    /// Chunked byte parser + parallel CSR build, end to end.
    par_ms: f64,
    /// Parse-phase share of the parallel path (from `ingest/parse`).
    par_parse_ms: f64,
    /// Build-phase share of the parallel path (from `ingest/build`).
    par_build_ms: f64,
}

/// Measures METIS ingest (parse + CSR build) on a ~1M-edge BA graph:
/// the retained sequential reference against the chunked pipeline, plus
/// the parallel path's parse/build phase split via the recorded reader.
fn measure_ingest(name: &str, g: &Graph, buf: &[u8]) -> IngestResult {
    use parcom_io::metis::{read_metis_bytes, read_metis_recorded, read_metis_seq};

    eprintln!(
        "[baseline] ingest {name}: n={} m={} ({} MiB)",
        g.node_count(),
        g.edge_count(),
        buf.len() >> 20
    );

    // sanity: both paths produce the same graph before timing them
    let a = read_metis_seq(buf).expect("sequential ingest failed");
    let b = read_metis_bytes(buf).expect("parallel ingest failed");
    assert_eq!(a.edge_count(), b.edge_count(), "ingest paths diverged");

    let seq_ms = min_ms(KERNEL_REPS, || read_metis_seq(buf).unwrap());
    let par_ms = min_ms(KERNEL_REPS, || read_metis_bytes(buf).unwrap());

    // phase split of the parallel path via the recorded entry point
    let path = std::env::temp_dir().join("parcom_baseline_ingest.metis");
    std::fs::write(&path, buf).expect("writing the ingest temp file failed");
    let (mut par_parse_ms, mut par_build_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..KERNEL_REPS {
        let rec = Recorder::enabled();
        read_metis_recorded(&path, &rec).unwrap();
        let report = rec.finish("ingest");
        let phase_ms = |name: &str| report.phase(name).map_or(0.0, |p| p.wall_seconds * 1e3);
        par_parse_ms = par_parse_ms.min(phase_ms("ingest/parse"));
        par_build_ms = par_build_ms.min(phase_ms("ingest/build"));
    }
    std::fs::remove_file(&path).ok();

    eprintln!(
        "[baseline]   ingest: seq {seq_ms:.1} ms, parallel {par_ms:.1} ms ({:.2}x; parse {par_parse_ms:.1} + build {par_build_ms:.1})",
        seq_ms / par_ms.max(1e-9)
    );
    IngestResult {
        name: name.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        bytes: buf.len(),
        seq_ms,
        par_ms,
        par_parse_ms,
        par_build_ms,
    }
}

/// Resident-vs-cold serving comparison on the ingest instance.
struct ServeResult {
    name: String,
    nodes: usize,
    edges: usize,
    spec: String,
    /// One-time cost of loading the graph into the daemon (inline METIS
    /// upload: HTTP + budgeted parse + CSR build + store insert).
    load_ms: f64,
    /// Detection request against the resident graph: HTTP round-trip +
    /// detection, no parse.
    resident_ms: f64,
    /// What a cold CLI invocation pays for the same detection: METIS parse
    /// + CSR build + detection.
    cold_ms: f64,
}

/// One HTTP exchange against the bench daemon; panics on transport errors
/// (the daemon is local and owned by this process).
fn daemon_request(
    stream: &mut std::net::TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    use std::io::{Read, Write};
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("daemon request write failed");
    // responses are either Content-Length or chunked framed; read the head
    // first, then exactly the framed body
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16384];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream
            .read(&mut chunk)
            .expect("daemon response read failed");
        assert!(n > 0, "daemon closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("bad status line");
    let mut rest = buf[head_end + 4..].to_vec();
    let head_lower = head.to_ascii_lowercase();
    let body = if head_lower.contains("transfer-encoding: chunked") {
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        loop {
            let line_end = loop {
                if let Some(p) = rest[pos..].windows(2).position(|w| w == b"\r\n") {
                    break pos + p;
                }
                let n = stream.read(&mut chunk).expect("daemon chunk read failed");
                assert!(n > 0, "daemon closed mid-chunk");
                rest.extend_from_slice(&chunk[..n]);
            };
            let size = usize::from_str_radix(
                std::str::from_utf8(&rest[pos..line_end]).unwrap().trim(),
                16,
            )
            .expect("bad chunk size");
            let data_start = line_end + 2;
            while rest.len() < data_start + size + 2 {
                let n = stream.read(&mut chunk).expect("daemon chunk read failed");
                assert!(n > 0, "daemon closed mid-chunk");
                rest.extend_from_slice(&chunk[..n]);
            }
            if size == 0 {
                break;
            }
            decoded.extend_from_slice(&rest[data_start..data_start + size]);
            pos = data_start + size + 2;
        }
        decoded
    } else {
        let length: usize = head_lower
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("response without framing");
        while rest.len() < length {
            let n = stream.read(&mut chunk).expect("daemon body read failed");
            assert!(n > 0, "daemon closed mid-body");
            rest.extend_from_slice(&chunk[..n]);
        }
        rest.truncate(length);
        rest
    };
    (status, String::from_utf8(body).unwrap())
}

/// Measures resident serving against cold parse-then-detect on the ingest
/// instance: the daemon runs in-process on a loopback TCP port, the cold
/// path replays exactly what a CLI invocation does (parse the METIS bytes,
/// build the CSR, detect).
fn measure_serve(name: &str, g: &Graph, metis: &[u8]) -> ServeResult {
    use parcom_core::DetectorSpec;
    use parcom_io::metis::read_metis_bytes;
    use parcom_serve::{ServeConfig, Server};

    // PLP is the paper's high-throughput detector — the regime where the
    // parse actually dominates a cold invocation and residency pays
    let spec = "plp:seed=1";
    let server = Server::bind(ServeConfig {
        addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .expect("binding the bench daemon failed");
    let addr = server.local_tcp_addr().expect("daemon has no TCP address");
    std::thread::spawn(move || server.run());
    let mut stream = std::net::TcpStream::connect(addr).expect("connecting to the daemon failed");
    stream
        .set_nodelay(true)
        .expect("setting TCP_NODELAY failed");

    // one-time load: inline METIS upload
    let mut load_body = String::from("{\"content\":");
    json::write_str(&mut load_body, std::str::from_utf8(metis).unwrap());
    load_body.push('}');
    let ((load_status, _), t) =
        time(|| daemon_request(&mut stream, "PUT", &format!("/graphs/{name}"), &load_body));
    assert_eq!(load_status, 201, "bench graph upload failed");
    let load_ms = t.as_secs_f64() * 1e3;

    // resident detections: HTTP + detect, no parse
    let detect_body = format!("{{\"graph\":\"{name}\",\"spec\":\"{spec}\"}}");
    let (first_status, first_body) = daemon_request(&mut stream, "POST", "/detect", &detect_body);
    assert_eq!(first_status, 200, "resident detect failed: {first_body}");
    assert!(
        first_body.contains("\"termination\":\"converged\""),
        "resident detect did not converge: {first_body}"
    );
    let resident_ms = min_ms(KERNEL_REPS, || {
        daemon_request(&mut stream, "POST", "/detect", &detect_body)
    });

    // cold path: parse + build + detect, as `parcom detect` would
    let cold_ms = min_ms(KERNEL_REPS, || {
        let g = read_metis_bytes(metis).expect("cold parse failed");
        DetectorSpec::parse(spec)
            .expect("bench spec invalid")
            .build()
            .expect("bench spec build failed")
            .detect(&g)
    });

    eprintln!(
        "[baseline]   serve: load {load_ms:.1} ms once, resident {resident_ms:.1} ms/req vs cold {cold_ms:.1} ms/req ({:.2}x)",
        cold_ms / resident_ms.max(1e-9)
    );
    ServeResult {
        name: name.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        spec: spec.to_string(),
        load_ms,
        resident_ms,
        cold_ms,
    }
}

/// Memory-format comparison on the ingest instance (DESIGN.md §15):
/// parallel METIS text parse vs `.pcg` binary reopen, from files in both
/// cases, plus the size and relabeling-apply cost of the binary artifact.
struct MemoryFormatResult {
    name: String,
    nodes: usize,
    edges: usize,
    metis_bytes: usize,
    pcg_bytes: usize,
    /// Parallel METIS path: `fs::read` + chunked parse + CSR build.
    text_parse_ms: f64,
    /// Binary path: `fs::read` (or mmap) + checksum + cast, zero parsing.
    binary_reopen_ms: f64,
    /// One-time cost of computing + applying the degree ordering.
    relabel_apply_ms: f64,
    /// Hot-kernel timings on the original vs relabeled views.
    kernels: Vec<RelabelKernel>,
}

/// One kernel timed on the original and the degree-ordered view.
struct RelabelKernel {
    instance: String,
    kernel: String,
    original_ms: f64,
    relabeled_ms: f64,
}

/// Times the hot kernels on a graph and its degree-ordered view: one
/// tally + arg-max pass (the PLP/PLM inner loop, scratch formulation) and
/// the end-to-end PLP and PLM runs. The relabeled runs traverse the same
/// edges in hub-first order, so any delta is pure cache effect for the
/// tally pass; the end-to-end runs additionally see order-dependent sweep
/// counts (DESIGN.md §15) and are recorded for honesty, not asserted.
fn relabel_kernels(name: &str, g: &Graph, out: &mut Vec<RelabelKernel>) {
    let r = Relabeling::degree_ordered(g);
    let h = r.apply(g);
    let time_tally = |g: &Graph| {
        let labels: Vec<u32> = g.nodes().collect();
        let mut s = SparseWeightMap::with_capacity(g.node_count());
        min_ms(KERNEL_REPS, || tally_pass_scratch(g, &labels, &mut s))
    };
    let time_detector = |mk: &dyn Fn() -> Box<dyn CommunityDetector>, g: &Graph| {
        min_ms(KERNEL_REPS, || {
            let mut algo = mk();
            algo.set_seed(1);
            algo.detect(g)
        })
    };
    let kernels: [(&str, f64, f64); 3] = [
        ("tally_scratch", time_tally(g), time_tally(&h)),
        (
            "plp",
            time_detector(&|| Box::new(Plp::new()), g),
            time_detector(&|| Box::new(Plp::new()), &h),
        ),
        (
            "plm",
            time_detector(&|| Box::new(Plm::new()), g),
            time_detector(&|| Box::new(Plm::new()), &h),
        ),
    ];
    for (kernel, original_ms, relabeled_ms) in kernels {
        eprintln!(
            "[baseline]   relabel[{name}/{kernel}]: original {original_ms:.1} ms, relabeled {relabeled_ms:.1} ms ({:.2}x)",
            original_ms / relabeled_ms.max(1e-9)
        );
        out.push(RelabelKernel {
            instance: name.to_string(),
            kernel: kernel.to_string(),
            original_ms,
            relabeled_ms,
        });
    }
}

/// Measures the memory-format comparison on the ingest instance: both
/// formats are loaded from real files (page-cache warm, same as repeated
/// analysis sessions), so the binary number is the `.pcg` promise — admit,
/// checksum, cast, no parse.
fn measure_memory_format(name: &str, g: &Graph, metis: &[u8]) -> MemoryFormatResult {
    use parcom_io::metis::read_metis_bytes;

    let dir = std::env::temp_dir();
    let metis_path = dir.join("parcom_baseline_fmt.metis");
    let pcg_path = dir.join("parcom_baseline_fmt.pcg");
    std::fs::write(&metis_path, metis).expect("writing the METIS temp file failed");

    let relabel_apply_ms = min_ms(KERNEL_REPS, || {
        let r = Relabeling::degree_ordered(g);
        r.apply(g)
    });
    let r = Relabeling::degree_ordered(g);
    let h = r.apply(g);
    parcom_io::write_pcg(&h, Some(&r), &pcg_path).expect("writing the .pcg temp file failed");
    let pcg_bytes = std::fs::metadata(&pcg_path)
        .expect("stat of the .pcg temp file failed")
        .len() as usize;

    // sanity: the reread binary view matches the in-memory one
    let reread =
        parcom_io::read_pcg_budgeted(&pcg_path, &Recorder::disabled(), &Budget::unlimited())
            .expect("binary reopen failed");
    assert_eq!(
        reread.graph.edge_count(),
        g.edge_count(),
        "binary roundtrip diverged"
    );

    let text_parse_ms = min_ms(KERNEL_REPS, || {
        let buf = std::fs::read(&metis_path).expect("metis read failed");
        read_metis_bytes(&buf).expect("metis parse failed")
    });
    let binary_reopen_ms = min_ms(KERNEL_REPS, || {
        parcom_io::read_pcg_budgeted(&pcg_path, &Recorder::disabled(), &Budget::unlimited())
            .expect("binary reopen failed")
    });
    std::fs::remove_file(&metis_path).ok();
    std::fs::remove_file(&pcg_path).ok();

    eprintln!(
        "[baseline]   format: text parse {text_parse_ms:.1} ms vs binary reopen {binary_reopen_ms:.2} ms ({:.1}x; {} -> {} bytes, relabel apply {relabel_apply_ms:.1} ms)",
        text_parse_ms / binary_reopen_ms.max(1e-9),
        metis.len(),
        pcg_bytes
    );
    MemoryFormatResult {
        name: name.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        metis_bytes: metis.len(),
        pcg_bytes,
        text_parse_ms,
        binary_reopen_ms,
        relabel_apply_ms,
        kernels: Vec::new(),
    }
}

/// Durability costs on the ingest instance (DESIGN.md §16): the WAL
/// append overhead a mutation batch pays before it is acknowledged, under
/// both fsync policies, and the warm-restart recovery time (checkpoint
/// reopen + log replay) against the cold text reload a volatile daemon
/// pays after losing its memory.
struct DurabilityResult {
    name: String,
    nodes: usize,
    edges: usize,
    /// Operations per appended batch.
    batch_ops: usize,
    /// Batches appended (= WAL records replayed by recovery).
    batches: usize,
    /// Mean per-batch append cost with `--fsync always` (the default).
    wal_append_always_ms: f64,
    /// Mean per-batch append cost with `--fsync never`.
    wal_append_never_ms: f64,
    /// Warm restart: reopen the `.pcg` checkpoint + replay the log tail.
    recovery_ms: f64,
    /// Cold restart: reread + reparse the METIS text.
    cold_reload_ms: f64,
}

fn measure_durability(name: &str, g: &Graph, metis: &[u8]) -> DurabilityResult {
    use parcom_serve::persist::Durability;
    use parcom_serve::store::{EdgeOp, GraphEntry, GraphStore};
    use parcom_serve::wal::FsyncPolicy;

    const BATCH_OPS: usize = 256;
    const BATCHES: usize = 64;

    let n = g.node_count() as u64;
    let batch = |b: usize| -> Vec<EdgeOp> {
        (0..BATCH_OPS)
            .map(|i| {
                let k = (b * BATCH_OPS + i) as u64;
                let u = (k.wrapping_mul(2_654_435_761) % n) as u32;
                let v = ((k.wrapping_mul(40_503) + 1) % n) as u32;
                EdgeOp::Insert(u.min(v), u.max(v) + 1, 1.0 + (k % 7) as f64)
            })
            .collect()
    };

    // One daemon-equivalent state directory per fsync policy; the append
    // loop is what a daemon does between a batch's arrival and its ack.
    let mut append_ms = [0.0f64; 2];
    let mut warm_dir = None;
    for (slot, policy) in [(0, FsyncPolicy::Always), (1, FsyncPolicy::Never)] {
        let dir = std::env::temp_dir().join(format!(
            "parcom_baseline_dur_{}_{}",
            std::process::id(),
            policy.as_str()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let durability = Durability::open(&dir, policy).expect("opening the state dir failed");
        let mut entry = GraphEntry::new(g.clone(), None);
        durability
            .persist_new(name, &mut entry)
            .expect("persisting the bench graph failed");
        let (_, t) = time(|| {
            for b in 0..BATCHES {
                entry
                    .commit_ops(batch(b))
                    .expect("WAL append failed in the bench loop");
            }
        });
        append_ms[slot] = t.as_secs_f64() * 1e3 / BATCHES as f64;
        if policy == FsyncPolicy::Always {
            warm_dir = Some(dir); // recovery is measured on the synced dir
        } else {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    let warm_dir = warm_dir.expect("always-policy dir missing");

    // Warm restart: exactly what `Server::run` does before turning ready.
    let recovery_ms = min_ms(KERNEL_REPS, || {
        let store = GraphStore::new();
        let durability =
            Durability::open(&warm_dir, FsyncPolicy::Always).expect("reopening state dir failed");
        let report = durability.recover(&store).expect("recovery failed");
        assert_eq!(report.graphs, 1, "bench graph did not recover");
        assert_eq!(report.records_replayed, BATCHES, "wrong replay count");
        assert_eq!(report.warm, 1, "recovery should take the warm path");
    });

    // Cold restart: the text path a stateless daemon pays to reload.
    let metis_path =
        std::env::temp_dir().join(format!("parcom_baseline_dur_{}.metis", std::process::id()));
    std::fs::write(&metis_path, metis).expect("writing the METIS temp file failed");
    let cold_reload_ms = min_ms(KERNEL_REPS, || {
        let buf = std::fs::read(&metis_path).expect("metis read failed");
        parcom_io::metis::read_metis_bytes(&buf).expect("metis parse failed")
    });
    std::fs::remove_file(&metis_path).ok();
    std::fs::remove_dir_all(&warm_dir).ok();

    eprintln!(
        "[baseline]   durability: append {:.3} ms/batch synced ({:.3} ms unsynced, {BATCH_OPS} ops), warm recovery {recovery_ms:.1} ms vs cold reload {cold_reload_ms:.1} ms ({:.1}x)",
        append_ms[0],
        append_ms[1],
        cold_reload_ms / recovery_ms.max(1e-9)
    );
    DurabilityResult {
        name: name.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        batch_ops: BATCH_OPS,
        batches: BATCHES,
        wal_append_always_ms: append_ms[0],
        wal_append_never_ms: append_ms[1],
        recovery_ms,
        cold_reload_ms,
    }
}

/// One move strategy's timings on one instance (DESIGN.md §14).
struct StrategyResult {
    instance: String,
    strategy: MoveStrategy,
    /// `(thread_count, move_phase_ms)` pairs: one move phase from
    /// singletons, 4 sweeps, minimum of [`KERNEL_REPS`] runs.
    threads: Vec<(usize, f64)>,
    /// One-time coloring setup cost (coloring strategy only, else 0).
    setup_ms: f64,
    /// End-to-end PLM modularity under this strategy, for the
    /// quality-parity record next to the timings.
    modularity: f64,
}

/// Times the three move-phase strategies on one instance at 1/2/4-thread
/// pools (this container may have fewer cores — oversubscribed pools still
/// exercise the schedule, so the timings are honest for the box they ran
/// on), plus the coloring strategy's per-level setup cost.
fn measure_move_strategies(name: &str, g: &Graph) -> Vec<StrategyResult> {
    let mut results = Vec::new();
    for strategy in [
        MoveStrategy::Racy,
        MoveStrategy::Coloring,
        MoveStrategy::Synchronized,
    ] {
        // The coloring is per-level setup PLM amortizes over every sweep
        // of the level (move + refinement), so it is timed apart from the
        // per-sweep move work.
        let coloring = (strategy == MoveStrategy::Coloring).then(|| Coloring::compute(g));
        let setup_ms = if strategy == MoveStrategy::Coloring {
            min_ms(KERNEL_REPS, || Coloring::compute(g))
        } else {
            0.0
        };
        let threads: Vec<(usize, f64)> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                let ms = min_ms(KERNEL_REPS, || {
                    with_threads(t, || {
                        let mut p = Partition::singleton(g.node_count());
                        match &coloring {
                            Some(c) => move_phase_with_coloring(g, &mut p, 1.0, 4, c),
                            None => move_phase_strategy(g, &mut p, 1.0, 4, strategy),
                        }
                    })
                });
                (t, ms)
            })
            .collect();
        let mut plm = Plm::with_strategy(strategy);
        plm.set_seed(1);
        let q = modularity(g, &plm.detect(g));
        let per_thread = threads
            .iter()
            .map(|(t, ms)| format!("t{t} {ms:.1} ms"))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "[baseline]   move[{strategy}]: {per_thread}{}; plm modularity {q:.4}",
            if setup_ms > 0.0 {
                format!(" (+ coloring setup {setup_ms:.1} ms)")
            } else {
                String::new()
            }
        );
        results.push(StrategyResult {
            instance: name.to_string(),
            strategy,
            threads,
            setup_ms,
            modularity: q,
        });
    }
    results
}

fn write_durability(out: &mut String, r: &DurabilityResult) {
    out.push_str("{\"name\":");
    json::write_str(out, &r.name);
    out.push_str(&format!(
        ",\"nodes\":{},\"edges\":{},\"batch_ops\":{},\"batches\":{}",
        r.nodes, r.edges, r.batch_ops, r.batches
    ));
    out.push_str(",\"wal_append_always_ms\":");
    json::write_f64(out, r.wal_append_always_ms);
    out.push_str(",\"wal_append_never_ms\":");
    json::write_f64(out, r.wal_append_never_ms);
    out.push_str(",\"recovery_ms\":");
    json::write_f64(out, r.recovery_ms);
    out.push_str(",\"cold_reload_ms\":");
    json::write_f64(out, r.cold_reload_ms);
    out.push_str(",\"warm_speedup\":");
    json::write_f64(out, r.cold_reload_ms / r.recovery_ms.max(1e-9));
    out.push('}');
}

fn write_strategy(out: &mut String, r: &StrategyResult) {
    out.push_str("{\"instance\":");
    json::write_str(out, &r.instance);
    out.push_str(",\"strategy\":");
    json::write_str(out, r.strategy.wire_name());
    out.push_str(&format!(
        ",\"deterministic\":{}",
        r.strategy.is_deterministic()
    ));
    out.push_str(",\"setup_ms\":");
    json::write_f64(out, r.setup_ms);
    out.push_str(",\"modularity\":");
    json::write_f64(out, r.modularity);
    out.push_str(",\"threads\":[");
    for (i, (t, ms)) in r.threads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"threads\":{t},\"move_ms\":"));
        json::write_f64(out, *ms);
        out.push('}');
    }
    out.push_str("]}");
}

fn write_serve(out: &mut String, r: &ServeResult) {
    out.push_str("{\"name\":");
    json::write_str(out, &r.name);
    out.push_str(&format!(",\"nodes\":{},\"edges\":{}", r.nodes, r.edges));
    out.push_str(",\"spec\":");
    json::write_str(out, &r.spec);
    out.push_str(",\"load_ms\":");
    json::write_f64(out, r.load_ms);
    out.push_str(",\"resident_ms\":");
    json::write_f64(out, r.resident_ms);
    out.push_str(",\"cold_ms\":");
    json::write_f64(out, r.cold_ms);
    out.push_str(",\"speedup\":");
    json::write_f64(out, r.cold_ms / r.resident_ms.max(1e-9));
    out.push('}');
}

fn write_ingest(out: &mut String, r: &IngestResult) {
    out.push_str("{\"name\":");
    json::write_str(out, &r.name);
    out.push_str(&format!(
        ",\"nodes\":{},\"edges\":{},\"bytes\":{}",
        r.nodes, r.edges, r.bytes
    ));
    out.push_str(",\"seq_ms\":");
    json::write_f64(out, r.seq_ms);
    out.push_str(",\"par_ms\":");
    json::write_f64(out, r.par_ms);
    out.push_str(",\"par_parse_ms\":");
    json::write_f64(out, r.par_parse_ms);
    out.push_str(",\"par_build_ms\":");
    json::write_f64(out, r.par_build_ms);
    out.push_str(",\"speedup\":");
    json::write_f64(out, r.seq_ms / r.par_ms.max(1e-9));
    out.push('}');
}

fn write_memory_format(out: &mut String, r: &MemoryFormatResult) {
    out.push_str("{\"name\":");
    json::write_str(out, &r.name);
    out.push_str(&format!(
        ",\"nodes\":{},\"edges\":{},\"metis_bytes\":{},\"pcg_bytes\":{}",
        r.nodes, r.edges, r.metis_bytes, r.pcg_bytes
    ));
    out.push_str(",\"text_parse_ms\":");
    json::write_f64(out, r.text_parse_ms);
    out.push_str(",\"binary_reopen_ms\":");
    json::write_f64(out, r.binary_reopen_ms);
    out.push_str(",\"reopen_speedup\":");
    json::write_f64(out, r.text_parse_ms / r.binary_reopen_ms.max(1e-9));
    out.push_str(",\"relabel_apply_ms\":");
    json::write_f64(out, r.relabel_apply_ms);
    out.push_str(",\"kernels\":[");
    for (i, k) in r.kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"instance\":");
        json::write_str(out, &k.instance);
        out.push_str(",\"kernel\":");
        json::write_str(out, &k.kernel);
        out.push_str(",\"original_ms\":");
        json::write_f64(out, k.original_ms);
        out.push_str(",\"relabeled_ms\":");
        json::write_f64(out, k.relabeled_ms);
        out.push_str(",\"speedup\":");
        json::write_f64(out, k.original_ms / k.relabeled_ms.max(1e-9));
        out.push('}');
    }
    out.push_str("]}");
}

fn write_instance(out: &mut String, r: &InstanceResult) {
    out.push_str("{\"name\":");
    json::write_str(out, &r.name);
    out.push_str(&format!(",\"nodes\":{},\"edges\":{}", r.nodes, r.edges));
    out.push_str(",\"kernel\":{\"fxhash_ms\":");
    json::write_f64(out, r.kernel.fxhash_ms);
    out.push_str(",\"scratch_ms\":");
    json::write_f64(out, r.kernel.scratch_ms);
    out.push_str(",\"speedup\":");
    json::write_f64(out, r.kernel.fxhash_ms / r.kernel.scratch_ms.max(1e-9));
    out.push_str("},\"runs\":[");
    for (i, m) in r.runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"algorithm\":");
        json::write_str(out, &m.algorithm);
        out.push_str(",\"seconds\":");
        json::write_f64(out, m.time.as_secs_f64());
        out.push_str(",\"modularity\":");
        json::write_f64(out, m.modularity);
        out.push_str(&format!(",\"communities\":{}", m.communities));
        out.push_str(",\"report\":");
        out.push_str(&m.report.to_json());
        out.push('}');
    }
    out.push_str("]}");
}

fn main() {
    let mut out_path = String::from("BENCH_kernels.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().expect("--out requires a path argument");
            }
            other => {
                eprintln!("usage: baseline [--out <path>]");
                panic!("unrecognized argument `{other}`");
            }
        }
    }

    // Two fixed instances bracketing the paper's corpus: a planted-community
    // LFR graph and a skewed-degree R-MAT graph (scale 15, edge factor 16).
    let (lfr_graph, _) = lfr(LfrParams::benchmark(20_000, 0.3), SEED);
    let rmat_graph = rmat(RmatParams::paper_with_edge_factor(15, 16), SEED);
    let results = [
        measure_instance("lfr_20k_mu03", &lfr_graph),
        measure_instance("rmat_s15_ef16", &rmat_graph),
    ];
    // the ~1M-edge BA instance feeds both the ingest comparison and the
    // resident-vs-cold serving comparison
    let ba_name = "ba_65k_a16_metis";
    let ba_graph = barabasi_albert(65_000, 16, SEED);
    let mut ba_metis: Vec<u8> = Vec::new();
    parcom_io::write_metis_to(&ba_graph, &mut ba_metis)
        .expect("rendering the ingest instance failed");
    let ingest = measure_ingest(ba_name, &ba_graph, &ba_metis);
    let serve = measure_serve(ba_name, &ba_graph, &ba_metis);
    let durability = measure_durability(ba_name, &ba_graph, &ba_metis);
    let mut memory_format = measure_memory_format(ba_name, &ba_graph, &ba_metis);
    relabel_kernels(ba_name, &ba_graph, &mut memory_format.kernels);
    relabel_kernels("rmat_s15_ef16", &rmat_graph, &mut memory_format.kernels);
    let mut strategies = measure_move_strategies("lfr_20k_mu03", &lfr_graph);
    strategies.extend(measure_move_strategies("rmat_s15_ef16", &rmat_graph));

    let mut doc = String::with_capacity(4096);
    doc.push_str("{\"schema\":");
    json::write_str(&mut doc, SCHEMA);
    doc.push_str(&format!(",\"seed\":{SEED},\"instances\":["));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        write_instance(&mut doc, r);
    }
    doc.push_str("],\"ingest\":");
    write_ingest(&mut doc, &ingest);
    doc.push_str(",\"serve\":");
    write_serve(&mut doc, &serve);
    doc.push_str(",\"durability\":");
    write_durability(&mut doc, &durability);
    doc.push_str(",\"memory_format\":");
    write_memory_format(&mut doc, &memory_format);
    doc.push_str(",\"move_strategy\":[");
    for (i, r) in strategies.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        write_strategy(&mut doc, r);
    }
    doc.push_str("]}");
    if let Err(e) = json::validate(&doc) {
        panic!("emitted malformed JSON: {e}");
    }
    std::fs::write(&out_path, &doc).expect("writing the baseline report failed");
    eprintln!("[baseline] wrote {out_path}");
}
