//! The benchmark instance suite.
//!
//! The paper's corpus (Table I) is a set of real-world graphs up to 3.3 B
//! edges. Those data sets are not redistributable or tractable here, so each
//! is mirrored by a synthetic stand-in of the same structural category at
//! reduced scale (DESIGN.md §2 documents the substitution argument). Names,
//! ordering and category mix follow Table I.

use parcom_generators as gen;
use parcom_graph::{Graph, Partition};

/// A benchmark instance: a named generator with a fixed seed.
pub struct Instance {
    /// Short name used in result tables.
    pub name: &'static str,
    /// The Table I graph this stands in for.
    pub paper_counterpart: &'static str,
    /// Structural category (web, social, topology, …).
    pub category: &'static str,
    builder: fn() -> (Graph, Option<Partition>),
}

impl Instance {
    /// Generates the graph (and ground truth, where the model plants one).
    pub fn build(&self) -> (Graph, Option<Partition>) {
        (self.builder)()
    }

    /// Generates only the graph.
    pub fn graph(&self) -> Graph {
        self.build().0
    }
}

fn ws_power() -> (Graph, Option<Partition>) {
    (gen::watts_strogatz(4_941, 2, 0.05, 101), None)
}

fn ba_pgp() -> (Graph, Option<Partition>) {
    (gen::barabasi_albert(10_680, 2, 102), None)
}

fn ba_as22() -> (Graph, Option<Partition>) {
    (gen::barabasi_albert(22_963, 2, 103), None)
}

fn planted_gnp() -> (Graph, Option<Partition>) {
    let (g, t) = gen::planted_partition(
        gen::PlantedPartitionParams {
            n: 20_000,
            k: 20,
            p_in: 0.005,
            p_out: 0.00025,
        },
        104,
    );
    (g, Some(t))
}

fn ba_caida() -> (Graph, Option<Partition>) {
    (gen::barabasi_albert(19_224, 3, 105), None)
}

fn lfr_coauthors() -> (Graph, Option<Partition>) {
    let (g, t) = gen::lfr(gen::LfrParams::benchmark(22_732, 0.2), 106);
    (g, Some(t))
}

/// Heavy-tailed LFR: power-law degrees with a high cutoff, mirroring the
/// hub structure *and* the strong community structure of real web graphs
/// and internet topologies (pure R-MAT has hubs but no communities, which
/// only matches `kron_g500` — see DESIGN.md §2.1).
fn lfr_heavy_tail(n: usize, mu: f64, seed: u64) -> (Graph, Option<Partition>) {
    let (g, t) = gen::lfr(
        gen::LfrParams {
            n,
            mu,
            degree_exponent: 2.2,
            min_degree: 5,
            max_degree: 300,
            community_exponent: 1.3,
            min_community: 20,
            max_community: 500,
        },
        seed,
    );
    (g, Some(t))
}

fn rmat_skitter() -> (Graph, Option<Partition>) {
    lfr_heavy_tail(25_000, 0.35, 107)
}

fn lfr_copapers() -> (Graph, Option<Partition>) {
    let (g, t) = gen::lfr(gen::LfrParams::benchmark(15_000, 0.1), 108);
    (g, Some(t))
}

fn rmat_eu() -> (Graph, Option<Partition>) {
    lfr_heavy_tail(20_000, 0.2, 109)
}

fn lfr_livejournal() -> (Graph, Option<Partition>) {
    let (g, t) = gen::lfr(gen::LfrParams::benchmark(30_000, 0.4), 110);
    (g, Some(t))
}

fn grid_osm() -> (Graph, Option<Partition>) {
    (gen::grid2d(160, 200), None)
}

fn rmat_kron() -> (Graph, Option<Partition>) {
    (
        gen::rmat(gen::RmatParams::paper_with_edge_factor(13, 24), 112),
        None,
    )
}

fn rmat_uk2002() -> (Graph, Option<Partition>) {
    lfr_heavy_tail(40_000, 0.25, 113)
}

/// The 13-instance main suite mirroring Table I (ascending size, like the
/// paper's bar charts).
pub fn standard_suite() -> Vec<Instance> {
    vec![
        Instance {
            name: "power-ws",
            paper_counterpart: "power",
            category: "power grid",
            builder: ws_power,
        },
        Instance {
            name: "pgp-ba",
            paper_counterpart: "PGPgiantcompo",
            category: "social / web of trust",
            builder: ba_pgp,
        },
        Instance {
            name: "as22-ba",
            paper_counterpart: "as-22july06",
            category: "internet topology",
            builder: ba_as22,
        },
        Instance {
            name: "gnp-planted",
            paper_counterpart: "G_n_pin_pout",
            category: "synthetic planted",
            builder: planted_gnp,
        },
        Instance {
            name: "caida-ba",
            paper_counterpart: "caidaRouterLevel",
            category: "internet topology",
            builder: ba_caida,
        },
        Instance {
            name: "coauthors-lfr",
            paper_counterpart: "coAuthorsCiteseer",
            category: "coauthorship",
            builder: lfr_coauthors,
        },
        Instance {
            name: "skitter-lfr",
            paper_counterpart: "as-Skitter",
            category: "internet topology",
            builder: rmat_skitter,
        },
        Instance {
            name: "copapers-lfr",
            paper_counterpart: "coPapersDBLP",
            category: "coauthorship",
            builder: lfr_copapers,
        },
        Instance {
            name: "eu-lfr",
            paper_counterpart: "eu-2005",
            category: "web graph",
            builder: rmat_eu,
        },
        Instance {
            name: "livejournal-lfr",
            paper_counterpart: "soc-LiveJournal",
            category: "social network",
            builder: lfr_livejournal,
        },
        Instance {
            name: "osm-grid",
            paper_counterpart: "europe-osm",
            category: "street network",
            builder: grid_osm,
        },
        Instance {
            name: "kron-rmat",
            paper_counterpart: "kron_g500-simple-logn20",
            category: "synthetic Kronecker",
            builder: rmat_kron,
        },
        Instance {
            name: "uk2002-lfr",
            paper_counterpart: "uk-2002",
            category: "web graph",
            builder: rmat_uk2002,
        },
    ]
}

/// The "one more massive network" (§V-H): the uk-2007-05 stand-in. Figs. 2
/// and 3 (strong scaling; speed only) call this with `(16, 16)`+ (~1 M+
/// edges here vs the paper's 3.3 B).
pub fn massive_graph(scale: u32, edge_factor: usize) -> Graph {
    gen::rmat(
        gen::RmatParams::paper_with_edge_factor(scale, edge_factor),
        900,
    )
}

/// The massive instance for Fig. 9, where solution *quality* is compared:
/// a heavy-tailed LFR web-graph stand-in (R-MAT would have no community
/// structure to find).
pub fn massive_quality_graph(n: usize) -> (Graph, Partition) {
    let (g, t) = lfr_heavy_tail(n, 0.35, 901);
    (g, t.unwrap())
}

/// The weak-scaling Kronecker series of Fig. 10: the paper uses
/// `log n = 16..22` with edge factor 48, doubling threads alongside; here
/// the scales are shifted down to fit the host but keep the doubling
/// structure. Returns `(scale, graph)` pairs.
pub fn weak_scaling_series(base_scale: u32, steps: usize, edge_factor: usize) -> Vec<(u32, Graph)> {
    (0..steps)
        .map(|i| {
            let scale = base_scale + i as u32;
            (
                scale,
                gen::rmat(
                    gen::RmatParams::paper_with_edge_factor(scale, edge_factor),
                    500 + i as u64,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_thirteen_instances() {
        assert_eq!(standard_suite().len(), 13);
    }

    #[test]
    fn suite_names_are_unique() {
        let suite = standard_suite();
        let mut names: Vec<_> = suite.iter().map(|i| i.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn smallest_instance_builds() {
        let suite = standard_suite();
        let (g, _) = suite[0].build();
        assert_eq!(g.node_count(), 4_941);
        assert!(g.edge_count() > 9_000);
    }

    #[test]
    fn planted_instance_has_ground_truth() {
        let suite = standard_suite();
        let inst = suite.iter().find(|i| i.name == "gnp-planted").unwrap();
        let (g, truth) = inst.build();
        let truth = truth.expect("planted model must return ground truth");
        assert_eq!(truth.len(), g.node_count());
        assert_eq!(truth.number_of_subsets(), 20);
    }

    #[test]
    fn weak_scaling_series_doubles() {
        let series = weak_scaling_series(8, 3, 8);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1.node_count() * 2, series[1].1.node_count());
        assert_eq!(series[1].1.node_count() * 2, series[2].1.node_count());
    }
}
