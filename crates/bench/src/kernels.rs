//! The neighborhood-aggregation microkernel in its two formulations —
//! hash-map tally vs the generation-stamped [`SparseWeightMap`] scratch —
//! shared by the `kernels` criterion bench and the `baseline` binary so
//! both measure exactly the same code.
//!
//! One "pass" visits every node, tallies edge weight per neighbor
//! community (skipping self-loops, as every move kernel does), then takes
//! the arg-max label with smallest-id tie-break. The returned checksum
//! keeps the optimizer honest and lets callers assert both formulations
//! make identical decisions.

use parcom_graph::hashing::FxHashMap;
use parcom_graph::{Graph, SparseWeightMap};

/// One full tally + arg-max pass over every node with a hash-map scratch;
/// returns a checksum over the chosen labels.
pub fn tally_pass_fxhash(g: &Graph, labels: &[u32], weight_to: &mut FxHashMap<u32, f64>) -> u64 {
    let mut acc = 0u64;
    for u in g.nodes() {
        weight_to.clear();
        for (v, w) in g.edges_of(u) {
            if v != u {
                *weight_to.entry(labels[v as usize]).or_insert(0.0) += w;
            }
        }
        let mut best = u32::MAX;
        let mut best_w = f64::NEG_INFINITY;
        for (&d, &w) in weight_to.iter() {
            if w > best_w || (w == best_w && d < best) {
                best_w = w;
                best = d;
            }
        }
        acc = acc.wrapping_add(best as u64);
    }
    acc
}

/// The same pass with the generation-stamped scratch map. `weight_to`
/// must have capacity for every label in `labels`.
pub fn tally_pass_scratch(g: &Graph, labels: &[u32], weight_to: &mut SparseWeightMap) -> u64 {
    let mut acc = 0u64;
    for u in g.nodes() {
        weight_to.clear();
        for (v, w) in g.edges_of(u) {
            if v != u {
                weight_to.add(labels[v as usize], w);
            }
        }
        let mut best = u32::MAX;
        let mut best_w = f64::NEG_INFINITY;
        for (d, w) in weight_to.iter() {
            if w > best_w || (w == best_w && d < best) {
                best_w = w;
                best = d;
            }
        }
        acc = acc.wrapping_add(best as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_generators::ring_of_cliques;

    #[test]
    fn formulations_agree_on_checksum() {
        let (g, truth) = ring_of_cliques(6, 5);
        let singleton: Vec<u32> = g.nodes().collect();
        let mut h = FxHashMap::default();
        let mut s = SparseWeightMap::with_capacity(g.node_count());
        assert_eq!(
            tally_pass_fxhash(&g, &singleton, &mut h),
            tally_pass_scratch(&g, &singleton, &mut s),
        );
        assert_eq!(
            tally_pass_fxhash(&g, truth.as_slice(), &mut h),
            tally_pass_scratch(&g, truth.as_slice(), &mut s),
        );
    }

    #[test]
    fn converged_labels_pick_own_community() {
        // with truth labels every node's arg-max is its own clique
        let (g, truth) = ring_of_cliques(4, 4);
        let mut s = SparseWeightMap::with_capacity(g.node_count());
        let expected: u64 = g.nodes().map(|u| truth.subset_of(u) as u64).sum::<u64>();
        assert_eq!(tally_pass_scratch(&g, truth.as_slice(), &mut s), expected);
    }
}
