//! Figure 9 — modularity and running time of our five parallel algorithms
//! on the massive web graph (paper: uk-2007-05, 3.3 B edges; here the
//! largest R-MAT stand-in the host fits). Expected shape: PLP fastest by
//! far with a visible modularity deficit (~0.02 in the paper); EPP slightly
//! faster than PLM at slightly lower modularity; PLMR the best modularity.

use parcom_bench::harness::{
    edges_per_second, fmt_secs, our_algorithms, print_table, run_measured,
};
use parcom_bench::suite::massive_quality_graph;
use parcom_core::compare::jaccard_index;

fn main() {
    let (g, truth) = massive_quality_graph(400_000);
    println!(
        "Fig. 9 instance: uk2007 stand-in (heavy-tailed LFR), n={}, m={}",
        g.node_count(),
        g.edge_count()
    );
    let mut rows = Vec::new();
    for mut algo in our_algorithms() {
        let (zeta, m) = run_measured(algo.as_mut(), &g, "uk2007-lfr");
        rows.push(vec![
            m.algorithm.clone(),
            fmt_secs(m.time),
            format!("{:.4}", m.modularity),
            format!("{:.1}M", edges_per_second(g.edge_count(), m.time) / 1e6),
            m.communities.to_string(),
            format!("{:.3}", jaccard_index(&zeta, &truth)),
        ]);
    }
    print_table(
        "Fig. 9: our algorithms on the massive web graph",
        &[
            "algorithm",
            "time_s",
            "modularity",
            "edges/s",
            "communities",
            "truth-jaccard",
        ],
        &rows,
    );
}
