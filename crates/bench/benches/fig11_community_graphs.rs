//! Figure 11 — community graphs of the PGPgiantcompo stand-in for PLP, PLM,
//! PLMR and EPP(4,PLP,PLM). The paper's qualitative point: PLP detects ~10×
//! more (much smaller) communities than the Louvain-family algorithms; on
//! this network higher modularity comes with coarser resolution. DOT files
//! for rendering are written next to the bench output.

use parcom_bench::harness::{print_table, run_measured};
use parcom_bench::standard_suite;
use parcom_core::{CommunityDetector, CommunityGraph, Epp, Plm, Plp};

fn main() {
    let suite = standard_suite();
    let inst = suite.iter().find(|i| i.name == "pgp-ba").unwrap();
    let g = inst.graph();
    println!(
        "Fig. 11 instance: {} (n={}, m={})",
        inst.name,
        g.node_count(),
        g.edge_count()
    );

    let out_dir = std::path::Path::new("target/parcom-fig11");
    std::fs::create_dir_all(out_dir).ok();

    let algos: Vec<Box<dyn CommunityDetector + Send>> = vec![
        Box::new(Plp::new()),
        Box::new(Plm::new()),
        Box::new(Plm::with_refinement()),
        Box::new(Epp::plp_plm(4)),
    ];
    let mut rows = Vec::new();
    for mut algo in algos {
        let (zeta, m) = run_measured(algo.as_mut(), &g, inst.name);
        let cg = CommunityGraph::build(&g, &zeta);
        let hist = cg
            .size_histogram()
            .iter()
            .enumerate()
            .map(|(b, c)| format!("2^{b}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        let dot_path = out_dir.join(format!("{}.dot", m.algorithm.replace(['(', ')', ','], "_")));
        parcom_io::write_community_graph_dot(&cg, &m.algorithm, &dot_path).ok();
        rows.push(vec![
            m.algorithm.clone(),
            cg.community_count().to_string(),
            cg.max_community_size().to_string(),
            format!("{:.4}", m.modularity),
            hist,
        ]);
    }
    print_table(
        "Fig. 11: community-graph resolution per algorithm (PGP stand-in)",
        &[
            "algorithm",
            "communities",
            "largest",
            "modularity",
            "size histogram (bucket:count)",
        ],
        &rows,
    );
    println!("DOT files written to {}", out_dir.display());
}
