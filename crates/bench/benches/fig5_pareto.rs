//! Figure 5 — the Pareto evaluation (§V-F): for every algorithm, the time
//! score (geometric mean of running-time ratios vs the PLM baseline over
//! the suite) against the modularity score (arithmetic mean of modularity
//! differences vs PLM).
//!
//! Expected shape: PLP fastest at a quality deficit; PLM/PLMR in the lower
//! right (fast and strong); EPP between; RG/CGGC/CGGCi best quality but an
//! order of magnitude slower; CEL dominated (off the frontier); Louvain no
//! longer on the frontier because it cannot use the cores.

use parcom_bench::harness::{
    arithmetic_mean, competitor_algorithms, geometric_mean, our_algorithms, print_table,
    run_measured, Measurement,
};
use parcom_bench::standard_suite;
use parcom_core::{CommunityDetector, Plm};

fn main() {
    let suite = standard_suite();
    let graphs: Vec<_> = suite.iter().map(|i| i.graph()).collect();

    // PLM baseline per instance
    let baselines: Vec<Measurement> = suite
        .iter()
        .zip(&graphs)
        .map(|(inst, g)| run_measured(&mut Plm::new(), g, inst.name).1)
        .collect();

    let mut algos: Vec<Box<dyn CommunityDetector + Send>> = our_algorithms();
    algos.extend(competitor_algorithms());

    let mut rows = Vec::new();
    for mut algo in algos {
        let mut time_ratios = Vec::new();
        let mut mod_diffs = Vec::new();
        for (i, inst) in suite.iter().enumerate() {
            let (_, m) = run_measured(algo.as_mut(), &graphs[i], inst.name);
            time_ratios.push((m.time.as_secs_f64() / baselines[i].time.as_secs_f64()).max(1e-6));
            mod_diffs.push(m.modularity - baselines[i].modularity);
        }
        rows.push(vec![
            algo.name(),
            format!("{:.3}", geometric_mean(&time_ratios)),
            format!("{:+.4}", arithmetic_mean(&mod_diffs)),
        ]);
    }
    // sort by time score so the frontier reads top to bottom
    rows.sort_by(|a, b| {
        a[1].parse::<f64>()
            .unwrap()
            .total_cmp(&b[1].parse::<f64>().unwrap())
    });
    print_table(
        "Fig. 5: Pareto evaluation (scores relative to PLM baseline)",
        &["algorithm", "time_score(geo)", "mod_score(mean diff)"],
        &rows,
    );
    println!("(lower-right is better: small time score, high modularity score)");
}
