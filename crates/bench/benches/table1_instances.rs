//! Table I — overview of the benchmark instances (n, m, max degree,
//! connected components, average local clustering coefficient), plus the
//! Table II platform substitution note.

use parcom_bench::harness::print_table;
use parcom_bench::standard_suite;
use parcom_graph::assortativity::degree_assortativity;
use parcom_graph::stats::{summarize, SummaryOptions};

fn main() {
    println!("Table II (platform substitution): paper used 2x8-core Xeon E5-2680, 256 GB RAM.");
    println!(
        "This run: {} hardware threads available (see DESIGN.md §2.2).",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut rows = Vec::new();
    for inst in standard_suite() {
        let (g, truth) = inst.build();
        let s = summarize(&g, SummaryOptions::default());
        rows.push(vec![
            inst.name.to_string(),
            inst.paper_counterpart.to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            s.max_degree.to_string(),
            s.components.to_string(),
            format!("{:.3}", s.avg_lcc),
            degree_assortativity(&g).map_or("-".into(), |r| format!("{r:+.2}")),
            truth.map_or("-".into(), |t| t.number_of_subsets().to_string()),
        ]);
    }
    print_table(
        "Table I: instance overview (stand-ins for the paper's corpus)",
        &[
            "network",
            "stands for",
            "n",
            "m",
            "max.d.",
            "comp.",
            "LCC",
            "assort.",
            "truth-k",
        ],
        &rows,
    );
}
