//! Criterion microbenchmarks of the hot kernels: modularity scoring, the
//! PLM move phase, parallel coarsening, PLP end-to-end, and the djb2
//! ensemble combine. These are the operations the paper's implementation
//! notes single out (§III-B: Δmod evaluation and coarsening dominate PLM).
//!
//! The `aggregation-kernel` group isolates the innermost operation of all
//! the label/move kernels — tally edge weight per neighbor community, then
//! arg-max — and compares the `FxHashMap` formulation against the
//! generation-stamped [`SparseWeightMap`] scratch on a 100k-node graph, in
//! the two regimes that bracket real runs: singleton labels (every neighbor
//! a distinct key, the move phase's first sweep) and converged labels (few
//! distinct keys per neighborhood).

use criterion::{criterion_group, criterion_main, Criterion};
use parcom_bench::kernels::{tally_pass_fxhash, tally_pass_scratch};
use parcom_core::combine::core_communities;
use parcom_core::quality::modularity;
use parcom_core::{
    move_phase, move_phase_strategy, move_phase_with_coloring, CommunityDetector, MoveStrategy,
    Plm, Plp,
};
use parcom_generators::{barabasi_albert, lfr, rmat, LfrParams, RmatParams};
use parcom_graph::hashing::FxHashMap;
use parcom_graph::parallel::with_threads;
use parcom_graph::{coarsen, Coloring, Partition, SparseWeightMap};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let (g, truth) = lfr(LfrParams::benchmark(5_000, 0.3), 77);
    let zeta = Plm::new().detect(&g);

    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("modularity_5k", |b| {
        b.iter(|| black_box(modularity(&g, &zeta)))
    });

    group.bench_function("move_phase_singletons_5k", |b| {
        b.iter(|| {
            let mut p = Partition::singleton(g.node_count());
            black_box(move_phase(&g, &mut p, 1.0, 4))
        })
    });

    group.bench_function("coarsen_5k", |b| b.iter(|| black_box(coarsen(&g, &zeta))));

    group.bench_function("plp_full_5k", |b| {
        b.iter(|| black_box(Plp::new().detect(&g)))
    });

    group.bench_function("plm_full_5k", |b| {
        b.iter(|| black_box(Plm::new().detect(&g)))
    });

    let bases: Vec<Partition> = (0..4)
        .map(|i| {
            let mut plp = Plp::new();
            plp.set_seed(i as u64 + 1);
            plp.detect(&g)
        })
        .collect();
    group.bench_function("djb2_combine_4x5k", |b| {
        b.iter(|| black_box(core_communities(&bases)))
    });

    let _ = truth;
    group.finish();
}

fn bench_aggregation_kernel(c: &mut Criterion) {
    // 100k-node scale-free graph: the degree skew the paper's instances have
    let g = barabasi_albert(100_000, 8, 42);
    let singleton: Vec<u32> = (0..g.node_count() as u32).collect(); // audit:allow(lossy-cast): bounded by the u32 node id space
    let mut converged = Plm::new().detect(&g);
    converged.compact();
    let k = converged.upper_bound() as usize;

    let mut group = c.benchmark_group("aggregation-kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    // sanity: both formulations pick identical arg-max labels
    {
        let mut h = FxHashMap::default();
        let mut s = SparseWeightMap::with_capacity(g.node_count());
        assert_eq!(
            tally_pass_fxhash(&g, &singleton, &mut h),
            tally_pass_scratch(&g, &singleton, &mut s),
        );
        assert_eq!(
            tally_pass_fxhash(&g, converged.as_slice(), &mut h),
            tally_pass_scratch(&g, converged.as_slice(), &mut s),
        );
    }

    group.bench_function("tally_fxhash_singleton_100k", |b| {
        let mut weight_to = FxHashMap::default();
        b.iter(|| black_box(tally_pass_fxhash(&g, &singleton, &mut weight_to)))
    });
    group.bench_function("tally_scratch_singleton_100k", |b| {
        let mut weight_to = SparseWeightMap::with_capacity(g.node_count());
        b.iter(|| black_box(tally_pass_scratch(&g, &singleton, &mut weight_to)))
    });
    group.bench_function("tally_fxhash_converged_100k", |b| {
        let mut weight_to = FxHashMap::default();
        b.iter(|| black_box(tally_pass_fxhash(&g, converged.as_slice(), &mut weight_to)))
    });
    group.bench_function("tally_scratch_converged_100k", |b| {
        let mut weight_to = SparseWeightMap::with_capacity(k.max(1));
        b.iter(|| black_box(tally_pass_scratch(&g, converged.as_slice(), &mut weight_to)))
    });
    group.finish();
}

fn bench_move_strategy(c: &mut Criterion) {
    // The two instances the baseline binary pins: planted communities and
    // skewed degrees. The move phase starts from singletons (its worst
    // case) so all three strategies do the same logical work.
    let (lfr_graph, _) = lfr(LfrParams::benchmark(20_000, 0.3), 42);
    let rmat_graph = rmat(RmatParams::paper_with_edge_factor(15, 16), 42);
    let instances = [("lfr_20k", &lfr_graph), ("rmat_s15", &rmat_graph)];

    let mut group = c.benchmark_group("move-strategy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (name, g) in instances {
        // per-level setup PLM amortizes over all sweeps; timed separately
        // below, so the per-strategy numbers compare per-sweep work
        let coloring = Coloring::compute(g);
        for strategy in [
            MoveStrategy::Racy,
            MoveStrategy::Coloring,
            MoveStrategy::Synchronized,
        ] {
            for threads in [1usize, 2, 4] {
                group.bench_function(&format!("{name}_{strategy}_t{threads}"), |b| {
                    b.iter(|| {
                        with_threads(threads, || {
                            let mut p = Partition::singleton(g.node_count());
                            black_box(match strategy {
                                MoveStrategy::Coloring => {
                                    move_phase_with_coloring(g, &mut p, 1.0, 4, &coloring)
                                }
                                _ => move_phase_strategy(g, &mut p, 1.0, 4, strategy),
                            })
                        })
                    })
                });
            }
        }
        // the coloring strategy's one-time per-level setup cost
        group.bench_function(&format!("{name}_coloring_setup"), |b| {
            b.iter(|| black_box(Coloring::compute(g)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_aggregation_kernel,
    bench_move_strategy
);
criterion_main!(benches);
