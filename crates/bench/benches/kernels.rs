//! Criterion microbenchmarks of the hot kernels: modularity scoring, the
//! PLM move phase, parallel coarsening, PLP end-to-end, and the djb2
//! ensemble combine. These are the operations the paper's implementation
//! notes single out (§III-B: Δmod evaluation and coarsening dominate PLM).

use criterion::{criterion_group, criterion_main, Criterion};
use parcom_core::combine::core_communities;
use parcom_core::quality::modularity;
use parcom_core::{move_phase, CommunityDetector, Plm, Plp};
use parcom_generators::{lfr, LfrParams};
use parcom_graph::{coarsen, Partition};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let (g, truth) = lfr(LfrParams::benchmark(5_000, 0.3), 77);
    let zeta = Plm::new().detect(&g);

    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("modularity_5k", |b| {
        b.iter(|| black_box(modularity(&g, &zeta)))
    });

    group.bench_function("move_phase_singletons_5k", |b| {
        b.iter(|| {
            let mut p = Partition::singleton(g.node_count());
            black_box(move_phase(&g, &mut p, 1.0, 4))
        })
    });

    group.bench_function("coarsen_5k", |b| b.iter(|| black_box(coarsen(&g, &zeta))));

    group.bench_function("plp_full_5k", |b| {
        b.iter(|| black_box(Plp::new().detect(&g)))
    });

    group.bench_function("plm_full_5k", |b| {
        b.iter(|| black_box(Plm::new().detect(&g)))
    });

    let bases: Vec<Partition> = (0..4)
        .map(|i| {
            let mut plp = Plp::new();
            plp.set_seed(i as u64 + 1);
            plp.detect(&g)
        })
        .collect();
    group.bench_function("djb2_combine_4x5k", |b| {
        b.iter(|| black_box(core_communities(&bases)))
    });

    let _ = truth;
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
