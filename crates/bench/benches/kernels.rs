//! Criterion microbenchmarks of the hot kernels: modularity scoring, the
//! PLM move phase, parallel coarsening, PLP end-to-end, and the djb2
//! ensemble combine. These are the operations the paper's implementation
//! notes single out (§III-B: Δmod evaluation and coarsening dominate PLM).
//!
//! The `aggregation-kernel` group isolates the innermost operation of all
//! the label/move kernels — tally edge weight per neighbor community, then
//! arg-max — and compares the `FxHashMap` formulation against the
//! generation-stamped [`SparseWeightMap`] scratch on a 100k-node graph, in
//! the two regimes that bracket real runs: singleton labels (every neighbor
//! a distinct key, the move phase's first sweep) and converged labels (few
//! distinct keys per neighborhood).

use criterion::{criterion_group, criterion_main, Criterion};
use parcom_bench::kernels::{tally_pass_fxhash, tally_pass_scratch};
use parcom_core::combine::core_communities;
use parcom_core::quality::modularity;
use parcom_core::{move_phase, CommunityDetector, Plm, Plp};
use parcom_generators::{barabasi_albert, lfr, LfrParams};
use parcom_graph::hashing::FxHashMap;
use parcom_graph::{coarsen, Partition, SparseWeightMap};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let (g, truth) = lfr(LfrParams::benchmark(5_000, 0.3), 77);
    let zeta = Plm::new().detect(&g);

    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("modularity_5k", |b| {
        b.iter(|| black_box(modularity(&g, &zeta)))
    });

    group.bench_function("move_phase_singletons_5k", |b| {
        b.iter(|| {
            let mut p = Partition::singleton(g.node_count());
            black_box(move_phase(&g, &mut p, 1.0, 4))
        })
    });

    group.bench_function("coarsen_5k", |b| b.iter(|| black_box(coarsen(&g, &zeta))));

    group.bench_function("plp_full_5k", |b| {
        b.iter(|| black_box(Plp::new().detect(&g)))
    });

    group.bench_function("plm_full_5k", |b| {
        b.iter(|| black_box(Plm::new().detect(&g)))
    });

    let bases: Vec<Partition> = (0..4)
        .map(|i| {
            let mut plp = Plp::new();
            plp.set_seed(i as u64 + 1);
            plp.detect(&g)
        })
        .collect();
    group.bench_function("djb2_combine_4x5k", |b| {
        b.iter(|| black_box(core_communities(&bases)))
    });

    let _ = truth;
    group.finish();
}

fn bench_aggregation_kernel(c: &mut Criterion) {
    // 100k-node scale-free graph: the degree skew the paper's instances have
    let g = barabasi_albert(100_000, 8, 42);
    let singleton: Vec<u32> = (0..g.node_count() as u32).collect(); // audit:allow(lossy-cast): bounded by the u32 node id space
    let mut converged = Plm::new().detect(&g);
    converged.compact();
    let k = converged.upper_bound() as usize;

    let mut group = c.benchmark_group("aggregation-kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    // sanity: both formulations pick identical arg-max labels
    {
        let mut h = FxHashMap::default();
        let mut s = SparseWeightMap::with_capacity(g.node_count());
        assert_eq!(
            tally_pass_fxhash(&g, &singleton, &mut h),
            tally_pass_scratch(&g, &singleton, &mut s),
        );
        assert_eq!(
            tally_pass_fxhash(&g, converged.as_slice(), &mut h),
            tally_pass_scratch(&g, converged.as_slice(), &mut s),
        );
    }

    group.bench_function("tally_fxhash_singleton_100k", |b| {
        let mut weight_to = FxHashMap::default();
        b.iter(|| black_box(tally_pass_fxhash(&g, &singleton, &mut weight_to)))
    });
    group.bench_function("tally_scratch_singleton_100k", |b| {
        let mut weight_to = SparseWeightMap::with_capacity(g.node_count());
        b.iter(|| black_box(tally_pass_scratch(&g, &singleton, &mut weight_to)))
    });
    group.bench_function("tally_fxhash_converged_100k", |b| {
        let mut weight_to = FxHashMap::default();
        b.iter(|| black_box(tally_pass_fxhash(&g, converged.as_slice(), &mut weight_to)))
    });
    group.bench_function("tally_scratch_converged_100k", |b| {
        let mut weight_to = SparseWeightMap::with_capacity(k.max(1));
        b.iter(|| black_box(tally_pass_scratch(&g, converged.as_slice(), &mut weight_to)))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_aggregation_kernel);
criterion_main!(benches);
