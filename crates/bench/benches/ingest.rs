//! Graph-ingest microbenchmarks: the chunked byte parsers + parallel CSR
//! assembly (DESIGN.md §10) against the retained sequential references,
//! for both on-disk formats, plus the CSR build in isolation. In-memory
//! buffers keep the page cache out of the measurement — this times
//! parsing and assembly, not disk.

use criterion::{criterion_group, criterion_main, Criterion};
use parcom_generators::barabasi_albert;
use parcom_graph::GraphBuilder;
use parcom_io::edgelist::{read_edge_list_bytes, read_edge_list_seq};
use parcom_io::metis::{read_metis_bytes, read_metis_seq, write_metis_to};
use std::hint::black_box;
use std::time::Duration;

fn bench_ingest(c: &mut Criterion) {
    // ~160k-edge scale-free instance: big enough that per-line allocation
    // shows, small enough for criterion's sampling
    let g = barabasi_albert(10_000, 16, 42);
    let mut metis_buf: Vec<u8> = Vec::new();
    write_metis_to(&g, &mut metis_buf).unwrap();
    let mut edges_buf: Vec<u8> = Vec::new();
    parcom_io::edgelist::write_edge_list_to(&g, &mut edges_buf).unwrap();

    let mut group = c.benchmark_group("ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("metis_seq_10k", |b| {
        b.iter(|| black_box(read_metis_seq(&metis_buf).unwrap()))
    });
    group.bench_function("metis_parallel_10k", |b| {
        b.iter(|| black_box(read_metis_bytes(&metis_buf).unwrap()))
    });
    group.bench_function("edgelist_seq_10k", |b| {
        b.iter(|| black_box(read_edge_list_seq(&edges_buf).unwrap()))
    });
    group.bench_function("edgelist_parallel_10k", |b| {
        b.iter(|| black_box(read_edge_list_bytes(&edges_buf).unwrap()))
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    // CSR assembly in isolation, on the raw edge multiset of the same graph
    let g = barabasi_albert(10_000, 16, 42);
    let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(g.edge_count());
    g.for_edges(|u, v, w| edges.push((u, v, w)));
    let n = g.node_count();

    let mut group = c.benchmark_group("csr-build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("build_reference_10k", |b| {
        b.iter(|| {
            let mut bld = GraphBuilder::with_capacity(n, edges.len());
            for &(u, v, w) in &edges {
                bld.add_edge(u, v, w);
            }
            black_box(bld.build_reference())
        })
    });
    group.bench_function("build_parallel_10k", |b| {
        b.iter(|| {
            let mut bld = GraphBuilder::with_capacity(n, edges.len());
            for &(u, v, w) in &edges {
                bld.add_edge(u, v, w);
            }
            black_box(bld.build())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_build);
criterion_main!(benches);
