//! Figure 3 — PLM strong scaling on the massive web-graph stand-in
//! (paper: uk-2007-05, speedup ~12 at 32 threads). Both the move phase and
//! the coarsening are parallel, so PLM scales like PLP with extra overhead.

use parcom_bench::harness::{edges_per_second, fmt_secs, print_table, time};
use parcom_bench::suite::massive_graph;
use parcom_core::{CommunityDetector, Plm};
use parcom_graph::parallel::with_threads;

fn main() {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let g = massive_graph(17, 16);
    println!(
        "PLM strong scaling on uk2007-rmat stand-in (n={}, m={}), host threads: {hw}",
        g.node_count(),
        g.edge_count()
    );

    let max_threads = hw.clamp(4, 32);
    let mut rows = Vec::new();
    let mut t1 = None;
    let mut threads = 1usize;
    while threads <= max_threads {
        let ((zeta, elapsed), _) = with_threads(threads, || {
            (
                time(|| {
                    let mut plm = Plm::new();
                    plm.detect(&g)
                }),
                (),
            )
        });
        let base = *t1.get_or_insert(elapsed.as_secs_f64());
        rows.push(vec![
            threads.to_string(),
            fmt_secs(elapsed),
            format!("{:.2}", base / elapsed.as_secs_f64()),
            format!("{:.1}M", edges_per_second(g.edge_count(), elapsed) / 1e6),
            format!("{:.4}", parcom_core::quality::modularity(&g, &zeta)),
        ]);
        threads *= 2;
    }
    print_table(
        "Fig. 3: PLM strong scaling",
        &["threads", "time_s", "speedup", "edges/s", "modularity"],
        &rows,
    );
}
