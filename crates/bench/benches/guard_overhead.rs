//! Overhead of the guarded entry points: `detect_guarded` under
//! `Budget::unlimited()` runs the exact same algorithm body as `detect`
//! plus one amortized budget check per sweep/level (or per 1024 merges in
//! the agglomerators). The pairs below must be statistically
//! indistinguishable — a regression here means a check leaked into a hot
//! per-edge loop.

use criterion::{criterion_group, criterion_main, Criterion};
use parcom_core::{Budget, CommunityDetector, Plm, Plp, Rg};
use parcom_generators::{lfr, LfrParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_guard_overhead(c: &mut Criterion) {
    let (g, _) = lfr(LfrParams::benchmark(10_000, 0.3), 77);
    let budget = Budget::unlimited();

    let mut group = c.benchmark_group("guard-overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("plp_detect_10k", |b| {
        b.iter(|| black_box(Plp::new().detect(&g)))
    });
    group.bench_function("plp_guarded_10k", |b| {
        b.iter(|| black_box(Plp::new().detect_guarded(&g, &budget).partition))
    });

    group.bench_function("plm_detect_10k", |b| {
        b.iter(|| black_box(Plm::new().detect(&g)))
    });
    group.bench_function("plm_guarded_10k", |b| {
        b.iter(|| black_box(Plm::new().detect_guarded(&g, &budget).partition))
    });

    // RG is the paced case: one check per 1024 heap pops
    group.bench_function("rg_detect_10k", |b| {
        b.iter(|| black_box(Rg::new().detect(&g)))
    });
    group.bench_function("rg_guarded_10k", |b| {
        b.iter(|| black_box(Rg::new().detect_guarded(&g, &budget).partition))
    });

    group.finish();
}

criterion_group!(benches, bench_guard_overhead);
criterion_main!(benches);
