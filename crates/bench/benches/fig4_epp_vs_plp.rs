//! Figure 4 — EPP(4,PLP,PLM) versus a single PLP: modularity difference
//! (above) and running-time ratio (below) per network. Expected shape:
//! EPP improves modularity on most instances at roughly 5× the PLP time on
//! large networks; on small networks the ensemble overhead dominates.

use parcom_bench::harness::{fmt_secs, print_table, run_measured};
use parcom_bench::standard_suite;
use parcom_core::{Epp, Plp};

fn main() {
    let mut rows = Vec::new();
    for inst in standard_suite() {
        let g = inst.graph();
        let (_, plp) = run_measured(&mut Plp::new(), &g, inst.name);
        let (_, epp) = run_measured(&mut Epp::plp_plm(4), &g, inst.name);
        rows.push(vec![
            inst.name.to_string(),
            g.edge_count().to_string(),
            format!("{:+.4}", epp.modularity - plp.modularity),
            format!("{:.2}", epp.time.as_secs_f64() / plp.time.as_secs_f64()),
            fmt_secs(plp.time),
            fmt_secs(epp.time),
            format!("{:.4}", plp.modularity),
            format!("{:.4}", epp.modularity),
        ]);
    }
    print_table(
        "Fig. 4: EPP(4,PLP,PLM) vs single PLP",
        &[
            "network",
            "m",
            "mod_diff",
            "time_ratio",
            "t_PLP_s",
            "t_EPP_s",
            "mod_PLP",
            "mod_EPP",
        ],
        &rows,
    );

    // §V-D ablation: ensemble size sweep on a mid-size instance
    let suite = standard_suite();
    let inst = suite.iter().find(|i| i.name == "livejournal-lfr").unwrap();
    let g = inst.graph();
    let mut rows = Vec::new();
    for b in [1usize, 2, 4, 8] {
        let (_, m) = run_measured(&mut Epp::plp_plm(b), &g, inst.name);
        rows.push(vec![
            b.to_string(),
            format!("{:.4}", m.modularity),
            fmt_secs(m.time),
            m.communities.to_string(),
        ]);
    }
    print_table(
        "Fig. 4 ablation (§V-D): EPP ensemble size sweep on livejournal-lfr",
        &["b", "modularity", "time_s", "communities"],
        &rows,
    );
}
