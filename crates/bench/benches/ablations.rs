//! Ablation studies for the design choices the paper calls out:
//!
//! * PLP update threshold θ (§III-A: θ = n·10⁻⁵ cuts the long iteration
//!   tail without hurting quality),
//! * PLP explicit randomization (§III-A/§V-D: no quality gain, slower),
//! * PLP seed perturbation for ensemble diversity (§V-D: not reproducible),
//! * PLM resolution parameter γ (§III-B: community size control),
//! * one-level EPP vs the iterated EML scheme (§III-D: iteration does not
//!   pay off).

use parcom_bench::harness::{fmt_secs, print_table, run_measured, time};
use parcom_bench::standard_suite;
use parcom_core::compare::jaccard_dissimilarity;
use parcom_core::quality::{modularity, modularity_gamma};
use parcom_core::{CommunityDetector, Epp, EppIterated, Plm, Plp, SeedPerturbation};

fn main() {
    let suite = standard_suite();
    let inst = suite.iter().find(|i| i.name == "uk2002-lfr").unwrap();
    let g = inst.graph();
    println!(
        "ablation instance: {} (n={}, m={})",
        inst.name,
        g.node_count(),
        g.edge_count()
    );

    // 1. PLP update threshold θ
    let mut rows = Vec::new();
    for theta in [0.0, 1e-6, 1e-5, 1e-4, 1e-3] {
        let mut plp = Plp {
            theta_fraction: theta,
            ..Plp::default()
        };
        let ((zeta, report), t) = time(|| plp.detect_with_report(&g));
        let iterations = report
            .phase("label-propagation")
            .and_then(|p| p.counter("iterations"))
            .unwrap_or(0);
        rows.push(vec![
            format!("{theta:.0e}"),
            iterations.to_string(),
            fmt_secs(t),
            format!("{:.4}", modularity(&g, &zeta)),
        ]);
    }
    print_table(
        "Ablation: PLP update threshold θ (§III-A)",
        &["theta", "iterations", "time_s", "modularity"],
        &rows,
    );

    // 2. PLP explicit randomization
    let mut rows = Vec::new();
    for explicit in [false, true] {
        let mut plp = Plp {
            explicit_randomization: explicit,
            ..Plp::default()
        };
        let (zeta, t) = time(|| plp.detect(&g));
        rows.push(vec![
            explicit.to_string(),
            fmt_secs(t),
            format!("{:.4}", modularity(&g, &zeta)),
        ]);
    }
    print_table(
        "Ablation: PLP explicit node-order randomization (§III-A)",
        &["explicit", "time_s", "modularity"],
        &rows,
    );

    // 3. PLP seed perturbation: base diversity and effect on EPP quality
    let mut rows = Vec::new();
    for (label, perturbation) in [
        ("none", SeedPerturbation::None),
        ("deactivate 10%", SeedPerturbation::DeactivateFraction(0.1)),
        (
            "activate-only 50%",
            SeedPerturbation::ActivateOnlyFraction(0.5),
        ),
    ] {
        let bases: Vec<_> = (0..4)
            .map(|i| {
                Plp {
                    seed_perturbation: perturbation,
                    seed: i as u64 + 1,
                    ..Plp::default()
                }
                .detect(&g)
            })
            .collect();
        let mut diversity = Vec::new();
        for i in 0..bases.len() {
            for j in (i + 1)..bases.len() {
                diversity.push(jaccard_dissimilarity(&bases[i], &bases[j]));
            }
        }
        let avg_div = diversity.iter().sum::<f64>() / diversity.len() as f64;
        let base_boxes: Vec<Box<dyn CommunityDetector + Send>> = (0..4)
            .map(|i| {
                Box::new(Plp {
                    seed_perturbation: perturbation,
                    seed: i as u64 + 1,
                    ..Plp::default()
                }) as Box<dyn CommunityDetector + Send>
            })
            .collect();
        let mut epp = Epp::new(base_boxes, Box::new(Plm::new()));
        let (_, m) = run_measured(&mut epp, &g, inst.name);
        rows.push(vec![
            label.to_string(),
            format!("{avg_div:.3}"),
            format!("{:.4}", m.modularity),
        ]);
    }
    print_table(
        "Ablation: PLP seed perturbation and ensemble diversity (§V-D)",
        &["perturbation", "avg_dissimilarity", "EPP_modularity"],
        &rows,
    );

    // 4. PLM resolution parameter γ
    let mut rows = Vec::new();
    for gamma in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut plm = Plm::with_gamma(gamma);
        let (zeta, t) = time(|| plm.detect(&g));
        rows.push(vec![
            format!("{gamma}"),
            zeta.number_of_subsets().to_string(),
            format!("{:.4}", modularity(&g, &zeta)),
            format!("{:.4}", modularity_gamma(&g, &zeta, gamma)),
            fmt_secs(t),
        ]);
    }
    print_table(
        "Ablation: PLM resolution parameter γ (§III-B)",
        &["gamma", "communities", "mod(γ=1)", "mod(γ)", "time_s"],
        &rows,
    );

    // 5. one-level EPP vs iterated EML
    let mut rows = Vec::new();
    for name in ["coauthors-lfr", "livejournal-lfr", "uk2002-lfr"] {
        let inst = suite.iter().find(|i| i.name == name).unwrap();
        let g = inst.graph();
        let (_, epp) = run_measured(&mut Epp::plp_plm(4), &g, name);
        let (_, eml) = run_measured(&mut EppIterated::new(4), &g, name);
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", epp.modularity),
            fmt_secs(epp.time),
            format!("{:.4}", eml.modularity),
            fmt_secs(eml.time),
        ]);
    }
    print_table(
        "Ablation: one-level EPP vs iterated EML (§III-D)",
        &["network", "EPP_mod", "EPP_time_s", "EML_mod", "EML_time_s"],
        &rows,
    );
}
