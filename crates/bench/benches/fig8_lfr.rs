//! Figure 8 — the LFR benchmark: agreement (Jaccard index) between detected
//! and planted communities while the mixing parameter μ increases from 0.1
//! to 0.8. Expected shape: PLM (and PLMR) track the ground truth far into
//! the noise (the paper shows detection up to μ = 0.8); PLP — and therefore
//! EPP — degrade earlier.

use parcom_bench::harness::print_table;
use parcom_core::compare::jaccard_index;
use parcom_core::{CommunityDetector, Epp, Plm, Plp};
use parcom_generators::{lfr, LfrParams};

fn main() {
    let n = 10_000;
    let mut rows = Vec::new();
    for step in 1..=8 {
        let mu = step as f64 / 10.0;
        // community sizes 50–200: large enough that modularity's resolution
        // limit does not force PLM to merge planted communities at low μ
        let params = LfrParams {
            n,
            mu,
            degree_exponent: 2.5,
            min_degree: 15,
            max_degree: 60,
            community_exponent: 1.5,
            min_community: 50,
            max_community: 200,
        };
        let (g, truth) = lfr(params, 800 + step as u64);
        let mut algos: Vec<Box<dyn CommunityDetector + Send>> = vec![
            Box::new(Plp::new()),
            Box::new(Plm::new()),
            Box::new(Plm::with_refinement()),
            Box::new(Epp::plp_plm(4)),
        ];
        let mut row = vec![format!("{mu:.1}")];
        for algo in algos.iter_mut() {
            let zeta = algo.detect(&g);
            row.push(format!("{:.3}", jaccard_index(&zeta, &truth)));
        }
        rows.push(row);
    }
    print_table(
        &format!("Fig. 8: LFR ground-truth recovery, n={n} (Jaccard index vs planted)"),
        &["mu", "PLP", "PLM", "PLMR", "EPP(4,PLP,PLM)"],
        &rows,
    );
}
