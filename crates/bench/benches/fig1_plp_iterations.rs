//! Figure 1 — number of active and updated labels per PLP iteration on the
//! web-graph stand-in (paper: uk-2002). The expected shape: both series
//! drop by orders of magnitude within a handful of iterations, leaving a
//! long tail of iterations that update only a few (high-degree) nodes —
//! the motivation for the update threshold θ.

use parcom_bench::harness::print_table;
use parcom_bench::standard_suite;
use parcom_core::{CommunityDetector, Plp};

fn main() {
    let suite = standard_suite();
    let inst = suite.iter().find(|i| i.name == "uk2002-lfr").unwrap();
    let g = inst.graph();
    println!(
        "PLP iteration trace on {} (n={}, m={})",
        inst.name,
        g.node_count(),
        g.edge_count()
    );

    // θ = 0 exposes the full tail the paper's Fig. 1 shows
    let mut plp = Plp {
        theta_fraction: 0.0,
        max_iterations: 50,
        ..Plp::default()
    };
    plp.detect(&g);

    let stats = &plp.last_stats;
    let rows: Vec<Vec<String>> = stats
        .active_per_iteration
        .iter()
        .zip(&stats.updated_per_iteration)
        .enumerate()
        .map(|(i, (active, updated))| {
            vec![(i + 1).to_string(), active.to_string(), updated.to_string()]
        })
        .collect();
    print_table(
        "Fig. 1: active and updated labels per PLP iteration",
        &["iteration", "active", "updated"],
        &rows,
    );
    println!(
        "default threshold θ = n·1e-5 = {:.0} would stop after iteration {}",
        g.node_count() as f64 * 1e-5,
        stats
            .updated_per_iteration
            .iter()
            .position(|&u| (u as f64) <= (g.node_count() as f64 * 1e-5).ceil())
            .map_or(stats.iterations(), |p| p + 1)
    );
}
