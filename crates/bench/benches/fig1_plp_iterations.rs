//! Figure 1 — number of active and updated labels per PLP iteration on the
//! web-graph stand-in (paper: uk-2002). The expected shape: both series
//! drop by orders of magnitude within a handful of iterations, leaving a
//! long tail of iterations that update only a few (high-degree) nodes —
//! the motivation for the update threshold θ.

use parcom_bench::harness::print_table;
use parcom_bench::standard_suite;
use parcom_core::{CommunityDetector, Plp};

fn main() {
    let suite = standard_suite();
    let inst = suite.iter().find(|i| i.name == "uk2002-lfr").unwrap();
    let g = inst.graph();
    println!(
        "PLP iteration trace on {} (n={}, m={})",
        inst.name,
        g.node_count(),
        g.edge_count()
    );

    // θ = 0 exposes the full tail the paper's Fig. 1 shows
    let mut plp = Plp {
        theta_fraction: 0.0,
        max_iterations: 50,
        ..Plp::default()
    };
    let (_, report) = plp.detect_with_report(&g);

    let phase = report
        .phase("label-propagation")
        .expect("PLP report carries the label-propagation phase");
    let active = phase.series("active").unwrap_or(&[]);
    let updated = phase.series("updated").unwrap_or(&[]);
    let rows: Vec<Vec<String>> = active
        .iter()
        .zip(updated)
        .enumerate()
        .map(|(i, (a, u))| {
            vec![
                (i + 1).to_string(),
                (*a as u64).to_string(),
                (*u as u64).to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 1: active and updated labels per PLP iteration",
        &["iteration", "active", "updated"],
        &rows,
    );
    println!(
        "default threshold θ = n·1e-5 = {:.0} would stop after iteration {}",
        g.node_count() as f64 * 1e-5,
        updated
            .iter()
            .position(|&u| u <= (g.node_count() as f64 * 1e-5).ceil())
            .map_or(updated.len(), |p| p + 1)
    );
}
