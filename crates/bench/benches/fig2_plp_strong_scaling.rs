//! Figure 2 — PLP strong scaling on the massive web-graph stand-in
//! (paper: uk-2007-05, threads 1..32). The thread sweep uses dedicated
//! rayon pools; on a host without that many physical cores the speedup
//! column documents the available shape only (DESIGN.md §2.2).

use parcom_bench::harness::{edges_per_second, fmt_secs, print_table, time};
use parcom_bench::suite::massive_graph;
use parcom_core::{CommunityDetector, Plp};
use parcom_graph::parallel::with_threads;

fn main() {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let g = massive_graph(17, 16);
    println!(
        "PLP strong scaling on uk2007-rmat stand-in (n={}, m={}), host threads: {hw}",
        g.node_count(),
        g.edge_count()
    );

    let max_threads = hw.clamp(4, 32);
    let mut rows = Vec::new();
    let mut t1 = None;
    let mut threads = 1usize;
    while threads <= max_threads {
        let (_, elapsed) = with_threads(threads, || {
            time(|| {
                let mut plp = Plp::new();
                plp.detect(&g)
            })
        });
        let base = *t1.get_or_insert(elapsed.as_secs_f64());
        rows.push(vec![
            threads.to_string(),
            fmt_secs(elapsed),
            format!("{:.2}", base / elapsed.as_secs_f64()),
            format!("{:.1}M", edges_per_second(g.edge_count(), elapsed) / 1e6),
        ]);
        threads *= 2;
    }
    print_table(
        "Fig. 2: PLP strong scaling",
        &["threads", "time_s", "speedup", "edges/s"],
        &rows,
    );
}
