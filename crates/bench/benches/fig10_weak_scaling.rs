//! Figure 10 — weak scaling of PLP (left) and PLM (right) on a series of
//! Kronecker/R-MAT graphs that double in size while the thread count
//! doubles, with the paper's R-MAT parameters (0.57, 0.19, 0.19, 0.05) and
//! edge factor 48. Perfect weak scaling would keep the time flat; the
//! paper shows a visible jump from 1 to 2 threads (parallel overhead) and
//! at the hyperthreading step.

use parcom_bench::harness::{fmt_secs, print_table, time};
use parcom_bench::weak_scaling_series;
use parcom_core::{CommunityDetector, Plm, Plp};
use parcom_graph::parallel::with_threads;

fn main() {
    // paper: log n = 16..22 with 1..32 threads; scaled down for the host
    let series = weak_scaling_series(12, 4, 48);
    let mut rows = Vec::new();
    for (i, (scale, g)) in series.iter().enumerate() {
        let threads = 1usize << i;
        let (t_plp, t_plm) = with_threads(threads, || {
            let (_, t_plp) = time(|| Plp::new().detect(g));
            let (_, t_plm) = time(|| Plm::new().detect(g));
            (t_plp, t_plm)
        });
        rows.push(vec![
            format!("2^{scale}"),
            g.edge_count().to_string(),
            threads.to_string(),
            fmt_secs(t_plp),
            fmt_secs(t_plm),
        ]);
    }
    print_table(
        "Fig. 10: weak scaling on the Kronecker series (R-MAT 0.57/0.19/0.19/0.05, edge factor 48)",
        &["n", "m", "threads", "PLP_time_s", "PLM_time_s"],
        &rows,
    );
}
