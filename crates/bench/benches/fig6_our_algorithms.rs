//! Figure 6 — performance of our algorithms with PLM as the baseline,
//! per network: (a) PLM absolute time and modularity; (b) PLP, (c) PLMR,
//! (d) EPP(4,PLP,PLM), (e) EPP(4,PLP,PLMR), each relative to PLM.
//!
//! Expected shape: PLP solves instances in 10–20% of PLM's time at a clear
//! modularity loss; PLMR adds a little time for a modularity gain; the EPP
//! variants land between PLP and PLM on both axes.

use parcom_bench::harness::{fmt_secs, print_table, run_measured, Measurement};
use parcom_bench::standard_suite;
use parcom_core::{CommunityDetector, Epp, Plm, Plp};

fn algorithms() -> Vec<Box<dyn CommunityDetector + Send>> {
    vec![
        Box::new(Plp::new()),
        Box::new(Plm::with_refinement()),
        Box::new(Epp::plp_plm(4)),
        Box::new(Epp::plp_plmr(4)),
    ]
}

fn main() {
    // (a) the PLM baseline, absolute numbers
    let suite = standard_suite();
    let mut baselines: Vec<(String, Measurement)> = Vec::new();
    let mut rows = Vec::new();
    let mut graphs = Vec::new();
    for inst in &suite {
        let g = inst.graph();
        let (_, m) = run_measured(&mut Plm::new(), &g, inst.name);
        rows.push(vec![
            inst.name.to_string(),
            g.edge_count().to_string(),
            fmt_secs(m.time),
            format!("{:.4}", m.modularity),
            m.communities.to_string(),
        ]);
        baselines.push((inst.name.to_string(), m));
        graphs.push(g);
    }
    print_table(
        "Fig. 6a: PLM baseline (absolute)",
        &["network", "m", "time_s", "modularity", "communities"],
        &rows,
    );

    // (b)-(e): each algorithm relative to PLM
    for mut algo in algorithms() {
        let mut rows = Vec::new();
        for (i, inst) in suite.iter().enumerate() {
            let g = &graphs[i];
            let (_, m) = run_measured(algo.as_mut(), g, inst.name);
            let base = &baselines[i].1;
            rows.push(vec![
                inst.name.to_string(),
                format!("{:.2}", m.time.as_secs_f64() / base.time.as_secs_f64()),
                format!("{:+.4}", m.modularity - base.modularity),
                fmt_secs(m.time),
                format!("{:.4}", m.modularity),
                m.communities.to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 6: {} relative to PLM", algo.name()),
            &[
                "network",
                "time/PLM",
                "mod-PLM",
                "time_s",
                "modularity",
                "communities",
            ],
            &rows,
        );
    }
}
