//! Figure 7 — competitors relative to the PLM baseline, per network:
//! (a) sequential Louvain, (b) CLU_TBB-analogue (PAM) and CEL, (c) RG,
//! (d) CGGC, (e) CGGCi. CNM is included as the classic reference point.
//!
//! Expected shape: Louvain matches PLM's modularity but cannot beat its
//! time on large instances; PAM is fast with a quality gap; CEL is clearly
//! worse in quality; RG and the CGGC ensembles reach the best modularity at
//! by far the highest running times.

use parcom_bench::harness::{
    competitor_algorithms, fmt_secs, print_table, run_measured, Measurement,
};
use parcom_bench::standard_suite;
use parcom_core::Plm;

fn main() {
    let suite = standard_suite();
    let mut baselines: Vec<Measurement> = Vec::new();
    let mut graphs = Vec::new();
    for inst in &suite {
        let g = inst.graph();
        let (_, m) = run_measured(&mut Plm::new(), &g, inst.name);
        baselines.push(m);
        graphs.push(g);
    }

    for mut algo in competitor_algorithms() {
        let mut rows = Vec::new();
        for (i, inst) in suite.iter().enumerate() {
            let g = &graphs[i];
            let (_, m) = run_measured(algo.as_mut(), g, inst.name);
            let base = &baselines[i];
            rows.push(vec![
                inst.name.to_string(),
                format!("{:.2}", m.time.as_secs_f64() / base.time.as_secs_f64()),
                format!("{:+.4}", m.modularity - base.modularity),
                fmt_secs(m.time),
                format!("{:.4}", m.modularity),
                m.communities.to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 7: {} relative to PLM", algo.name()),
            &[
                "network",
                "time/PLM",
                "mod-PLM",
                "time_s",
                "modularity",
                "communities",
            ],
            &rows,
        );
    }
}
