//! The single-construct hygiene rules: `static-mut`, `unsafe-code`,
//! `lossy-cast`, `partial-cmp-unwrap`, `io-unwrap`.

use super::RawViolation;
use crate::lexer::TokenKind;
use crate::model::{match_forward, FileModel};
use crate::{path_allowed, UNSAFE_ALLOWED};

/// `static-mut`: `static mut` anywhere.
pub fn static_mut(model: &FileModel) -> Vec<RawViolation> {
    let toks = &model.lex.tokens;
    (0..toks.len())
        .filter(|&k| {
            toks[k].is_ident("static") && toks.get(k + 1).is_some_and(|t| t.is_ident("mut"))
        })
        .map(|k| RawViolation::at(toks[k].line, toks[k].col))
        .collect()
}

/// `unsafe-code`: the `unsafe` keyword outside the allowlist. Tokens give
/// word boundaries for free: `unsafe_code` in a `forbid` attribute is a
/// different identifier and cannot match.
pub fn unsafe_code(model: &FileModel) -> Vec<RawViolation> {
    if path_allowed(&model.path, UNSAFE_ALLOWED) {
        return Vec::new();
    }
    let toks = &model.lex.tokens;
    (0..toks.len())
        .filter(|&k| toks[k].is_ident("unsafe"))
        .map(|k| RawViolation::at(toks[k].line, toks[k].col))
        .collect()
}

/// Count-returning methods whose value must not be truncated.
const COUNT_METHODS: &[&str] = &["len", "count", "node_count", "edge_count"];
/// Narrow targets a count must not be cast to.
const NARROW_TARGETS: &[&str] = &["u32", "Node"];

/// `lossy-cast`: `<count-method>() as u32` / `as Node`.
pub fn lossy_cast(model: &FileModel) -> Vec<RawViolation> {
    let toks = &model.lex.tokens;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokenKind::Ident || !COUNT_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        // `.len()`/`.count()` only as method calls; the graph accessors
        // also match unqualified
        if matches!(t.text.as_str(), "len" | "count") && !(k > 0 && toks[k - 1].is_punct(".")) {
            continue;
        }
        if toks.get(k + 1).is_some_and(|t| t.is_open('('))
            && toks.get(k + 2).is_some_and(|t| t.is_close(')'))
            && toks.get(k + 3).is_some_and(|t| t.is_ident("as"))
            && toks
                .get(k + 4)
                .is_some_and(|t| NARROW_TARGETS.iter().any(|n| t.is_ident(n)))
        {
            out.push(RawViolation::at(t.line, t.col));
        }
    }
    out
}

/// Methods that consume an `Option<cmp::Ordering>` by panicking.
const PANICKY_UNWRAPS: &[&str] = &["unwrap", "expect"];

/// `partial-cmp-unwrap`: `partial_cmp(..)` whose result is fed through a
/// method chain ending in `unwrap()`/`expect(..)` — a comparator that
/// panics on NaN mid-sort. The chain is followed across lines, so the
/// split form `partial_cmp(b)\n    .expect("NaN")` is caught too.
pub fn partial_cmp_unwrap(model: &FileModel) -> Vec<RawViolation> {
    let toks = &model.lex.tokens;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        if !toks[k].is_ident("partial_cmp") || !toks.get(k + 1).is_some_and(|t| t.is_open('(')) {
            continue;
        }
        let mut j = match_forward(toks, k + 1) + 1;
        // follow the method chain on the returned Option
        while j < toks.len() {
            if toks[j].is_punct("?") {
                j += 1;
                continue;
            }
            if toks[j].is_punct(".")
                && toks.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && toks.get(j + 2).is_some_and(|t| t.is_open('('))
            {
                if PANICKY_UNWRAPS.contains(&toks[j + 1].text.as_str()) {
                    out.push(RawViolation::at(toks[k].line, toks[k].col));
                    break;
                }
                j = match_forward(toks, j + 2) + 1;
                continue;
            }
            break;
        }
    }
    out
}

/// `io-unwrap`: `unwrap()`/`expect(..)` in `crates/io` parsing paths
/// (non-test code only — readers parse untrusted input and must return
/// `IoError`, never panic).
pub fn io_unwrap(model: &FileModel) -> Vec<RawViolation> {
    if !model.path.contains("crates/io/src/") {
        return Vec::new();
    }
    let toks = &model.lex.tokens;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind == TokenKind::Ident
            && PANICKY_UNWRAPS.contains(&t.text.as_str())
            && k > 0
            && toks[k - 1].is_punct(".")
            && toks.get(k + 1).is_some_and(|n| n.is_open('('))
            && !model.in_test(k)
        {
            out.push(RawViolation::at(t.line, t.col));
        }
    }
    out
}
