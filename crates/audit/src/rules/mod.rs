//! The rule implementations, split by concern.
//!
//! Every intra-file rule is a pure function `&FileModel -> Vec<RawViolation>`
//! registered in [`FILE_RULES`]; the framework in `lib.rs` owns
//! allow-marker filtering, per-line dedup, excerpts, per-rule timing and
//! marker-usage accounting, so a rule only states *where it fires*. The
//! one interprocedural rule (`budget-propagation`) runs over all file
//! models at once and lives in [`budget::propagation`].
//!
//! To add a rule: add a variant to [`crate::Rule`] (name + doc), write
//! the `fn(&FileModel) -> Vec<RawViolation>` here, register it in
//! [`FILE_RULES`], add one tripping and one clean fixture under
//! `tests/fixtures/`, and document it in DESIGN.md §12.

pub mod basic;
pub mod budget;
pub mod orderings;
pub mod parallel;

use crate::callgraph::ChainLink;
use crate::model::FileModel;
use crate::Rule;

/// A rule firing before the framework applies allow-markers, dedup and
/// excerpts.
#[derive(Clone, Debug)]
pub struct RawViolation {
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based column of the finding's first token.
    pub col: u32,
    /// Extra human-readable evidence (e.g. the par-call site a lock guard
    /// is still live at).
    pub note: Option<String>,
    /// Call-chain evidence for interprocedural findings (root first).
    pub chain: Vec<ChainLink>,
}

impl RawViolation {
    /// A finding at a position, no extra evidence.
    pub fn at(line: u32, col: u32) -> Self {
        Self {
            line,
            col,
            note: None,
            chain: Vec::new(),
        }
    }

    /// Attaches a note.
    pub fn with_note(mut self, note: String) -> Self {
        self.note = Some(note);
        self
    }
}

/// Signature of an intra-file rule.
pub type FileRuleFn = fn(&FileModel) -> Vec<RawViolation>;

/// Every intra-file rule with its [`Rule`] tag, in reporting order.
/// `budget-propagation` is absent: it needs the workspace call graph and
/// is dispatched separately (see `lib.rs`).
pub const FILE_RULES: &[(Rule, FileRuleFn)] = &[
    (Rule::AtomicOrdering, orderings::atomic_ordering),
    (Rule::StaticMut, basic::static_mut),
    (Rule::UnsafeCode, basic::unsafe_code),
    (Rule::PartialCmpUnwrap, basic::partial_cmp_unwrap),
    (Rule::LossyCast, basic::lossy_cast),
    (Rule::IoUnwrap, basic::io_unwrap),
    (Rule::BudgetCheck, budget::budget_check),
    (Rule::LockAcrossParallel, parallel::lock_across_parallel),
    (Rule::PanicInParallel, parallel::panic_in_parallel),
    (Rule::OrderingEscalation, orderings::ordering_escalation),
];
