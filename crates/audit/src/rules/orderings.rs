//! Atomic-ordering rules: where `Ordering::*` may appear at all
//! (`atomic-ordering`) and how strong it may be where it is allowed
//! (`ordering-escalation`).

use super::RawViolation;
use crate::model::FileModel;
use crate::{path_allowed, ORDERING_ALLOWED};

/// Atomic memory-`Ordering` variant names. The `cmp::Ordering` variants
/// (`Less`, `Equal`, `Greater`) are disjoint, so a token match on these
/// names cannot confuse the two enums.
const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Variants stronger than the documented `Relaxed`(-write)/`Acquire`(-read)
/// protocol of the benign-race design (DESIGN.md §7): any of these in a
/// reviewed atomic module means the protocol changed and the paper-style
/// race argument needs re-review.
const ESCALATED_VARIANTS: &[&str] = &["Release", "AcqRel", "SeqCst"];

/// Finds `Ordering::<variant>` token triples, returning `(line, col,
/// variant)` per occurrence.
fn ordering_sites<'m>(model: &'m FileModel, variants: &[&str]) -> Vec<(u32, u32, &'m str)> {
    let toks = &model.lex.tokens;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        if toks[k].is_ident("Ordering")
            && toks.get(k + 1).is_some_and(|t| t.is_punct("::"))
            && toks
                .get(k + 2)
                .is_some_and(|t| variants.iter().any(|v| t.is_ident(v)))
        {
            out.push((toks[k].line, toks[k].col, toks[k + 2].text.as_str()));
        }
    }
    out
}

/// `atomic-ordering`: any atomic `Ordering` variant outside the reviewed
/// module allowlist.
pub fn atomic_ordering(model: &FileModel) -> Vec<RawViolation> {
    if path_allowed(&model.path, ORDERING_ALLOWED) {
        return Vec::new();
    }
    ordering_sites(model, ATOMIC_VARIANTS)
        .into_iter()
        .map(|(line, col, _)| RawViolation::at(line, col))
        .collect()
}

/// `ordering-escalation`: inside the reviewed modules, any ordering
/// stronger than the documented `Relaxed`/`Acquire` pairs.
pub fn ordering_escalation(model: &FileModel) -> Vec<RawViolation> {
    if !path_allowed(&model.path, ORDERING_ALLOWED) {
        // outside the allowlist `atomic-ordering` already rejects every
        // variant; double-reporting the same token helps nobody
        return Vec::new();
    }
    ordering_sites(model, ESCALATED_VARIANTS)
        .into_iter()
        .map(|(line, col, v)| {
            RawViolation::at(line, col).with_note(format!(
                "Ordering::{v} is stronger than the documented Relaxed/Acquire protocol"
            ))
        })
        .collect()
}
