//! The rayon-hygiene rules: `lock-across-parallel` and
//! `panic-in-parallel`. Both need the same two derived views of a file:
//! the *parallel regions* (token spans of `.par_*` / `rayon::join|scope`
//! call chains) and the *closure bodies* fed into them.

use super::RawViolation;
use crate::lexer::{Token, TokenKind};
use crate::model::{is_par_site, match_forward, FileModel};

/// A closure literal: the token starting it (`|` or `||`) and the
/// half-open token range of its body.
struct Closure {
    start: usize,
    body: (usize, usize),
}

/// Token spans `[start, end)` of parallel call chains: from a parallel
/// call site to the end of its statement / argument position.
fn par_regions(model: &FileModel) -> Vec<(usize, usize)> {
    let toks = &model.lex.tokens;
    let mut out: Vec<(usize, usize)> = Vec::new();
    for k in 0..toks.len() {
        if !is_par_site(toks, k) {
            continue;
        }
        // extend a previous region instead of re-walking overlapping spans
        if out.last().is_some_and(|&(_, e)| k < e) {
            continue;
        }
        let mut depth: i64 = 0;
        let mut j = k + 1;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Open => depth += 1,
                TokenKind::Close if depth == 0 => break, // closes an enclosing delimiter
                TokenKind::Close => depth -= 1,
                TokenKind::Punct if depth == 0 && (toks[j].text == ";" || toks[j].text == ",") => {
                    break
                }
                _ => {}
            }
            j += 1;
        }
        out.push((k, j));
    }
    out
}

/// True when the token before index `k` can precede a closure literal
/// (rather than making `|` a binary operator or a pattern alternative).
fn closure_can_start_after(prev: Option<&Token>) -> bool {
    match prev {
        None => true,
        Some(t) => {
            t.kind == TokenKind::Open
                || matches!(
                    t.text.as_str(),
                    "," | ";" | "=" | "=>" | "&&" | "!" | "?" | ":"
                )
                || t.is_ident("move")
                || t.is_ident("return")
                || t.is_ident("else")
        }
    }
}

/// All closure literals in a file with their body spans. Brace bodies use
/// the matched `{ … }`; expression bodies run to the `,`/`;`/closing
/// delimiter ending them.
fn closure_bodies(model: &FileModel) -> Vec<Closure> {
    let toks = &model.lex.tokens;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        let params_end = if t.is_punct("||")
            && closure_can_start_after(k.checked_sub(1).map(|p| &toks[p]))
        {
            k
        } else if t.is_punct("|") && closure_can_start_after(k.checked_sub(1).map(|p| &toks[p])) {
            // find the closing `|` of the parameter list
            let mut depth: i64 = 0;
            let mut j = k + 1;
            while let Some(p) = toks.get(j) {
                match p.kind {
                    TokenKind::Open => depth += 1,
                    TokenKind::Close => depth -= 1,
                    TokenKind::Punct if depth == 0 && p.text == "|" => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            j
        } else {
            continue;
        };
        // optional `-> Type`, then the body
        let mut m = params_end + 1;
        if toks.get(m).is_some_and(|t| t.is_punct("->")) {
            let mut depth: i64 = 0;
            while m < toks.len() {
                match toks[m].kind {
                    TokenKind::Open if depth == 0 && toks[m].is_open('{') => break,
                    TokenKind::Open => depth += 1,
                    TokenKind::Close => depth -= 1,
                    _ => {}
                }
                m += 1;
            }
        }
        let body = match toks.get(m) {
            Some(t) if t.is_open('{') => (m + 1, match_forward(toks, m)),
            Some(_) => {
                // expression body: to the `,`/`;`/enclosing-close ending it
                let mut depth: i64 = 0;
                let mut e = m;
                while e < toks.len() {
                    match toks[e].kind {
                        TokenKind::Open => depth += 1,
                        TokenKind::Close if depth == 0 => break,
                        TokenKind::Close => depth -= 1,
                        TokenKind::Punct
                            if depth == 0 && (toks[e].text == "," || toks[e].text == ";") =>
                        {
                            break
                        }
                        _ => {}
                    }
                    e += 1;
                }
                (m, e)
            }
            None => continue,
        };
        out.push(Closure { start: k, body });
    }
    out
}

/// Macro names that unconditionally panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `panic-in-parallel`: `unwrap()`, `expect(..)` or a panicking macro
/// inside a closure that is fed into a parallel call chain, outside test
/// code. One worker panicking tears down the whole rayon pool mid-run —
/// parallel closures must stay total. `assert!` family is deliberately
/// not matched: precondition checks in parallel code are the documented
/// contract (`builder.rs` validates edge endpoints that way), while
/// `unwrap` is an unhandled `Option`/`Result` path.
pub fn panic_in_parallel(model: &FileModel) -> Vec<RawViolation> {
    let toks = &model.lex.tokens;
    let regions = par_regions(model);
    if regions.is_empty() {
        return Vec::new();
    }
    let par_closures: Vec<Closure> = closure_bodies(model)
        .into_iter()
        .filter(|c| regions.iter().any(|&(s, e)| c.start > s && c.start < e))
        .collect();
    if par_closures.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let what = if matches!(t.text.as_str(), "unwrap" | "expect")
            && k > 0
            && toks[k - 1].is_punct(".")
            && toks.get(k + 1).is_some_and(|n| n.is_open('('))
        {
            format!(".{}(..)", t.text)
        } else if PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
        {
            format!("{}!", t.text)
        } else {
            continue;
        };
        if model.in_test(k) {
            continue;
        }
        if par_closures.iter().any(|c| k >= c.body.0 && k < c.body.1) {
            out.push(RawViolation::at(t.line, t.col).with_note(format!(
                "{what} inside a parallel closure tears down the worker pool on failure"
            )));
        }
    }
    out
}

/// Chained methods that keep returning the *guard* (or a `Result`/`Option`
/// of it) rather than a value extracted from it.
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// `lock-across-parallel`: a `.lock()` / `.borrow_mut()` guard that is
/// still live when a parallel region is issued in the same scope. Workers
/// contending for the held lock serialize (or deadlock, for a re-entrant
/// borrow); the guard must be dropped — scoped or `drop()`ed — before
/// fanning out.
///
/// A *bound* guard (`let g = m.lock().unwrap();`) is live from its
/// statement to the end of its scope or an explicit `drop(g)`. A
/// *temporary* guard (`m.lock().unwrap().pop()`) dies at its statement's
/// end and only trips the rule if that same statement issues parallel
/// work.
pub fn lock_across_parallel(model: &FileModel) -> Vec<RawViolation> {
    let toks = &model.lex.tokens;
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if !(t.is_ident("lock") || t.is_ident("borrow_mut"))
            || !(k > 0 && toks[k - 1].is_punct("."))
            || !toks.get(k + 1).is_some_and(|n| n.is_open('('))
            || !toks.get(k + 2).is_some_and(|n| n.is_close(')'))
            || model.in_test(k)
        {
            continue;
        }
        // statement extent around the lock call
        let mut stmt_start = 0usize;
        for j in (0..k).rev() {
            if toks[j].is_punct(";") || toks[j].is_open('{') || toks[j].is_close('}') {
                stmt_start = j + 1;
                break;
            }
        }
        let mut depth: i64 = 0;
        let mut stmt_end = k;
        while stmt_end < toks.len() {
            match toks[stmt_end].kind {
                TokenKind::Open => depth += 1,
                TokenKind::Close if depth == 0 => break,
                TokenKind::Close => depth -= 1,
                TokenKind::Punct if depth == 0 && toks[stmt_end].text == ";" => break,
                _ => {}
            }
            stmt_end += 1;
        }
        // follow the guard-preserving chain after `.lock()`
        let mut j = k + 3;
        while j < toks.len() {
            if toks[j].is_punct("?") {
                j += 1;
            } else if toks[j].is_punct(".")
                && toks
                    .get(j + 1)
                    .is_some_and(|n| GUARD_PRESERVING.contains(&n.text.as_str()))
                && toks.get(j + 2).is_some_and(|n| n.is_open('('))
            {
                j = match_forward(toks, j + 2) + 1;
            } else {
                break;
            }
        }
        let transformed = toks.get(j).is_some_and(|n| n.is_punct("."));
        let bound = toks.get(stmt_start).is_some_and(|n| n.is_ident("let")) && !transformed;

        let live = if bound {
            // binding name (skip `mut`; destructured guards keep None and
            // fall back to scope-end liveness)
            let mut n = stmt_start + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            let name = toks
                .get(n)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
            let scope = model.scopes.at(k);
            let mut end = model.scopes.scopes[scope].close;
            if let Some(name) = &name {
                for d in stmt_end..end.min(toks.len()) {
                    if toks[d].is_ident("drop")
                        && toks.get(d + 1).is_some_and(|t| t.is_open('('))
                        && toks.get(d + 2).is_some_and(|t| t.is_ident(name))
                    {
                        end = d;
                        break;
                    }
                }
            }
            (stmt_end, end)
        } else {
            (k, stmt_end)
        };

        if let Some(p) = (live.0..live.1.min(toks.len())).find(|&j| is_par_site(toks, j)) {
            out.push(RawViolation::at(t.line, t.col).with_note(format!(
                "guard from `.{}()` is still live at the parallel call `{}` on line {}",
                t.text, toks[p].text, toks[p].line
            )));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn m(src: &str) -> FileModel {
        FileModel::build("crates/x/src/lib.rs", src)
    }

    #[test]
    fn unwrap_in_par_closure_fires() {
        let v = panic_in_parallel(&m(
            "fn f(xs: &[Option<u32>]) {\n    xs.par_iter().map(|x| x.unwrap()).sum::<u32>();\n}\n",
        ));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_outside_the_parallel_chain_is_fine() {
        let v = panic_in_parallel(&m(
            "fn f(xs: &[u32]) {\n    let n = first().unwrap();\n    xs.par_iter().map(|x| x + n).sum::<u32>();\n}\n",
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_macro_in_rayon_join_fires() {
        let v = panic_in_parallel(&m(
            "fn f() {\n    rayon::join(|| work(), || panic!(\"boom\"));\n}\n",
        ));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn brace_bodied_closure_in_for_each_fires() {
        let v = panic_in_parallel(&m(
            "fn f(xs: &[Option<u32>]) {\n    xs.par_iter().for_each(|x| {\n        let v = x.expect(\"present\");\n        work(v);\n    });\n}\n",
        ));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn bound_guard_live_at_par_fires() {
        let v = lock_across_parallel(&m(
            "fn f(m: &Mutex<Vec<u32>>, xs: &[u32]) {\n    let g = m.lock().unwrap();\n    xs.par_iter().for_each(|x| work(*x, &g));\n}\n",
        ));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn dropped_guard_is_fine() {
        let v = lock_across_parallel(&m(
            "fn f(m: &Mutex<Vec<u32>>, xs: &[u32]) {\n    let g = m.lock().unwrap();\n    let n = g.len();\n    drop(g);\n    xs.par_iter().for_each(|x| work(*x, n));\n}\n",
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn temporary_guard_statement_is_fine() {
        // the ScratchPool idiom: lock, pop, guard dies with the statement
        let v = lock_across_parallel(&m(
            "fn f(m: &Mutex<Vec<u32>>, xs: &[u32]) {\n    let popped = m.lock().unwrap().pop();\n    xs.par_iter().for_each(work);\n}\n",
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn temporary_guard_inside_a_par_statement_fires() {
        let v = lock_across_parallel(&m(
            "fn f(m: &Mutex<Vec<u32>>, xs: &[u32]) {\n    consume(m.lock().unwrap(), xs.par_iter().sum::<u32>());\n}\n",
        ));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn scoped_guard_before_par_is_fine() {
        let v = lock_across_parallel(&m(
            "fn f(m: &Mutex<Vec<u32>>, xs: &[u32]) {\n    let n = { let g = m.lock().unwrap(); g.len() };\n    xs.par_iter().for_each(|x| work(*x, n));\n}\n",
        ));
        assert!(v.is_empty(), "{v:?}");
    }
}
