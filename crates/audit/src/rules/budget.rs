//! The cooperative-cancellation rules: intra-function `budget-check` and
//! interprocedural `budget-propagation`.

use super::RawViolation;
use crate::callgraph::{propagate_budgets, CallGraph};
use crate::model::{is_par_site, range_has_budget_check, FileModel};

/// `budget-check`: inside a `budget: &Budget` function, every *outermost*
/// loop that does real work (contains a nested loop or a parallel call)
/// must call `budget.check*` somewhere in its extent. Single-level
/// bookkeeping loops are exempt — budget checks are amortized at
/// sweep/merge granularity by design, never per element.
pub fn budget_check(model: &FileModel) -> Vec<RawViolation> {
    let toks = &model.lex.tokens;
    let mut out = Vec::new();
    for f in &model.fns {
        if !f.takes_budget || f.is_test {
            continue;
        }
        for l in f.loops.iter().filter(|l| l.outermost) {
            let end = l.body_close.min(toks.len());
            let heavy = (l.kw_tok..end).any(|k| is_par_site(toks, k))
                || f.loops
                    .iter()
                    .any(|o| o.kw_tok != l.kw_tok && o.kw_tok > l.kw_tok && o.kw_tok < end);
            if heavy && !range_has_budget_check(toks, l.kw_tok, end) {
                out.push(
                    RawViolation::at(l.header_line, toks[l.kw_tok].col).with_note(format!(
                        "outermost heavy loop in `{}` never calls budget.check*",
                        f.name
                    )),
                );
            }
        }
    }
    out
}

/// `budget-propagation` over a whole set of file models: heavy functions
/// reachable from a budgeted root without taking the budget themselves.
/// Returns `(file index, finding)` pairs; the chain evidence rides on the
/// violation. Allow-filtering happens in the framework like for every
/// other rule (the marker sits on the offending function's `fn` line).
pub fn propagation(models: &[FileModel]) -> Vec<(usize, RawViolation)> {
    let graph = CallGraph::build(models);
    propagate_budgets(&graph)
        .into_iter()
        .map(|finding| {
            let item = graph.item(finding.def);
            let col = graph.file(finding.def).lex.tokens[item.fn_tok].col;
            let mut v = RawViolation::at(item.line, col).with_note(format!(
                "heavy function `{}` is reachable from a budgeted root but takes no budget",
                item.name
            ));
            v.chain = finding.chain;
            (finding.def.0, v)
        })
        .collect()
}
