//! Workspace-level, name-based call graph and the interprocedural
//! `budget-propagation` walk.
//!
//! Resolution is deliberately modest: a call site `name(…)` resolves to
//! the workspace function of that name **iff the name has exactly one
//! definition** across the scanned files. Ambiguous names (`new`, `run`,
//! trait methods implemented many times) are skipped rather than guessed —
//! a lint must not hallucinate edges. That still closes the hole the
//! intra-function `budget-check` rule cannot see: helpers extracted from
//! a `run_guarded` body have workspace-unique names in practice, and the
//! walk follows them transitively.

use crate::model::{FileModel, FnItem};
use std::collections::HashMap;

/// A function definition: (file index, fn index within the file).
pub type DefId = (usize, usize);

/// One hop of the call-chain evidence attached to an interprocedural
/// finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// Workspace-relative file of the function.
    pub file: String,
    /// 1-based line of its `fn` keyword.
    pub line: u32,
    /// The function's name.
    pub function: String,
}

impl std::fmt::Display for ChainLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {}", self.file, self.line, self.function)
    }
}

/// The name-based call graph over a set of file models.
pub struct CallGraph<'a> {
    models: &'a [FileModel],
    /// name -> all definitions of that name (non-test code only).
    by_name: HashMap<&'a str, Vec<DefId>>,
}

impl<'a> CallGraph<'a> {
    /// Indexes every non-test function definition.
    pub fn build(models: &'a [FileModel]) -> Self {
        let mut by_name: HashMap<&'a str, Vec<DefId>> = HashMap::new();
        for (fi, m) in models.iter().enumerate() {
            for (gi, f) in m.fns.iter().enumerate() {
                if f.is_test || m.is_test_file() {
                    continue;
                }
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
        Self { models, by_name }
    }

    /// The unique definition of `name`, if exactly one exists.
    pub fn resolve_unique(&self, name: &str) -> Option<DefId> {
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// The function item behind a [`DefId`].
    pub fn item(&self, id: DefId) -> &FnItem {
        &self.models[id.0].fns[id.1]
    }

    /// The file model behind a [`DefId`].
    pub fn file(&self, id: DefId) -> &FileModel {
        &self.models[id.0]
    }

    /// All non-test functions taking `budget: &Budget` — the roots of the
    /// propagation walk, in deterministic (file, fn) order.
    pub fn budget_roots(&self) -> Vec<DefId> {
        let mut roots = Vec::new();
        for (fi, m) in self.models.iter().enumerate() {
            if m.is_test_file() {
                continue;
            }
            for (gi, f) in m.fns.iter().enumerate() {
                if f.takes_budget && !f.is_test {
                    roots.push((fi, gi));
                }
            }
        }
        roots
    }

    /// One [`ChainLink`] describing a definition.
    pub fn link(&self, id: DefId) -> ChainLink {
        let f = self.item(id);
        ChainLink {
            file: self.file(id).path.clone(),
            line: f.line,
            function: f.name.clone(),
        }
    }
}

/// A `budget-propagation` finding before allow-filtering: a heavy,
/// budget-less function reachable from a budgeted one, with the shortest
/// call chain as evidence (root first, offender last).
#[derive(Clone, Debug)]
pub struct PropagationFinding {
    /// The offending definition.
    pub def: DefId,
    /// Call chain from a budgeted root to the offender.
    pub chain: Vec<ChainLink>,
}

/// Walks the call graph breadth-first from every budgeted root and
/// returns each heavy, budget-less function reachable from one, with its
/// shortest call chain. The walk does not descend through functions that
/// take a budget themselves (they are roots of their own walks and are
/// covered by the intra-function `budget-check` rule) nor through
/// functions carrying an `audit:allow(budget-propagation)` marker (the
/// reviewer accepted that subtree); light functions are traversed so a
/// thin wrapper cannot hide a heavy helper.
pub fn propagate_budgets(graph: &CallGraph<'_>) -> Vec<PropagationFinding> {
    use std::collections::VecDeque;
    let mut visited: HashMap<DefId, ()> = HashMap::new();
    let mut findings = Vec::new();
    // queue of (def, chain up to and including def)
    let mut queue: VecDeque<(DefId, Vec<ChainLink>)> = VecDeque::new();

    for root in graph.budget_roots() {
        if visited.insert(root, ()).is_some() {
            continue;
        }
        queue.push_back((root, vec![graph.link(root)]));
    }

    while let Some((id, chain)) = queue.pop_front() {
        for call in &graph.item(id).calls {
            let Some(callee) = graph.resolve_unique(&call.name) else {
                continue;
            };
            if visited.contains_key(&callee) {
                continue;
            }
            visited.insert(callee, ());
            let f = graph.item(callee);
            if f.takes_budget {
                continue; // its own root; budget-check audits its body
            }
            let m = graph.file(callee);
            let allowed = m.find_allow("budget-propagation", f.line).is_some();
            let mut next_chain = chain.clone();
            next_chain.push(graph.link(callee));
            if f.is_heavy() {
                // emitted even when allow-marked: the rule layer suppresses
                // the finding and accounts the marker as used
                findings.push(PropagationFinding {
                    def: callee,
                    chain: next_chain,
                });
            } else if !allowed {
                // a marker on a light wrapper stops the walk (the reviewer
                // accepted the subtree); otherwise keep descending
                queue.push_back((callee, next_chain));
            }
        }
    }

    findings.sort_by(|a, b| {
        let fa = (&graph.file(a.def).path, graph.item(a.def).line);
        let fb = (&graph.file(b.def).path, graph.item(b.def).line);
        fa.cmp(&fb)
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn model(src: &str) -> Vec<FileModel> {
        vec![FileModel::build("crates/x/src/lib.rs", src)]
    }

    #[test]
    fn flags_heavy_helper_reachable_from_budget_fn() {
        let src = "\
fn run_guarded(g: &Graph, budget: &Budget) {\n    helper(g);\n}\n\
fn helper(g: &Graph) {\n    for s in 0..10 {\n        for u in g.nodes() {\n            work(u);\n        }\n    }\n}\n";
        let models = model(src);
        let graph = CallGraph::build(&models);
        let findings = propagate_budgets(&graph);
        assert_eq!(findings.len(), 1);
        let chain: Vec<String> = findings[0].chain.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            chain,
            vec![
                "crates/x/src/lib.rs:1 run_guarded",
                "crates/x/src/lib.rs:4 helper"
            ]
        );
    }

    #[test]
    fn walks_through_thin_wrappers() {
        let src = "\
fn run_guarded(g: &Graph, budget: &Budget) {\n    wrapper(g);\n}\n\
fn wrapper(g: &Graph) {\n    deep(g)\n}\n\
fn deep(g: &Graph) {\n    g.nodes().par_iter().for_each(work);\n}\n";
        let models = model(src);
        let graph = CallGraph::build(&models);
        let findings = propagate_budgets(&graph);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].chain.len(), 3);
        assert_eq!(findings[0].chain[2].function, "deep");
    }

    #[test]
    fn budgeted_callees_and_ambiguous_names_stop_the_walk() {
        let src = "\
fn run_guarded(g: &Graph, budget: &Budget) {\n    checked(g, budget);\n    twin(g);\n}\n\
fn checked(g: &Graph, budget: &Budget) {\n    for s in 0..10 { for u in g.nodes() { budget.check(); } }\n}\n\
mod a { fn twin(g: &Graph) { for s in 0..10 { for u in g.nodes() { work(u); } } } }\n\
mod b { fn twin(g: &Graph) { g.nodes().par_iter().sum(); } }\n";
        let models = model(src);
        let graph = CallGraph::build(&models);
        assert!(graph.resolve_unique("twin").is_none(), "two defs: skipped");
        assert!(propagate_budgets(&graph).is_empty());
    }

    #[test]
    fn allow_marked_helper_still_surfaces_for_marker_accounting() {
        let src = "\
fn run_guarded(g: &Graph, budget: &Budget) {\n    helper(g);\n}\n\
// audit:allow(budget-propagation): one amortized unit of work per call\n\
fn helper(g: &Graph) {\n    g.nodes().par_iter().for_each(work);\n}\n";
        let models = model(src);
        let graph = CallGraph::build(&models);
        // the graph layer reports it; the rule layer suppresses it and
        // marks the marker used (covered by the lib-level tests)
        let findings = propagate_budgets(&graph);
        assert_eq!(findings.len(), 1);
        assert!(models[0]
            .find_allow("budget-propagation", graph.item(findings[0].def).line)
            .is_some());
    }

    #[test]
    fn light_leaves_are_quietly_fine() {
        let src = "\
fn run_guarded(g: &Graph, budget: &Budget) {\n    bookkeeping(g);\n}\n\
fn bookkeeping(g: &Graph) -> usize {\n    let mut t = 0;\n    for u in g.nodes() { t += 1; }\n    t\n}\n";
        let models = model(src);
        let graph = CallGraph::build(&models);
        assert!(propagate_budgets(&graph).is_empty());
    }
}
