//! Brace-matched scope tree over a token stream.
//!
//! Every `{ … }` pair becomes a scope node; the tree records nesting,
//! spans (token-index ranges) and whether a scope is *test code* — the
//! body introduced by a `#[cfg(test)]` or `#[test]` attribute, which
//! several rules exempt. A virtual root scope covers the whole file so
//! every token has an innermost scope.

use crate::lexer::{LexedFile, Token, TokenKind};

/// One brace scope: the token range between a `{` and its matching `}`.
#[derive(Clone, Debug)]
pub struct Scope {
    /// Parent scope index (the root scope is its own parent).
    pub parent: usize,
    /// Token index of the opening `{` (`usize::MAX` for the root).
    pub open: usize,
    /// Token index of the matching `}` (`tokens.len()` when unclosed —
    /// truncated input must not crash the lint).
    pub close: usize,
    /// Nesting depth; the root is 0.
    pub depth: usize,
    /// True when this scope (or an ancestor) is introduced by a
    /// `#[cfg(test)]` / `#[test]` attribute — test code.
    pub is_test: bool,
}

/// The scope tree of one file plus a token→innermost-scope map.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// All scopes; index 0 is the virtual whole-file root.
    pub scopes: Vec<Scope>,
    /// For each token index, the innermost scope containing it.
    pub scope_of: Vec<usize>,
}

impl ScopeTree {
    /// Builds the tree for a lexed file.
    pub fn build(lex: &LexedFile) -> Self {
        let tokens = &lex.tokens;
        let mut scopes = vec![Scope {
            parent: 0,
            open: usize::MAX,
            close: tokens.len(),
            depth: 0,
            is_test: false,
        }];
        let mut scope_of = vec![0usize; tokens.len()];
        let mut stack = vec![0usize];

        for (i, t) in tokens.iter().enumerate() {
            let current = *stack.last().unwrap();
            scope_of[i] = current;
            if t.is_open('{') {
                let parent = current;
                let is_test = scopes[parent].is_test || header_marks_test(tokens, i);
                scopes.push(Scope {
                    parent,
                    open: i,
                    close: tokens.len(),
                    depth: scopes[parent].depth + 1,
                    is_test,
                });
                stack.push(scopes.len() - 1);
            } else if t.is_close('}') && stack.len() > 1 {
                let s = stack.pop().unwrap();
                scopes[s].close = i;
                scope_of[i] = s; // the `}` belongs to the scope it closes
            }
        }
        Self { scopes, scope_of }
    }

    /// True when token `tok` lies in test code.
    pub fn in_test(&self, tok: usize) -> bool {
        self.scope_of
            .get(tok)
            .map(|&s| self.scopes[s].is_test)
            .unwrap_or(false)
    }

    /// Innermost scope of token `tok` (root for out-of-range indices).
    pub fn at(&self, tok: usize) -> usize {
        self.scope_of.get(tok).copied().unwrap_or(0)
    }

    /// True when scope `inner` is `outer` or nested inside it.
    pub fn is_within(&self, mut inner: usize, outer: usize) -> bool {
        loop {
            if inner == outer {
                return true;
            }
            let p = self.scopes[inner].parent;
            if p == inner {
                return false;
            }
            inner = p;
        }
    }
}

/// Decides whether the item header introducing the `{` at token `open`
/// carries a test attribute. The header is the token run since the last
/// `;`, `{` or `}` — i.e. since the end of the previous item/statement.
fn header_marks_test(tokens: &[Token], open: usize) -> bool {
    let mut start = 0;
    for (j, t) in tokens[..open].iter().enumerate().rev() {
        if t.is_punct(";") || t.is_open('{') || t.is_close('}') {
            start = j + 1;
            break;
        }
    }
    // look for `# [ … test … ]` attribute groups in the header
    let header = &tokens[start..open];
    let mut k = 0;
    while k < header.len() {
        if header[k].is_punct("#") {
            // optional `!`, then `[`
            let mut j = k + 1;
            if j < header.len() && header[j].is_punct("!") {
                j += 1;
            }
            if j < header.len() && header[j].is_open('[') {
                let mut depth = 0usize;
                for (off, t) in header[j..].iter().enumerate() {
                    if t.kind == TokenKind::Open {
                        depth += 1;
                    } else if t.kind == TokenKind::Close {
                        depth -= 1;
                        if depth == 0 {
                            k = j + off;
                            break;
                        }
                    } else if t.is_ident("test") {
                        return true;
                    }
                }
            }
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn nesting_and_spans() {
        let l = lex("fn a() { if x { y(); } }\nfn b() {}\n");
        let t = ScopeTree::build(&l);
        // root + fn a body + if body + fn b body
        assert_eq!(t.scopes.len(), 4);
        assert_eq!(t.scopes[1].depth, 1);
        assert_eq!(t.scopes[2].depth, 2);
        assert_eq!(t.scopes[2].parent, 1);
        assert!(t.is_within(2, 1));
        assert!(!t.is_within(3, 1));
    }

    #[test]
    fn cfg_test_marks_module_bodies() {
        let src = "fn prod() { work(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { helper(); }\n}\n";
        let l = lex(src);
        let t = ScopeTree::build(&l);
        let helper = l
            .tokens
            .iter()
            .position(|tok| tok.is_ident("helper"))
            .unwrap();
        let work = l
            .tokens
            .iter()
            .position(|tok| tok.is_ident("work"))
            .unwrap();
        assert!(t.in_test(helper));
        assert!(!t.in_test(work));
    }

    #[test]
    fn cfg_feature_strings_do_not_mark_test() {
        // "test" inside a *string* must not count — only the ident form
        let src = "#[cfg(feature = \"test-utils\")]\nmod m { fn f() { x(); } }\n";
        let l = lex(src);
        let t = ScopeTree::build(&l);
        let x = l.tokens.iter().position(|tok| tok.is_ident("x")).unwrap();
        assert!(!t.in_test(x));
    }

    #[test]
    fn unclosed_scope_does_not_panic() {
        let l = lex("fn a() { if x { y();\n");
        let t = ScopeTree::build(&l);
        assert!(t.scopes.len() >= 2);
        assert_eq!(t.scopes.last().unwrap().close, l.tokens.len());
    }
}
