//! A minimal, dependency-free Rust lexer producing a token stream with
//! line/column spans.
//!
//! The audit's rules are discipline rules about where certain constructs
//! may appear; deciding them reliably needs exactly the token forms that
//! can hide or fake a pattern handled for real: line comments, nested
//! block comments, string literals with escapes, raw strings `r#".."#`,
//! byte strings, char literals, and lifetimes (so `'a` is not mistaken
//! for an unterminated char literal). Literal *contents* are blanked —
//! a string containing `"unsafe"` yields an empty [`TokenKind::Str`]
//! token — and comment text is collected per line so `audit:allow`
//! markers can be found without ever confusing them with code.
//!
//! This is a lexer, not a parser: no precedence, no types. The scope
//! tree ([`crate::scopes`]) and file model ([`crate::model`]) layer the
//! structure the rules need on top of this stream.

/// Classification of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `budget`, `Ordering`, …).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Numeric literal (`0`, `1e-5`, `0xff`, `1_000u64`).
    Number,
    /// String-ish literal (`"…"`, `r#"…"#`, `b"…"`); content blanked.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`); content blanked.
    Char,
    /// Operator or punctuation; multi-char operators (`::`, `->`, `=>`,
    /// `..`, `&&`, …) are single tokens.
    Punct,
    /// Opening delimiter: `(`, `[` or `{` (which one is in `text`).
    Open,
    /// Closing delimiter: `)`, `]` or `}` (which one is in `text`).
    Close,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's text (literal contents blanked: `""`, `''`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for an identifier token with exactly this text.
    #[inline]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    #[inline]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// True for the opening delimiter `d`.
    #[inline]
    pub fn is_open(&self, d: char) -> bool {
        self.kind == TokenKind::Open && self.text.starts_with(d)
    }

    /// True for the closing delimiter `d`.
    #[inline]
    pub fn is_close(&self, d: char) -> bool {
        self.kind == TokenKind::Close && self.text.starts_with(d)
    }
}

/// A lexed source file: the token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment text per line (0-indexed; all comments on a line
    /// concatenated, including doc comments and block-comment interiors).
    pub comments: Vec<String>,
    /// Number of source lines.
    pub line_count: usize,
}

impl LexedFile {
    /// True when line `line` (1-based) holds no code tokens — only
    /// whitespace and/or comments.
    pub fn is_comment_only_line(&self, line: u32) -> bool {
        self.tokens.binary_search_by(|t| t.line.cmp(&line)).is_err()
    }

    /// Comment text on 1-based `line`, or `""` past the end.
    pub fn comment_on(&self, line: u32) -> &str {
        self.comments
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Two- and three-char operators joined into single [`TokenKind::Punct`]
/// tokens (longest match first).
const JOINED_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes Rust source into a [`LexedFile`]. Never fails: malformed input
/// (unterminated literals, stray bytes) degrades to best-effort tokens,
/// which is the right behavior for a lint that must not crash on the
/// code it audits.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = vec![String::new()];
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut i = 0;

    // advances over chars[i..i+n], updating line/col bookkeeping
    macro_rules! advance {
        ($n:expr) => {{
            let n: usize = $n;
            for _ in 0..n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                        comments.push(String::new());
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }
    // consumes a quoted literal body through the closing `q`, honoring \escapes
    macro_rules! consume_quoted {
        ($q:expr) => {{
            while i < chars.len() {
                if chars[i] == '\\' {
                    advance!(2);
                } else if chars[i] == $q {
                    advance!(1);
                    break;
                } else {
                    advance!(1);
                }
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tok_line, tok_col) = (line, col);

        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // comments
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                comments.last_mut().unwrap().push(chars[i]);
                advance!(1);
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            advance!(2);
            let mut depth = 1u32;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    advance!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    advance!(2);
                } else {
                    if chars[i] != '\n' {
                        comments.last_mut().unwrap().push(chars[i]);
                    }
                    advance!(1);
                }
            }
            continue;
        }

        // raw / byte strings: r"..", r#".."#, b"..", br#".."#, b'x'
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let raw = c == 'r' || chars.get(i + 1) == Some(&'r');
            let mut hashes = 0usize;
            while raw && chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
                advance!(j + 1 - i); // prefix, hashes, opening quote
                if raw {
                    // ends at '"' followed by `hashes` hashes; no escapes
                    while i < chars.len() {
                        if chars[i] == '"'
                            && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'))
                        {
                            advance!(1 + hashes);
                            break;
                        }
                        advance!(1);
                    }
                } else {
                    consume_quoted!('"');
                }
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: "\"\"".to_string(),
                    line: tok_line,
                    col: tok_col,
                });
                continue;
            }
            if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                advance!(2);
                consume_quoted!('\'');
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: "''".to_string(),
                    line: tok_line,
                    col: tok_col,
                });
                continue;
            }
            // a plain identifier starting with r/b falls through
        }

        if c == '"' {
            advance!(1);
            consume_quoted!('"');
            tokens.push(Token {
                kind: TokenKind::Str,
                text: "\"\"".to_string(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        if c == '\'' {
            let n1 = chars.get(i + 1).copied();
            let n2 = chars.get(i + 2).copied();
            let is_char = n1 == Some('\\') || (n1.is_some() && n2 == Some('\''));
            if is_char {
                advance!(1);
                consume_quoted!('\'');
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: "''".to_string(),
                    line: tok_line,
                    col: tok_col,
                });
            } else {
                // lifetime: ' + identifier chars
                let mut text = String::from("'");
                advance!(1);
                while i < chars.len() && is_word_char(chars[i]) {
                    text.push(chars[i]);
                    advance!(1);
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line: tok_line,
                    col: tok_col,
                });
            }
            continue;
        }

        if c.is_ascii_digit() {
            let mut text = String::new();
            while i < chars.len() && is_word_char(chars[i]) {
                text.push(chars[i]);
                advance!(1);
                // decimal exponent sign: 1e-5, 2.5E+8 (not hex digits)
                if matches!(text.chars().last(), Some('e' | 'E'))
                    && !text.starts_with("0x")
                    && !text.starts_with("0X")
                    && matches!(chars.get(i), Some('+' | '-'))
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(chars[i]);
                    advance!(1);
                }
            }
            // fractional part — but not the `..` of a range
            if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                advance!(1);
                while i < chars.len() && is_word_char(chars[i]) {
                    text.push(chars[i]);
                    advance!(1);
                    // exponent sign after the fraction: 1.5e-3
                    if matches!(text.chars().last(), Some('e' | 'E'))
                        && matches!(chars.get(i), Some('+' | '-'))
                        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    {
                        text.push(chars[i]);
                        advance!(1);
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text,
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < chars.len() && is_word_char(chars[i]) {
                text.push(chars[i]);
                advance!(1);
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        match c {
            '(' | '[' | '{' => {
                tokens.push(Token {
                    kind: TokenKind::Open,
                    text: c.to_string(),
                    line: tok_line,
                    col: tok_col,
                });
                advance!(1);
            }
            ')' | ']' | '}' => {
                tokens.push(Token {
                    kind: TokenKind::Close,
                    text: c.to_string(),
                    line: tok_line,
                    col: tok_col,
                });
                advance!(1);
            }
            _ => {
                // punctuation, longest operator first
                let mut matched = None;
                for op in JOINED_PUNCT {
                    if chars[i..]
                        .iter()
                        .zip(op.chars())
                        .filter(|(a, b)| **a == *b)
                        .count()
                        == op.chars().count()
                    {
                        matched = Some(*op);
                        break;
                    }
                }
                let text = match matched {
                    Some(op) => {
                        advance!(op.chars().count());
                        op.to_string()
                    }
                    None => {
                        advance!(1);
                        c.to_string()
                    }
                };
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line: tok_line,
                    col: tok_col,
                });
            }
        }
    }

    let line_count = line as usize;
    comments.resize(line_count.max(1), String::new());
    LexedFile {
        tokens,
        comments,
        line_count,
    }
}

#[inline]
fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let l = lex("let x = \"static mut\"; // static mut here\n/* unsafe */ let y = 1;\n");
        assert!(l.tokens.iter().all(|t| t.text != "static"));
        assert!(l.comment_on(1).contains("static mut"));
        assert!(l.comment_on(2).contains("unsafe"));
        assert!(l.tokens.iter().any(|t| t.is_ident("y") && t.line == 2));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(q: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Char, "''".into())));
    }

    #[test]
    fn raw_strings_are_single_blank_tokens() {
        let toks = kinds("let p = r#\"unsafe { }\"#; let q = br##\"x\"##;");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(!toks.iter().any(|(_, t)| t == "unsafe"));
        assert!(toks.iter().any(|(_, t)| t == "q"));
    }

    #[test]
    fn spans_survive_multiline_raw_strings() {
        // the token after a 3-line raw string must land on line 4
        let src = "let a = r#\"l1\nl2\nl3\"#;\nlet b = 1;\n";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!((b.line, b.col), (4, 5));
        let a = l.tokens.iter().find(|t| t.is_ident("a")).unwrap();
        assert_eq!((a.line, a.col), (1, 5));
    }

    #[test]
    fn spans_survive_nested_block_comments() {
        let src = "/* outer /* inner\nstill */ comment */ let a = 1;\nlet b = 2;\n";
        let l = lex(src);
        let a = l.tokens.iter().find(|t| t.is_ident("a")).unwrap();
        assert_eq!(a.line, 2, "token after the nested comment stays on line 2");
        let b = l.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!((b.line, b.col), (3, 5));
        assert!(l.comment_on(1).contains("inner"));
        assert!(!l.tokens.iter().any(|t| t.text == "still"));
    }

    #[test]
    fn multichar_operators_join() {
        let toks = kinds("a::b -> c => d .. e ..= f && g");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>", "..", "..=", "&&"]);
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let toks = kinds("for i in 0..10_000 {}");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Punct, "..".into())));
        assert!(toks.contains(&(TokenKind::Number, "10_000".into())));
        let toks = kinds("let x = 1.5e-3f64;");
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3f64".into())));
    }

    #[test]
    fn comment_only_lines_are_detected() {
        let l = lex("// just a comment\nlet x = 1; // trailing\n\n");
        assert!(l.is_comment_only_line(1));
        assert!(!l.is_comment_only_line(2));
        assert!(l.is_comment_only_line(3));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds("let a = b\"unsafe\"; let c = b'\\n'; let r = rng();");
        assert!(toks.contains(&(TokenKind::Str, "\"\"".into())));
        assert!(toks.contains(&(TokenKind::Char, "''".into())));
        assert!(toks.contains(&(TokenKind::Ident, "rng".into())));
        assert!(!toks.iter().any(|(_, t)| t == "unsafe"));
    }
}
