#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-audit — concurrency-discipline lint for the parcom workspace
//!
//! A dependency-free static-analysis pass enforcing the workspace's
//! concurrency and robustness rules. It is deliberately *syntactic*, not
//! a compiler plugin: source is lexed into a token stream ([`lexer`]),
//! braces become a scope tree ([`scopes`]), `fn` items with their loops,
//! call sites and `budget: &Budget` parameters become a per-file model
//! ([`model`]), and a workspace-level name-based call graph
//! ([`callgraph`]) supports one interprocedural rule. That is enough for
//! discipline rules — and it keeps the audit dependency-free and fast
//! enough to run on every push.
//!
//! ## Rules
//!
//! | rule | meaning |
//! |------|---------|
//! | `atomic-ordering` | atomic `Ordering::*` variants only in allowlisted modules |
//! | `static-mut` | no `static mut` anywhere |
//! | `unsafe-code` | no `unsafe` outside the (currently empty) allowlist |
//! | `partial-cmp-unwrap` | no `partial_cmp(..).unwrap()/expect(..)` comparators — use `total_cmp` |
//! | `lossy-cast` | no truncating `as u32`/`as Node` casts of counts outside annotated sites |
//! | `io-unwrap` | no `unwrap()`/`expect(..)` in `crates/io` parsing paths |
//! | `budget-check` | outermost heavy loops in `budget: &Budget` functions must call `budget.check*` |
//! | `budget-propagation` | heavy helpers reachable from a budgeted function must take the budget |
//! | `lock-across-parallel` | no `.lock()`/`.borrow_mut()` guard live across a parallel call |
//! | `panic-in-parallel` | no `unwrap`/`expect`/`panic!` inside rayon closures outside tests |
//! | `ordering-escalation` | allowlisted atomics stay at the documented `Relaxed`/`Acquire` strength |
//!
//! ## Allow markers
//!
//! Any finding can be suppressed with `// audit:allow(<rule>): <why>` —
//! trailing the offending line, trailing the first line of the enclosing
//! statement, or on the run of comment lines directly above it (which is
//! how a marker covers an item behind `#[…]` attributes). The marker
//! doubles as in-tree documentation that the site is deliberate, so the
//! justification after the colon is expected. Markers that suppress
//! nothing are reported as warnings (not violations): a stale marker
//! after a fix should be deleted, and a typo'd rule name should not
//! silently disable nothing.

use std::fmt;
use std::path::Path;
use std::time::Instant;

pub mod callgraph;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod scopes;

use callgraph::ChainLink;
use model::FileModel;
use report::{AuditReport, RuleStat, UnusedAllow};
use rules::RawViolation;

/// The lint rules the audit enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Atomic memory-`Ordering` variants outside allowlisted modules.
    /// Concentrating every `Relaxed`/`Acquire`/… decision in a handful of
    /// reviewed files is what keeps the paper's "benign race" arguments
    /// auditable.
    AtomicOrdering,
    /// `static mut` is never acceptable: it is unsynchronized shared
    /// mutable state with no owner.
    StaticMut,
    /// `unsafe` code outside the allowlist (currently empty — the whole
    /// workspace builds with `#![forbid(unsafe_code)]`).
    UnsafeCode,
    /// `partial_cmp(..).unwrap()` (or `.expect(..)`) in comparator
    /// position: panics on NaN mid-sort; `f64::total_cmp` is the total
    /// order that cannot fail.
    PartialCmpUnwrap,
    /// Truncating casts of node/edge counts (`.len() as u32`,
    /// `node_count() as u32`, …) outside annotated sites. A graph with
    /// more than `u32::MAX` nodes silently wraps ids.
    LossyCast,
    /// `unwrap()`/`expect(..)` in `crates/io` non-test code: readers parse
    /// untrusted input and must return `IoError`, never panic.
    IoUnwrap,
    /// A function that accepts `budget: &Budget` promises cooperative
    /// cancellation. Its *outermost* loops that do real work (contain a
    /// nested loop or a `par_*` call) must check the budget somewhere in
    /// the body; otherwise a deadline or cancel can go unnoticed for an
    /// entire run. Single-level bookkeeping loops are exempt — budget
    /// checks are amortized at sweep/merge granularity by design, never
    /// per element.
    BudgetCheck,
    /// The interprocedural closure of `budget-check`: a *heavy* function
    /// (parallel region or multi-level loop) reachable through the call
    /// graph from a `budget: &Budget` function must itself take the
    /// budget — otherwise the cancellation promise silently ends at the
    /// first helper call. Evidence carries the call chain from the
    /// budgeted root to the offender.
    BudgetPropagation,
    /// A `.lock()`/`.borrow_mut()` guard still live where a parallel
    /// region is issued: workers contending for the held lock serialize
    /// the "parallel" section (or deadlock on a re-entrant borrow). Drop
    /// the guard — scoped or explicit `drop()` — before fanning out.
    LockAcrossParallel,
    /// `unwrap()`/`expect(..)`/`panic!`-family inside a closure fed to a
    /// rayon call chain, outside tests. One panicking worker tears down
    /// the whole pool mid-run; parallel closures must stay total.
    PanicInParallel,
    /// Inside the `ORDERING_ALLOWED` modules, any ordering stronger than
    /// the documented `Relaxed`/`Acquire` protocol (`Release`, `AcqRel`,
    /// `SeqCst`). The allowlist says *where* atomics may live; this rule
    /// pins *how strong* they may be without a fresh review.
    OrderingEscalation,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 11] = [
        Rule::AtomicOrdering,
        Rule::StaticMut,
        Rule::UnsafeCode,
        Rule::PartialCmpUnwrap,
        Rule::LossyCast,
        Rule::IoUnwrap,
        Rule::BudgetCheck,
        Rule::BudgetPropagation,
        Rule::LockAcrossParallel,
        Rule::PanicInParallel,
        Rule::OrderingEscalation,
    ];

    /// The kebab-case name used in diagnostics and `audit:allow(..)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::StaticMut => "static-mut",
            Rule::UnsafeCode => "unsafe-code",
            Rule::PartialCmpUnwrap => "partial-cmp-unwrap",
            Rule::LossyCast => "lossy-cast",
            Rule::IoUnwrap => "io-unwrap",
            Rule::BudgetCheck => "budget-check",
            Rule::BudgetPropagation => "budget-propagation",
            Rule::LockAcrossParallel => "lock-across-parallel",
            Rule::PanicInParallel => "panic-in-parallel",
            Rule::OrderingEscalation => "ordering-escalation",
        }
    }

    /// Stable index into [`Rule::ALL`]-ordered tables.
    pub fn idx(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule fired at a `file:line` site.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Path of the offending file (as passed to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the finding's first token.
    pub column: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Extra human-readable evidence, when the rule has any.
    pub note: Option<String>,
    /// Call-chain evidence (budget-propagation), root first.
    pub call_chain: Vec<ChainLink>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )?;
        if let Some(note) = &self.note {
            write!(f, "\n    note: {note}")?;
        }
        for link in &self.call_chain {
            write!(f, "\n    via: {link}")?;
        }
        Ok(())
    }
}

/// Files in which atomic `Ordering::*` variants are permitted. Every entry
/// is a workspace-relative path suffix; the set is the reviewed core of the
/// shared-memory design (the atomics themselves plus the two algorithms
/// whose benign-race protocols the paper describes) and the stress tests
/// that exercise those protocols.
pub const ORDERING_ALLOWED: &[&str] = &[
    "crates/graph/src/atomicf64.rs",
    "crates/graph/src/partition.rs",
    "crates/graph/src/coarsening.rs",
    "crates/graph/tests/stress_interleaving.rs",
    "crates/core/src/plp.rs",
    "crates/core/src/plm.rs",
    // sharded observability counters: one Relaxed fetch_add per worker
    "crates/obs/src/counters.rs",
    // cancellation token flag and the shared sweep counter: single-word
    // monotonic flags, Relaxed is sufficient and reviewed
    "crates/guard/src/lib.rs",
];

/// Files in which `unsafe` is permitted. The workspace carries
/// `#![forbid(unsafe_code)]` in every crate root (parcom-io downgrades to
/// `deny` only under its `mmap` feature, parcom-serve under `signals`),
/// and this lint keeps the list of exceptions in one reviewable place:
/// the feature-gated mapping module of the binary graph reopen path
/// (DESIGN.md §15) and the daemon's signal-capture shim for graceful
/// shutdown (DESIGN.md §16).
pub const UNSAFE_ALLOWED: &[&str] = &["crates/io/src/mmap.rs", "crates/serve/src/signal.rs"];

/// True when a path (normalized to `/` separators) ends in one of the
/// allowlisted suffixes — or when an allowlist entry ends in the path,
/// which happens when the scan is rooted inside the crate (auditing
/// `crates/serve` reports `src/signal.rs`, a suffix of the workspace
/// entry `crates/serve/src/signal.rs`).
pub fn path_allowed(path: &str, allowlist: &[&str]) -> bool {
    let normalized = path.replace('\\', "/");
    allowlist
        .iter()
        .any(|suffix| normalized.ends_with(suffix) || suffix.ends_with(normalized.as_str()))
}

/// The per-file slice of a scan: violations, marker usage, per-rule
/// accounting.
#[derive(Debug, Default)]
struct FileScan {
    violations: Vec<Violation>,
    /// Indices into the file's `allows` that suppressed something.
    used_markers: Vec<usize>,
    /// Per-rule (fired, suppressed, micros), [`Rule::ALL`] order.
    stats: Vec<RuleStat>,
}

fn make_violation(model: &FileModel, rule: Rule, raw: RawViolation) -> Violation {
    Violation {
        file: model.path.clone(),
        line: raw.line as usize,
        column: raw.col as usize,
        rule,
        excerpt: model.excerpt(raw.line),
        note: raw.note,
        call_chain: raw.chain,
    }
}

/// Runs every intra-file rule over one model, applying allow-markers and
/// per-(rule, line) dedup (two findings of one rule on one line — say two
/// `unwrap()`s — report once, like the line-oriented scanner did).
fn apply_file_rules(model: &FileModel) -> FileScan {
    let mut scan = FileScan {
        stats: vec![RuleStat::default(); Rule::ALL.len()],
        ..FileScan::default()
    };
    for &(rule, run) in rules::FILE_RULES {
        let t0 = Instant::now();
        let mut seen_lines: Vec<u32> = Vec::new();
        for raw in run(model) {
            if seen_lines.contains(&raw.line) {
                continue;
            }
            seen_lines.push(raw.line);
            match model.find_allow(rule.name(), raw.line) {
                Some(marker) => {
                    scan.used_markers.push(marker);
                    scan.stats[rule.idx()].suppressed += 1;
                }
                None => {
                    scan.stats[rule.idx()].fired += 1;
                    scan.violations.push(make_violation(model, rule, raw));
                }
            }
        }
        scan.stats[rule.idx()].micros += t0.elapsed().as_micros() as u64;
    }
    scan
}

/// Runs `budget-propagation` over a set of models and folds its findings
/// into the per-file scans (marker accounting included).
fn apply_propagation(models: &[FileModel], scans: &mut [FileScan]) {
    let t0 = Instant::now();
    let idx = Rule::BudgetPropagation.idx();
    for (fi, raw) in rules::budget::propagation(models) {
        let model = &models[fi];
        match model.find_allow(Rule::BudgetPropagation.name(), raw.line) {
            Some(marker) => {
                scans[fi].used_markers.push(marker);
                scans[fi].stats[idx].suppressed += 1;
            }
            None => {
                scans[fi].stats[idx].fired += 1;
                scans[fi]
                    .violations
                    .push(make_violation(model, Rule::BudgetPropagation, raw));
            }
        }
    }
    if let Some(first) = scans.first_mut() {
        first.stats[idx].micros += t0.elapsed().as_micros() as u64;
    }
}

fn sort_violations(violations: &mut [Violation]) {
    violations
        .sort_by(|a, b| (&a.file, a.line, a.rule.idx()).cmp(&(&b.file, b.line, b.rule.idx())));
}

/// Scans one file's source text. `path` selects path-dependent rules (the
/// `Ordering` allowlist, `crates/io` for `io-unwrap`) and is echoed into
/// diagnostics; the file is not re-read from disk. The interprocedural
/// `budget-propagation` rule runs over this single file's call graph.
pub fn scan_source(path: &str, source: &str) -> Vec<Violation> {
    let models = [FileModel::build(path, source)];
    let mut scans = [apply_file_rules(&models[0])];
    apply_propagation(&models, &mut scans);
    let [scan] = scans;
    let mut violations = scan.violations;
    sort_violations(&mut violations);
    violations
}

/// Directories never scanned: build output, VCS metadata, and the lint's
/// own intentionally-violating fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Recursively scans every `.rs` file under `root`, returning the full
/// report: violations sorted by path and line, unused-marker warnings and
/// per-rule timing. File models are built and checked in parallel (one
/// rayon task per file); the call-graph pass is sequential.
pub fn scan_workspace_report(root: &Path) -> std::io::Result<AuditReport> {
    use rayon::prelude::*;
    let t0 = Instant::now();

    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|file| {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .into_owned();
            std::fs::read_to_string(file).map(|src| (rel, src))
        })
        .collect::<std::io::Result<_>>()?;

    let models: Vec<FileModel> = sources
        .par_iter()
        .map(|(rel, src)| FileModel::build(rel, src))
        .collect();
    let mut scans: Vec<FileScan> = models.par_iter().map(apply_file_rules).collect();
    apply_propagation(&models, &mut scans);

    let mut violations = Vec::new();
    let mut unused_allows = Vec::new();
    let mut stats = vec![RuleStat::default(); Rule::ALL.len()];
    for (model, scan) in models.iter().zip(scans) {
        violations.extend(scan.violations);
        for (i, s) in scan.stats.into_iter().enumerate() {
            stats[i].fired += s.fired;
            stats[i].suppressed += s.suppressed;
            stats[i].micros += s.micros;
        }
        for (mi, marker) in model.allows.iter().enumerate() {
            if !scan.used_markers.contains(&mi) {
                unused_allows.push(UnusedAllow {
                    file: model.path.clone(),
                    line: marker.line,
                    rule: marker.rule.clone(),
                });
            }
        }
    }
    sort_violations(&mut violations);

    Ok(AuditReport {
        root: root.to_string_lossy().into_owned(),
        files_scanned: models.len(),
        threads: rayon::current_num_threads(),
        violations,
        unused_allows,
        stats,
        elapsed_micros: t0.elapsed().as_micros() as u64,
    })
}

/// Recursively scans every `.rs` file under `root`, returning all
/// violations sorted by path and line. Thin wrapper over
/// [`scan_workspace_report`] for callers that only gate on findings.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(scan_workspace_report(root)?.violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_allowlist_matches_workspace_and_crate_rooted_scans() {
        // Scanned from the workspace root: the full relative path.
        assert!(path_allowed("crates/serve/src/signal.rs", UNSAFE_ALLOWED));
        // Scanned from inside the crate (`parcom-audit -- crates/serve`):
        // the path is relative to the crate, a suffix of the entry.
        assert!(path_allowed("src/signal.rs", UNSAFE_ALLOWED));
        assert!(path_allowed("src/mmap.rs", UNSAFE_ALLOWED));
        // Unrelated files stay disallowed either way.
        assert!(!path_allowed("crates/serve/src/wal.rs", UNSAFE_ALLOWED));
        assert!(!path_allowed("src/lib.rs", UNSAFE_ALLOWED));
    }

    #[test]
    fn budget_check_tracks_fn_signatures_and_loop_shape() {
        // outermost loop with a nested loop and no check: fires once
        let bad = "fn run(g: &G, budget: &Budget) {\n    for s in 0..9 {\n        for u in g.nodes() {\n            work(u);\n        }\n    }\n}\n";
        let v = scan_source("x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BudgetCheck);
        assert_eq!(v[0].line, 2);

        // same shape with an amortized check: clean
        let good = bad.replace("for u in", "budget.check()?;\n        for u in");
        assert!(scan_source("x.rs", &good).is_empty());

        // same shape without the budget parameter: not our business
        let unbudgeted = bad.replace("budget: &Budget", "limit: usize");
        assert!(scan_source("x.rs", &unbudgeted).is_empty());

        // a single-level loop in a budget fn is exempt bookkeeping
        let flat = "fn run(g: &G, budget: &Budget) {\n    for u in g.nodes() {\n        work(u);\n    }\n}\n";
        assert!(scan_source("x.rs", flat).is_empty());

        // a par_ call inside the loop also counts as heavy
        let par = "fn run(g: &G, budget: &Budget) {\n    while improved {\n        xs.par_iter().for_each(work);\n    }\n}\n";
        let v = scan_source("x.rs", par);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BudgetCheck);
    }

    #[test]
    fn allow_marker_suppresses_on_same_and_previous_line() {
        let src = "// audit:allow(static-mut)\nstatic mut A: u32 = 0;\nstatic mut B: u32 = 0; // audit:allow(static-mut)\nstatic mut C: u32 = 0;\n";
        let v = scan_source("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn propagation_runs_in_single_file_scans() {
        let src = "\
fn run_guarded(g: &Graph, budget: &Budget) {\n    helper(g);\n}\n\
fn helper(g: &Graph) {\n    for s in 0..10 {\n        for u in g.nodes() {\n            work(u);\n        }\n    }\n}\n";
        let v = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BudgetPropagation);
        assert_eq!(v[0].line, 4);
        assert_eq!(v[0].call_chain.len(), 2);
        assert_eq!(v[0].call_chain[0].function, "run_guarded");
    }

    #[test]
    fn rule_indices_match_all_order() {
        for (i, rule) in Rule::ALL.iter().enumerate() {
            assert_eq!(rule.idx(), i, "{rule}");
        }
    }
}
