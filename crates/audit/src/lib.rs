#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-audit — concurrency-discipline lint for the parcom workspace
//!
//! A dependency-free, source-level lint pass enforcing the workspace's
//! concurrency and robustness rules. It is deliberately a *textual* audit,
//! not a compiler plugin: the rules it checks are discipline rules about
//! where certain constructs may appear at all, which line/token scanning
//! decides reliably once comments and string literals are stripped.
//!
//! ## Rules
//!
//! | rule | meaning |
//! |------|---------|
//! | `atomic-ordering` | atomic `Ordering::*` variants only in allowlisted modules |
//! | `static-mut` | no `static mut` anywhere |
//! | `unsafe-code` | no `unsafe` outside the (currently empty) allowlist |
//! | `partial-cmp-unwrap` | no `partial_cmp(..).unwrap()/expect(..)` comparators — use `total_cmp` |
//! | `lossy-cast` | no truncating `as u32`/`as Node` casts of counts outside annotated sites |
//! | `io-unwrap` | no `unwrap()`/`expect(..)` in `crates/io` parsing paths |
//! | `budget-check` | outermost multi-level loops in `budget: &Budget` functions must call `budget.check*` |
//!
//! Any line (or its immediate predecessor) may carry
//! `// audit:allow(<rule>)` to suppress a diagnostic at a site that has
//! been reviewed; the marker doubles as in-tree documentation that the
//! site is deliberate.

use std::fmt;
use std::path::Path;

/// The lint rules the audit enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Atomic memory-`Ordering` variants outside allowlisted modules.
    /// Concentrating every `Relaxed`/`Acquire`/… decision in a handful of
    /// reviewed files is what keeps the paper's "benign race" arguments
    /// auditable.
    AtomicOrdering,
    /// `static mut` is never acceptable: it is unsynchronized shared
    /// mutable state with no owner.
    StaticMut,
    /// `unsafe` code outside the allowlist (currently empty — the whole
    /// workspace builds with `#![forbid(unsafe_code)]`).
    UnsafeCode,
    /// `partial_cmp(..).unwrap()` (or `.expect(..)`) in comparator
    /// position: panics on NaN mid-sort; `f64::total_cmp` is the total
    /// order that cannot fail.
    PartialCmpUnwrap,
    /// Truncating casts of node/edge counts (`.len() as u32`,
    /// `node_count() as u32`, …) outside annotated sites. A graph with
    /// more than `u32::MAX` nodes silently wraps ids.
    LossyCast,
    /// `unwrap()`/`expect(..)` in `crates/io` non-test code: readers parse
    /// untrusted input and must return `IoError`, never panic.
    IoUnwrap,
    /// A function that accepts `budget: &Budget` promises cooperative
    /// cancellation. Its *outermost* loops that do real work (contain a
    /// nested loop or a `par_*` call) must check the budget somewhere in
    /// the body; otherwise a deadline or cancel can go unnoticed for an
    /// entire run. Single-level bookkeeping loops are exempt — budget
    /// checks are amortized at sweep/merge granularity by design, never
    /// per element.
    BudgetCheck,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::AtomicOrdering,
        Rule::StaticMut,
        Rule::UnsafeCode,
        Rule::PartialCmpUnwrap,
        Rule::LossyCast,
        Rule::IoUnwrap,
        Rule::BudgetCheck,
    ];

    /// The kebab-case name used in diagnostics and `audit:allow(..)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::StaticMut => "static-mut",
            Rule::UnsafeCode => "unsafe-code",
            Rule::PartialCmpUnwrap => "partial-cmp-unwrap",
            Rule::LossyCast => "lossy-cast",
            Rule::IoUnwrap => "io-unwrap",
            Rule::BudgetCheck => "budget-check",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule fired at a `file:line` site.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Path of the offending file (as passed to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Files in which atomic `Ordering::*` variants are permitted. Every entry
/// is a workspace-relative path suffix; the set is the reviewed core of the
/// shared-memory design (the atomics themselves plus the two algorithms
/// whose benign-race protocols the paper describes) and the stress tests
/// that exercise those protocols.
pub const ORDERING_ALLOWED: &[&str] = &[
    "crates/graph/src/atomicf64.rs",
    "crates/graph/src/partition.rs",
    "crates/graph/src/coarsening.rs",
    "crates/graph/tests/stress_interleaving.rs",
    "crates/core/src/plp.rs",
    "crates/core/src/plm.rs",
    // sharded observability counters: one Relaxed fetch_add per worker
    "crates/obs/src/counters.rs",
    // cancellation token flag and the shared sweep counter: single-word
    // monotonic flags, Relaxed is sufficient and reviewed
    "crates/guard/src/lib.rs",
];

/// Files in which `unsafe` is permitted. Deliberately empty: the workspace
/// carries `#![forbid(unsafe_code)]` in every crate root, and this lint
/// keeps the list of exceptions (none) in one reviewable place.
pub const UNSAFE_ALLOWED: &[&str] = &[];

/// Truncating cast patterns the `lossy-cast` rule searches for (matched
/// against comment- and string-stripped code).
const LOSSY_CAST_PATTERNS: &[&str] = &[
    ".len() as u32",
    ".len() as Node",
    ".count() as u32",
    ".count() as Node",
    "node_count() as u32",
    "node_count() as Node",
    "edge_count() as u32",
    "edge_count() as Node",
];

/// A source file split into per-line *code* text (comments, string and
/// char literal contents blanked out) and per-line *comment* text (used to
/// find `audit:allow` markers).
struct StrippedSource {
    code: Vec<String>,
    comments: Vec<String>,
}

/// Strips comments and literal contents from Rust source, line by line.
///
/// This is a lexer for exactly the token forms that can hide or fake a
/// lint pattern: line comments, (nested) block comments, string literals
/// with escapes, raw strings `r#".."#`, byte strings, char literals, and
/// lifetimes (so `'a` is not mistaken for an unterminated char literal).
fn strip(source: &str) -> StrippedSource {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(u32),  // nested block comment depth
        Str,         // "..."
        RawStr(u32), // r##"..."## with hash count
        Char,        // '...'
    }
    let mut state = State::Code;
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; everything else carries on.
            code.push(String::new());
            comments.push(String::new());
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // line comment: consume to end of line into comment text
                    let mut j = i;
                    while j < chars.len() && chars[j] != '\n' {
                        comments.last_mut().unwrap().push(chars[j]);
                        j += 1;
                    }
                    i = j;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    i += 2;
                    continue;
                } else if c == '"' {
                    code.last_mut().unwrap().push('"');
                    state = State::Str;
                } else if c == 'r' || c == 'b' {
                    // possible raw/byte string start: r", r#", br", b"
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_ident_char =
                        i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                    if !is_ident_char && chars.get(j) == Some(&'"') && (c == 'r' || hashes == 0) {
                        if c == 'b' && chars.get(i + 1) == Some(&'"') {
                            // b"..." — plain byte string
                            code.last_mut().unwrap().push('"');
                            state = State::Str;
                            i += 2;
                            continue;
                        } else if chars.get(i + 1) == Some(&'r') || c == 'r' {
                            code.last_mut().unwrap().push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    code.last_mut().unwrap().push(c);
                } else if c == '\'' {
                    // char literal or lifetime
                    let n1 = chars.get(i + 1).copied();
                    let n2 = chars.get(i + 2).copied();
                    let is_char = n1 == Some('\\') || (n1.is_some() && n2 == Some('\''));
                    if is_char {
                        code.last_mut().unwrap().push('\'');
                        state = State::Char;
                    } else {
                        code.last_mut().unwrap().push('\'');
                    }
                } else {
                    code.last_mut().unwrap().push(c);
                }
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                comments.last_mut().unwrap().push(c);
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                    continue;
                } else if c == '"' {
                    code.last_mut().unwrap().push('"');
                    state = State::Code;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.last_mut().unwrap().push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                    continue;
                } else if c == '\'' {
                    code.last_mut().unwrap().push('\'');
                    state = State::Code;
                }
            }
        }
        i += 1;
    }
    StrippedSource { code, comments }
}

/// True when `token` occurs in `line` as a standalone word (not part of a
/// longer identifier such as `unsafe_code`).
fn contains_word(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !is_word_byte(bytes[at - 1]);
        let end = at + token.len();
        let after_ok = end >= bytes.len() || !is_word_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when a path (normalized to `/` separators) ends in one of the
/// allowlisted suffixes.
fn path_allowed(path: &str, allowlist: &[&str]) -> bool {
    let normalized = path.replace('\\', "/");
    allowlist.iter().any(|suffix| normalized.ends_with(suffix))
}

/// True when line `idx` carries an `audit:allow(<rule>)` marker for
/// `rule`, either trailing the line itself or on a comment-only line
/// immediately above it (a marker trailing *code* does not leak to the
/// next line).
fn allowed_here(stripped: &StrippedSource, idx: usize, rule: Rule) -> bool {
    let marker = format!("audit:allow({})", rule.name());
    if stripped.comments[idx].contains(&marker) {
        return true;
    }
    idx > 0
        && stripped.comments[idx - 1].contains(&marker)
        && stripped.code[idx - 1].trim().is_empty()
}

/// Atomic `Ordering` variant tokens (the `cmp::Ordering` variants `Less`,
/// `Equal`, `Greater` are deliberately not matched).
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Scans one file's source text. `path` selects path-dependent rules (the
/// `Ordering` allowlist, `crates/io` for `io-unwrap`) and is echoed into
/// diagnostics; the file is not re-read from disk.
pub fn scan_source(path: &str, source: &str) -> Vec<Violation> {
    let stripped = strip(source);
    let source_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    let normalized = path.replace('\\', "/");
    // integration tests under crates/io/tests/ are test code, same as
    // `#[cfg(test)]` modules — only the parsing paths in src/ are held to
    // the no-unwrap rule
    let in_io_crate = normalized.contains("crates/io/src/");

    let report = |idx: usize, rule: Rule, out: &mut Vec<Violation>| {
        if !allowed_here(&stripped, idx, rule) {
            out.push(Violation {
                file: path.to_string(),
                line: idx + 1,
                rule,
                excerpt: source_lines
                    .get(idx)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    };

    // `#[cfg(test)]`-module tracking for io-unwrap: once the attribute is
    // seen, the brace block it introduces is test code.
    let mut depth: i64 = 0;
    let mut test_pending = false;
    let mut test_depths: Vec<i64> = Vec::new();

    // budget-check tracking: signatures accumulate from `fn ` to their `{`;
    // inside a `budget: &Budget` function, the *outermost* open loop is
    // watched for nested loops / `par_*` calls (heavy) and for a
    // `budget.check*` call anywhere in its body.
    struct LoopInfo {
        header_idx: usize,
        depth: i64,
        heavy: bool,
        has_check: bool,
    }
    let mut fn_sig: Option<String> = None;
    let mut budget_fn_depths: Vec<i64> = Vec::new();
    let mut loop_pending: Option<usize> = None;
    let mut outer_loop: Option<LoopInfo> = None;

    for (idx, code) in stripped.code.iter().enumerate() {
        let in_test_module = !test_depths.is_empty();
        let in_budget_fn = !budget_fn_depths.is_empty();

        // budget-check per-line bookkeeping (before the brace pass, so a
        // `}` on this line sees up-to-date loop state)
        if let Some(sig) = fn_sig.as_mut() {
            sig.push_str(code);
            sig.push(' ');
        } else if contains_word(code, "fn") {
            fn_sig = Some(format!("{code} "));
        }
        if in_budget_fn {
            let is_loop_header = contains_word(code, "for")
                || contains_word(code, "while")
                || contains_word(code, "loop");
            match outer_loop.as_mut() {
                Some(outer) => {
                    if code.contains("budget.check") {
                        outer.has_check = true;
                    }
                    if is_loop_header || code.contains(".par_") {
                        outer.heavy = true;
                    }
                }
                None if is_loop_header => loop_pending = Some(idx),
                None => {}
            }
        }

        if !path_allowed(&normalized, ORDERING_ALLOWED) {
            for variant in ATOMIC_ORDERINGS {
                if code.contains(variant) {
                    report(idx, Rule::AtomicOrdering, &mut out);
                    break;
                }
            }
        }

        if code.contains("static mut") && contains_word(code, "static") {
            report(idx, Rule::StaticMut, &mut out);
        }

        if contains_word(code, "unsafe") && !path_allowed(&normalized, UNSAFE_ALLOWED) {
            report(idx, Rule::UnsafeCode, &mut out);
        }

        if let Some(pos) = code.find(".partial_cmp(") {
            // comparator misuse: an unwrap/expect on the same statement —
            // look from the call to the end of the statement (up to 4 lines)
            let mut window = code[pos..].to_string();
            let mut j = idx;
            while !window.contains(';') && j + 1 < stripped.code.len() && j < idx + 3 {
                j += 1;
                window.push_str(&stripped.code[j]);
            }
            let stmt = window.split(';').next().unwrap_or("");
            if stmt.contains(".unwrap()") || stmt.contains(".expect(") {
                report(idx, Rule::PartialCmpUnwrap, &mut out);
            }
        }

        for pattern in LOSSY_CAST_PATTERNS {
            if code.contains(pattern) {
                report(idx, Rule::LossyCast, &mut out);
                break;
            }
        }

        if in_io_crate
            && !in_test_module
            && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            report(idx, Rule::IoUnwrap, &mut out);
        }

        // brace bookkeeping (after rule checks: the attribute line itself
        // and the `mod tests {` opener belong to the test region already,
        // but contain no unwraps in practice)
        if code.contains("#[cfg(test)]") {
            test_pending = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if test_pending {
                        test_depths.push(depth);
                        test_pending = false;
                    }
                    if let Some(sig) = fn_sig.take() {
                        if sig.contains("budget: &Budget") {
                            budget_fn_depths.push(depth);
                        }
                    }
                    if let Some(header_idx) = loop_pending.take() {
                        let header = &stripped.code[header_idx];
                        outer_loop = Some(LoopInfo {
                            header_idx,
                            depth,
                            heavy: header.contains(".par_"),
                            has_check: header.contains("budget.check"),
                        });
                    }
                }
                '}' => {
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    if outer_loop.as_ref().is_some_and(|l| l.depth == depth) {
                        let l = outer_loop.take().unwrap();
                        if l.heavy && !l.has_check {
                            report(l.header_idx, Rule::BudgetCheck, &mut out);
                        }
                    }
                    if budget_fn_depths.last() == Some(&depth) {
                        budget_fn_depths.pop();
                    }
                    depth -= 1;
                }
                // a signature that ends in `;` is a trait declaration with
                // no body to audit
                ';' => fn_sig = None,
                _ => {}
            }
        }
    }
    out
}

/// Directories never scanned: build output, VCS metadata, and the lint's
/// own intentionally-violating fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Recursively scans every `.rs` file under `root`, returning all
/// violations sorted by path and line.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .into_owned();
        out.extend(scan_source(&rel, &source));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_strings_and_comments() {
        let s = strip("let x = \"static mut\"; // static mut here\n/* unsafe */ let y = 1;\n");
        assert!(!s.code[0].contains("static"));
        assert!(s.comments[0].contains("static mut"));
        assert!(!s.code[1].contains("unsafe"));
        assert!(s.code[1].contains("let y = 1;"));
    }

    #[test]
    fn strip_handles_lifetimes_and_chars() {
        let s = strip("fn f<'a>(q: &'a str) -> char { 'x' }\n");
        assert!(s.code[0].contains("fn f<'a>(q: &'a str)"));
        // the char literal's content is blanked
        assert!(s.code[0].contains("{ '' }"), "{:?}", s.code[0]);
    }

    #[test]
    fn strip_handles_raw_strings() {
        let s = strip("let p = r#\"unsafe { }\"#; let q = 2;\n");
        assert!(!s.code[0].contains("unsafe"));
        assert!(s.code[0].contains("let q = 2;"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!contains_word("an_unsafe_name", "unsafe"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip("/* outer /* inner */ still comment */ let a = 1;\n");
        assert!(s.code[0].contains("let a = 1;"));
        assert!(!s.code[0].contains("still"));
    }

    #[test]
    fn budget_check_tracks_fn_signatures_and_loop_shape() {
        // outermost loop with a nested loop and no check: fires once
        let bad = "fn run(g: &G, budget: &Budget) {\n    for s in 0..9 {\n        for u in g.nodes() {\n            work(u);\n        }\n    }\n}\n";
        let v = scan_source("x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BudgetCheck);
        assert_eq!(v[0].line, 2);

        // same shape with an amortized check: clean
        let good = bad.replace("for u in", "budget.check()?;\n        for u in");
        assert!(scan_source("x.rs", &good).is_empty());

        // same shape without the budget parameter: not our business
        let unbudgeted = bad.replace("budget: &Budget", "limit: usize");
        assert!(scan_source("x.rs", &unbudgeted).is_empty());

        // a single-level loop in a budget fn is exempt bookkeeping
        let flat = "fn run(g: &G, budget: &Budget) {\n    for u in g.nodes() {\n        work(u);\n    }\n}\n";
        assert!(scan_source("x.rs", flat).is_empty());

        // a par_ call inside the loop also counts as heavy
        let par = "fn run(g: &G, budget: &Budget) {\n    while improved {\n        xs.par_iter().for_each(work);\n    }\n}\n";
        let v = scan_source("x.rs", par);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BudgetCheck);
    }

    #[test]
    fn allow_marker_suppresses_on_same_and_previous_line() {
        let src = "// audit:allow(static-mut)\nstatic mut A: u32 = 0;\nstatic mut B: u32 = 0; // audit:allow(static-mut)\nstatic mut C: u32 = 0;\n";
        let v = scan_source("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }
}
