//! Machine-readable audit report.
//!
//! The JSON layout is a **pinned contract** (`parcom-audit-report/v1`,
//! golden-tested): CI archives the report as an artifact and downstream
//! tooling may parse it, so field additions require a schema bump. The
//! writer is hand-rolled like `crates/obs`' JSON emitters — the audit
//! stays dependency-free.

use crate::{Rule, Violation};

/// Per-rule accounting: how often it fired, how often a marker suppressed
/// it, and how long it ran (summed across files).
#[derive(Clone, Debug, Default)]
pub struct RuleStat {
    /// Unsuppressed findings.
    pub fired: usize,
    /// Findings suppressed by an `audit:allow` marker.
    pub suppressed: usize,
    /// Wall time spent in the rule, microseconds, summed across files.
    pub micros: u64,
}

/// An `audit:allow` marker that suppressed nothing — stale after a fix,
/// or naming a rule that does not exist. Reported as a warning, not a
/// violation: it must not gate CI, but it should not rot in the tree.
#[derive(Clone, Debug)]
pub struct UnusedAllow {
    /// File containing the marker.
    pub file: String,
    /// 1-based line of the marker.
    pub line: u32,
    /// The rule name the marker claims to suppress.
    pub rule: String,
}

/// A full workspace scan: violations, marker accounting and per-rule
/// timing.
#[derive(Debug)]
pub struct AuditReport {
    /// The scanned root, as given.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Worker threads the parallel scan used.
    pub threads: usize,
    /// Unsuppressed violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Markers that suppressed nothing.
    pub unused_allows: Vec<UnusedAllow>,
    /// One entry per [`Rule::ALL`] member, same order.
    pub stats: Vec<RuleStat>,
    /// Wall time of the whole scan, microseconds.
    pub elapsed_micros: u64,
}

impl AuditReport {
    /// The pinned schema identifier of [`AuditReport::to_json`].
    pub const SCHEMA: &'static str = "parcom-audit-report/v1";

    /// Serializes the report. Deterministic field order; every string
    /// JSON-escaped; `note` is `null` when absent.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push('{');
        field_str(&mut s, "schema", Self::SCHEMA);
        s.push(',');
        field_str(&mut s, "root", &self.root);
        s.push(',');
        field_num(&mut s, "files_scanned", self.files_scanned as u64);
        s.push(',');
        field_num(&mut s, "threads", self.threads as u64);
        s.push(',');
        field_num(&mut s, "elapsed_micros", self.elapsed_micros);
        s.push(',');

        s.push_str("\"rules\":[");
        for (i, (rule, st)) in Rule::ALL.iter().zip(&self.stats).enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            field_str(&mut s, "name", rule.name());
            s.push(',');
            field_num(&mut s, "fired", st.fired as u64);
            s.push(',');
            field_num(&mut s, "suppressed", st.suppressed as u64);
            s.push(',');
            field_num(&mut s, "micros", st.micros);
            s.push('}');
        }
        s.push_str("],");

        s.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            field_str(&mut s, "rule", v.rule.name());
            s.push(',');
            field_str(&mut s, "file", &v.file);
            s.push(',');
            field_num(&mut s, "line", v.line as u64);
            s.push(',');
            field_num(&mut s, "column", v.column as u64);
            s.push(',');
            field_str(&mut s, "excerpt", &v.excerpt);
            s.push(',');
            match &v.note {
                Some(n) => field_str(&mut s, "note", n),
                None => s.push_str("\"note\":null"),
            }
            s.push(',');
            s.push_str("\"call_chain\":[");
            for (j, link) in v.call_chain.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('{');
                field_str(&mut s, "file", &link.file);
                s.push(',');
                field_num(&mut s, "line", link.line as u64);
                s.push(',');
                field_str(&mut s, "function", &link.function);
                s.push('}');
            }
            s.push_str("]}");
        }
        s.push_str("],");

        s.push_str("\"unused_allows\":[");
        for (i, u) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            field_str(&mut s, "file", &u.file);
            s.push(',');
            field_num(&mut s, "line", u.line as u64);
            s.push(',');
            field_str(&mut s, "rule", &u.rule);
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

fn field_str(s: &mut String, key: &str, val: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":\"");
    for c in val.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

fn field_num(s: &mut String, key: &str, val: u64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&val.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_nests() {
        let report = AuditReport {
            root: "/w".into(),
            files_scanned: 1,
            threads: 2,
            violations: vec![Violation {
                file: "a.rs".into(),
                line: 3,
                column: 5,
                rule: Rule::StaticMut,
                excerpt: "static mut X: \"q\" = 0;".into(),
                note: None,
                call_chain: Vec::new(),
            }],
            unused_allows: vec![UnusedAllow {
                file: "b.rs".into(),
                line: 9,
                rule: "lossy-cast".into(),
            }],
            stats: vec![RuleStat::default(); Rule::ALL.len()],
            elapsed_micros: 42,
        };
        let j = report.to_json();
        assert!(j.starts_with("{\"schema\":\"parcom-audit-report/v1\""));
        assert!(j.contains("\\\"q\\\""));
        assert!(j.contains("\"note\":null"));
        assert!(j.contains(
            "\"unused_allows\":[{\"file\":\"b.rs\",\"line\":9,\"rule\":\"lossy-cast\"}]"
        ));
    }
}
