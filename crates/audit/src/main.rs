#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `parcom-audit` — run the workspace concurrency-discipline lint.
//!
//! Usage: `cargo run -p parcom-audit [root] [--json PATH]`. Without a
//! root the workspace is located by walking up from the current directory
//! to the first `Cargo.toml` declaring `[workspace]`. `--json PATH`
//! additionally writes the pinned `parcom-audit-report/v1` document CI
//! archives. Exits nonzero when any rule fires; diagnostics are
//! `file:line: [rule] offending-line` with notes and call-chain evidence
//! indented below. Unused `audit:allow` markers print as warnings and do
//! not affect the exit status.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args_os().skip(1);
    while let Some(arg) = args.next() {
        match arg.to_str() {
            Some("--json") => json_path = args.next().map(PathBuf::from),
            Some("--help" | "-h") => {
                eprintln!("usage: parcom-audit [root] [--json PATH]");
                return ExitCode::SUCCESS;
            }
            Some(flag) if flag.starts_with("--") => {
                eprintln!("parcom-audit: unknown flag `{flag}`");
                return ExitCode::FAILURE;
            }
            _ => root = Some(PathBuf::from(arg)),
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("parcom-audit: no workspace root found above the current directory");
            return ExitCode::FAILURE;
        }
    };

    let report = match parcom_audit::scan_workspace_report(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("parcom-audit: scanning {} failed: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("parcom-audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    for v in &report.violations {
        println!("{v}");
    }
    for u in &report.unused_allows {
        eprintln!(
            "{}:{}: warning: unused audit:allow({}) — it suppresses nothing; stale marker or typo'd rule name",
            u.file, u.line, u.rule
        );
    }

    println!(
        "parcom-audit: {} files on {} threads in {:.1} ms",
        report.files_scanned,
        report.threads,
        report.elapsed_micros as f64 / 1000.0
    );
    for (rule, stat) in parcom_audit::Rule::ALL.iter().zip(&report.stats) {
        println!(
            "  {:22} fired {:3}  suppressed {:3}  {:9.2} ms",
            rule.name(),
            stat.fired,
            stat.suppressed,
            stat.micros as f64 / 1000.0
        );
    }

    if report.violations.is_empty() {
        println!("parcom-audit: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("parcom-audit: {} violation(s)", report.violations.len());
        ExitCode::FAILURE
    }
}
