#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `parcom-audit` — run the workspace concurrency-discipline lint.
//!
//! Usage: `cargo run -p parcom-audit [root]`. Without an argument the
//! workspace root is located by walking up from the current directory to
//! the first `Cargo.toml` declaring `[workspace]`. Exits nonzero when any
//! rule fires; diagnostics are `file:line: [rule] offending-line`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("parcom-audit: no workspace root found above the current directory");
                return ExitCode::FAILURE;
            }
        },
    };

    let violations = match parcom_audit::scan_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("parcom-audit: scanning {} failed: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if violations.is_empty() {
        println!("parcom-audit: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    let mut by_rule: Vec<(parcom_audit::Rule, usize)> = Vec::new();
    for rule in parcom_audit::Rule::ALL {
        let count = violations.iter().filter(|v| v.rule == rule).count();
        if count > 0 {
            by_rule.push((rule, count));
        }
    }
    let summary: Vec<String> = by_rule
        .iter()
        .map(|(rule, count)| format!("{count} {rule}"))
        .collect();
    eprintln!(
        "parcom-audit: {} violation(s): {}",
        violations.len(),
        summary.join(", ")
    );
    ExitCode::FAILURE
}
