//! Per-file syntactic model: function items, loops, call sites and
//! `audit:allow` markers, built once per file and shared by every rule.
//!
//! The model deliberately stops below type checking: functions are
//! recognized by the `fn` keyword, calls by `ident (` token pairs,
//! budgets by the literal parameter pattern `budget: &Budget`. That is
//! enough for discipline rules — and it is what keeps the audit
//! dependency-free and fast enough to run on every push.

use crate::lexer::{lex, LexedFile, Token, TokenKind};
use crate::scopes::ScopeTree;

/// An `audit:allow(<rule>)` marker found in a comment.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    /// 1-based line the marker's comment is on.
    pub line: u32,
    /// The rule name between the parentheses (not validated here; the
    /// report warns about names that match no rule).
    pub rule: String,
}

/// A call site `name(…)` inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// One `for` / `while` / `loop` in a function body.
#[derive(Clone, Debug)]
pub struct LoopItem {
    /// Token index of the loop keyword.
    pub kw_tok: usize,
    /// 1-based line of the loop keyword.
    pub header_line: u32,
    /// Token index of the body `{` (usize::MAX if not found).
    pub body_open: usize,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
    /// True when no enclosing loop of the same function contains this one.
    pub outermost: bool,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body `{` (`None` for bodyless trait methods).
    pub body_open: Option<usize>,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
    /// True when the parameter list contains `budget: &Budget`.
    pub takes_budget: bool,
    /// True when the function lives in test code.
    pub is_test: bool,
    /// Loops directly in the body (closure bodies included — a loop in a
    /// closure still runs under the function's budget obligations).
    pub loops: Vec<LoopItem>,
    /// Lowercase-initial `name(` call sites in the body.
    pub calls: Vec<CallSite>,
    /// True when the body contains a parallel call site (`.par_*`,
    /// `.into_par_iter`, `rayon::join/scope/spawn`).
    pub has_par: bool,
    /// True when the body contains a loop nested inside another loop.
    pub has_nested_loop: bool,
}

impl FnItem {
    /// A function is *heavy* when interrupting it late matters: it runs a
    /// parallel region or a multi-level loop.
    pub fn is_heavy(&self) -> bool {
        self.has_par || self.has_nested_loop
    }
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, `/`-normalized.
    pub path: String,
    /// Raw source lines (for diagnostics' excerpts).
    pub lines: Vec<String>,
    /// The token stream.
    pub lex: LexedFile,
    /// The brace scope tree.
    pub scopes: ScopeTree,
    /// All `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// All `audit:allow` markers in source order.
    pub allows: Vec<AllowMarker>,
}

/// Rust keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "in", "as", "let", "else",
    "unsafe", "where", "impl", "ref", "box", "await", "dyn", "use", "pub", "mod", "static",
    "const", "struct", "enum", "union", "trait", "type", "break", "continue", "yield",
];

impl FileModel {
    /// Lexes and models one file. `path` is echoed into diagnostics and
    /// selects path-dependent rules; the file is not re-read from disk.
    pub fn build(path: &str, source: &str) -> Self {
        let lex = lex(source);
        let scopes = ScopeTree::build(&lex);
        let fns = extract_fns(&lex, &scopes);
        let allows = extract_allows(&lex);
        FileModel {
            path: path.replace('\\', "/"),
            lines: source.lines().map(str::to_string).collect(),
            lex,
            scopes,
            fns,
            allows,
        }
    }

    /// The trimmed source text of 1-based `line` (for excerpts).
    pub fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Index of the first token on 1-based `line`, if any.
    pub fn first_token_on_line(&self, line: u32) -> Option<usize> {
        let toks = &self.lex.tokens;
        let mut idx = toks.partition_point(|t| t.line < line);
        if idx < toks.len() && toks[idx].line == line {
            // partition_point gives the first token with t.line >= line
            while idx > 0 && toks[idx - 1].line == line {
                idx -= 1;
            }
            Some(idx)
        } else {
            None
        }
    }

    /// The 1-based line of the first token of the *statement* containing
    /// `line` — walking back over the tokens since the previous `;`, `{`
    /// or `}`, attributes included. For a diagnostic on the third line of
    /// a multi-line statement, this is where a reviewer would put the
    /// suppression.
    pub fn statement_first_line(&self, line: u32) -> u32 {
        let Some(tok) = self.first_token_on_line(line) else {
            return line;
        };
        let toks = &self.lex.tokens;
        let mut start = 0usize;
        for j in (0..tok).rev() {
            let t = &toks[j];
            if t.is_punct(";") || t.is_open('{') || t.is_close('}') || t.is_punct(",") {
                start = j + 1;
                break;
            }
        }
        if start >= toks.len() {
            return line;
        }
        toks[start].line.min(line)
    }

    /// Finds an `audit:allow(rule)` marker covering 1-based `line`:
    /// trailing on the line itself, trailing on the first line of the
    /// enclosing statement, or in the contiguous run of comment-only
    /// lines directly above the statement's first token line (which is
    /// how a marker sits above `#[…]` attributes or a doc comment).
    /// Returns the marker's index into [`Self::allows`].
    pub fn find_allow(&self, rule: &str, line: u32) -> Option<usize> {
        let marker_on = |l: u32| {
            self.allows
                .iter()
                .position(|m| m.line == l && m.rule == rule)
        };
        if let Some(i) = marker_on(line) {
            return Some(i);
        }
        let first = self.statement_first_line(line);
        if first != line {
            if let Some(i) = marker_on(first) {
                return Some(i);
            }
        }
        // comment-only lines inside the statement's extent — e.g. a
        // marker between a `#[…]` attribute and the `fn` line it covers
        for l in first..line {
            if self.lex.is_comment_only_line(l) {
                if let Some(i) = marker_on(l) {
                    return Some(i);
                }
            }
        }
        // contiguous comment-only run above the statement start
        let mut l = first;
        while l > 1 && self.lex.is_comment_only_line(l - 1) {
            l -= 1;
            if let Some(i) = marker_on(l) {
                return Some(i);
            }
        }
        None
    }

    /// True when the token at `tok` lies in test code or the whole file
    /// is a test/bench source (integration tests, benches).
    pub fn in_test(&self, tok: usize) -> bool {
        self.is_test_file() || self.scopes.in_test(tok)
    }

    /// Integration tests and benches are test code wholesale.
    pub fn is_test_file(&self) -> bool {
        self.path.contains("/tests/") || self.path.contains("/benches/")
    }
}

/// Extracts `audit:allow(<rule>)` markers from comment text. A marker
/// must *lead* its comment (after the `//`/`/*` sigils): that is the
/// written convention, and it keeps prose that merely *mentions*
/// `audit:allow(..)` — like this lint's own documentation — from being
/// mistaken for a suppression.
fn extract_allows(lex: &LexedFile) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for (idx, comment) in lex.comments.iter().enumerate() {
        let head = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
        if let Some(rest) = head.strip_prefix("audit:allow(") {
            if let Some(end) = rest.find(')') {
                out.push(AllowMarker {
                    line: idx as u32 + 1,
                    rule: rest[..end].trim().to_string(),
                });
            }
        }
    }
    out
}

/// True when the ident token at `k` is a parallel call site: a `.par_*`
/// or `.into_par_iter` method, or `rayon::{join,scope,spawn}`.
pub fn is_par_site(tokens: &[Token], k: usize) -> bool {
    let t = &tokens[k];
    if t.kind != TokenKind::Ident {
        return false;
    }
    let after_dot = k > 0 && tokens[k - 1].is_punct(".");
    if after_dot && (t.text.starts_with("par_") || t.text == "into_par_iter") {
        return true;
    }
    if matches!(
        t.text.as_str(),
        "join" | "scope" | "spawn" | "spawn_broadcast"
    ) && k >= 2
        && tokens[k - 1].is_punct("::")
        && tokens[k - 2].is_ident("rayon")
    {
        return true;
    }
    false
}

/// True when `tokens[k..]` starts the call `budget.check*(`.
fn is_budget_check(tokens: &[Token], k: usize) -> bool {
    tokens[k].is_ident("budget")
        && tokens.get(k + 1).is_some_and(|t| t.is_punct("."))
        && tokens
            .get(k + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text.starts_with("check"))
}

/// True when `tokens[lo..hi]` contains a `budget.check*` call.
pub fn range_has_budget_check(tokens: &[Token], lo: usize, hi: usize) -> bool {
    (lo..hi.min(tokens.len())).any(|k| is_budget_check(tokens, k))
}

/// Scans all `fn` items out of the token stream.
fn extract_fns(lex: &LexedFile, scopes: &ScopeTree) -> Vec<FnItem> {
    let toks = &lex.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn(` is a function-pointer type, not an item
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();

        // skip generics to the parameter list: first `(` at angle-depth 0
        let mut j = i + 2;
        let mut angle: i64 = 0;
        let params_open = loop {
            let Some(t) = toks.get(j) else {
                break None;
            };
            if angle == 0 && t.is_open('(') {
                break Some(j);
            }
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "{" | ";" => break None, // malformed / not a normal fn
                _ => {}
            }
            j += 1;
        };
        let Some(params_open) = params_open else {
            i += 1;
            continue;
        };
        let params_close = match_forward(toks, params_open);
        let takes_budget = param_range_takes_budget(toks, params_open + 1, params_close);

        // body: first `{` at delimiter depth 0 before a `;`
        let mut k = params_close + 1;
        let mut depth: i64 = 0;
        let body_open = loop {
            let Some(t) = toks.get(k) else {
                break None;
            };
            match t.kind {
                TokenKind::Open if depth == 0 && t.is_open('{') => break Some(k),
                TokenKind::Open => depth += 1,
                TokenKind::Close => depth -= 1,
                TokenKind::Punct if depth == 0 && t.text == ";" => break None,
                _ => {}
            }
            k += 1;
        };
        let body_close = body_open.map(|b| match_forward(toks, b)).unwrap_or(k);

        let (loops, calls, has_par, has_nested_loop) = match body_open {
            Some(open) => analyze_body(toks, open, body_close),
            None => (Vec::new(), Vec::new(), false, false),
        };

        out.push(FnItem {
            name,
            line: toks[i].line,
            fn_tok: i,
            body_open,
            body_close,
            takes_budget,
            // the token after the body `{` sits in the body scope, which
            // carries the #[test]/#[cfg(test)] attribution of the header
            is_test: scopes.in_test(i)
                || body_open.is_some_and(|b| {
                    let s = scopes.at(b + 1);
                    scopes.scopes[s].is_test
                }),
            loops,
            calls,
            has_par,
            has_nested_loop,
        });
        // continue after the signature; nested fns inside the body are
        // found because the scan is linear over all tokens
        i = params_close + 1;
    }
    out
}

/// True when the parameter tokens contain `budget: &Budget` (an optional
/// lifetime between `&` and the type is accepted).
fn param_range_takes_budget(toks: &[Token], lo: usize, hi: usize) -> bool {
    let hi = hi.min(toks.len());
    (lo..hi).any(|k| {
        toks[k].is_ident("budget")
            && toks.get(k + 1).is_some_and(|t| t.is_punct(":"))
            && toks.get(k + 2).is_some_and(|t| t.is_punct("&"))
            && (toks.get(k + 3).is_some_and(|t| t.is_ident("Budget"))
                || (toks
                    .get(k + 3)
                    .is_some_and(|t| t.kind == TokenKind::Lifetime)
                    && toks.get(k + 4).is_some_and(|t| t.is_ident("Budget"))))
    })
}

/// Token index of the delimiter matching the opener at `open` (or
/// `toks.len()` when unclosed).
pub fn match_forward(toks: &[Token], open: usize) -> usize {
    let mut depth: i64 = 0;
    for (off, t) in toks[open..].iter().enumerate() {
        match t.kind {
            TokenKind::Open => depth += 1,
            TokenKind::Close => {
                depth -= 1;
                if depth == 0 {
                    return open + off;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Walks a function body once, collecting loops, call sites and parallel
/// markers.
fn analyze_body(
    toks: &[Token],
    open: usize,
    close: usize,
) -> (Vec<LoopItem>, Vec<CallSite>, bool, bool) {
    let mut loops: Vec<LoopItem> = Vec::new();
    let mut calls = Vec::new();
    let mut has_par = false;
    let close = close.min(toks.len());

    for k in (open + 1)..close {
        let t = &toks[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "for" | "while" | "loop" => {
                // `loop` only as a keyword: never directly after `.` or `::`
                if k > 0 && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::")) {
                    continue;
                }
                // body = first `{` at paren/bracket depth 0 after the header
                let mut depth: i64 = 0;
                let mut body_open = usize::MAX;
                for (j, tok) in toks.iter().enumerate().take(close).skip(k + 1) {
                    match tok.kind {
                        TokenKind::Open if depth == 0 && tok.is_open('{') => {
                            body_open = j;
                            break;
                        }
                        TokenKind::Open => depth += 1,
                        TokenKind::Close => depth -= 1,
                        _ => {}
                    }
                }
                let body_close = if body_open != usize::MAX {
                    match_forward(toks, body_open)
                } else {
                    close
                };
                loops.push(LoopItem {
                    kw_tok: k,
                    header_line: t.line,
                    body_open,
                    body_close,
                    outermost: true, // fixed up below
                });
            }
            _ => {
                if is_par_site(toks, k) {
                    has_par = true;
                }
                // call site: lowercase-initial ident directly before `(`
                if toks.get(k + 1).is_some_and(|n| n.is_open('('))
                    && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                    && t.text.chars().next().is_some_and(|c| c.is_lowercase())
                    && !(k > 0 && toks[k - 1].is_ident("fn"))
                {
                    calls.push(CallSite {
                        name: t.text.clone(),
                        line: t.line,
                    });
                }
            }
        }
    }

    // outermost = not inside any other loop's body range
    let ranges: Vec<(usize, usize)> = loops.iter().map(|l| (l.kw_tok, l.body_close)).collect();
    let mut has_nested_loop = false;
    for l in loops.iter_mut() {
        let nested = ranges
            .iter()
            .any(|&(kw, end)| kw != l.kw_tok && l.kw_tok > kw && l.kw_tok < end);
        l.outermost = !nested;
        if nested {
            has_nested_loop = true;
        }
    }
    (loops, calls, has_par, has_nested_loop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_items_with_budget_params() {
        let src = "fn plain(x: u32) -> u32 { x }\n\
                   fn guarded(g: &Graph, budget: &Budget) { run(g); }\n\
                   fn generic<T: Ord>(xs: Vec<T>, budget: &'a Budget) {}\n";
        let m = FileModel::build("crates/x/src/lib.rs", src);
        assert_eq!(m.fns.len(), 3);
        assert!(!m.fns[0].takes_budget);
        assert!(m.fns[1].takes_budget);
        assert!(m.fns[2].takes_budget, "lifetime between & and Budget");
        assert_eq!(m.fns[1].calls.len(), 1);
        assert_eq!(m.fns[1].calls[0].name, "run");
    }

    #[test]
    fn loops_and_nesting() {
        let src = "fn f() {\n  for a in xs {\n    while b {\n      work();\n    }\n  }\n  loop { break; }\n}\n";
        let m = FileModel::build("x.rs", src);
        let f = &m.fns[0];
        assert_eq!(f.loops.len(), 3);
        assert!(f.loops[0].outermost);
        assert!(!f.loops[1].outermost);
        assert!(f.loops[2].outermost);
        assert!(f.has_nested_loop);
        assert!(!f.has_par);
    }

    #[test]
    fn par_sites_are_seen() {
        let m = FileModel::build("x.rs", "fn f(xs: &[u32]) { xs.par_iter().sum(); }\n");
        assert!(m.fns[0].has_par);
        let m = FileModel::build("x.rs", "fn f() { rayon::join(|| a(), || b()); }\n");
        assert!(m.fns[0].has_par);
        let m = FileModel::build("x.rs", "fn f(p: &Path) { p.join(\"x\"); }\n");
        assert!(!m.fns[0].has_par, "Path::join is not rayon::join");
    }

    #[test]
    fn statement_first_line_spans_multiline_statements() {
        let src = "fn f(v: &[u32]) -> u32 {\n    let x = v\n        .len() as u32;\n    x\n}\n";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.statement_first_line(3), 2);
        assert_eq!(m.statement_first_line(2), 2);
    }

    #[test]
    fn allow_markers_found_with_justifications() {
        let src = "// audit:allow(lossy-cast): bounded by construction\nlet x = v.len() as u32;\n";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].rule, "lossy-cast");
        assert_eq!(m.allows[0].line, 1);
        assert!(m.find_allow("lossy-cast", 2).is_some());
        assert!(m.find_allow("static-mut", 2).is_none());
    }

    #[test]
    fn allow_marker_between_attribute_and_item_reaches_it() {
        let src = "#[inline]\n// audit:allow(budget-propagation): reviewed\npub fn helper() {}\n";
        let m = FileModel::build("x.rs", src);
        assert!(
            m.find_allow("budget-propagation", 3).is_some(),
            "marker between the attribute and the fn line must cover it"
        );
    }

    #[test]
    fn prose_mentions_of_allow_are_not_markers() {
        let src = "/// Suppress with `audit:allow(lossy-cast)` when reviewed.\nfn doc_about_allows() {}\n// audit:allow(lossy-cast): a real marker\nlet x = v.len() as u32;\n";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.allows.len(), 1, "{:?}", m.allows);
        assert_eq!(m.allows[0].line, 3);
    }

    #[test]
    fn allow_marker_above_attribute_reaches_the_item() {
        let src =
            "// audit:allow(budget-propagation): reviewed\n#[inline]\n#[cold]\nfn helper() {}\n";
        let m = FileModel::build("x.rs", src);
        assert!(
            m.find_allow("budget-propagation", 4).is_some(),
            "marker above the attribute stack must cover the fn line"
        );
    }

    #[test]
    fn trailing_marker_does_not_leak_to_the_next_statement() {
        let src = "let a = v.len() as u32; // audit:allow(lossy-cast)\nlet b = v.len() as u32;\n";
        let m = FileModel::build("x.rs", src);
        assert!(m.find_allow("lossy-cast", 1).is_some());
        assert!(m.find_allow("lossy-cast", 2).is_none());
    }
}
