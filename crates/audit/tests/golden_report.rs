//! Golden test pinning the `parcom-audit-report/v1` JSON schema.
//!
//! CI archives the report and downstream tooling parses it, so the exact
//! serialized shape is a contract: any field rename, reorder or addition
//! must fail here and force a deliberate schema bump. Volatile values
//! (timings, thread count, absolute root path) are scrubbed to zero /
//! empty before comparison; everything else is byte-for-byte.

use parcom_audit::scan_workspace_report;
use std::path::Path;

/// Zeroes the run-dependent values while leaving structure intact.
fn scrub(json: &str) -> String {
    let mut out = json.to_string();
    for key in ["\"micros\":", "\"elapsed_micros\":", "\"threads\":"] {
        let mut from = 0;
        while let Some(pos) = out[from..].find(key) {
            let start = from + pos + key.len();
            let end = start
                + out[start..]
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(out.len() - start);
            out.replace_range(start..end, "0");
            from = start;
        }
    }
    if let Some(pos) = out.find("\"root\":\"") {
        let start = pos + "\"root\":\"".len();
        if let Some(len) = out[start..].find('"') {
            out.replace_range(start..start + len, "");
        }
    }
    out
}

#[test]
fn report_json_matches_pinned_schema() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_ws");
    let report = scan_workspace_report(&root).expect("scan golden workspace");
    let got = scrub(&report.to_json());
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_report.json");
    let want = std::fs::read_to_string(&golden_path).expect("read golden_report.json");
    assert_eq!(
        got,
        want.trim_end(),
        "parcom-audit-report/v1 drifted from the pinned golden.\n\
         If the change is deliberate, bump the schema version and \
         regenerate tests/fixtures/golden_report.json."
    );
}

#[test]
fn golden_workspace_evidence_survives_the_json_round() {
    // the acceptance shape: a budget-less helper called from run_guarded
    // is flagged and its call chain is in the JSON evidence
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_ws");
    let report = scan_workspace_report(&root).expect("scan golden workspace");
    let json = report.to_json();
    assert!(json.contains("\"rule\":\"budget-propagation\""));
    assert!(json.contains(
        "\"call_chain\":[{\"file\":\"src/lib.rs\",\"line\":7,\"function\":\"run_guarded\"},\
{\"file\":\"src/lib.rs\",\"line\":11,\"function\":\"helper\"}]"
    ));
    // unused-marker accounting is part of the report, not the gate
    assert!(json.contains(
        "\"unused_allows\":[{\"file\":\"src/lib.rs\",\"line\":19,\"rule\":\"static-mut\"}]"
    ));
}
