// Fixture: truncating casts of counts. Never compiled.

fn ids(labels: &[u64]) -> u32 {
    labels.len() as u32
}

fn node_ids(g: &Graph) -> u32 {
    g.node_count() as u32
}

fn edge_ids(g: &Graph) -> u32 {
    g.edge_count() as u32
}

fn fine(labels: &[u64]) -> u64 {
    labels.len() as u64 // widening: not flagged
}
