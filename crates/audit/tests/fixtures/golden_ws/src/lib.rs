// Golden-report fixture workspace: a deterministic mix of violations,
// a suppressed finding, and an unused marker, pinned byte-for-byte by
// the parcom-audit-report/v1 golden test. Do not reformat casually —
// lines and columns are part of the pinned output. Never compiled.
static mut COUNTER: u64 = 0;

fn run_guarded(g: &Graph, budget: &Budget) {
    helper(g);
}

fn helper(g: &Graph) {
    g.nodes().par_iter().for_each(|u| work(u).unwrap());
}

fn sizes(v: &[u64]) -> u32 {
    v.len() as u32 // audit:allow(lossy-cast): checked at construction
}

// audit:allow(static-mut): stale marker, suppresses nothing
fn anchor() {}
