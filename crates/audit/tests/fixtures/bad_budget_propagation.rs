// Fixture: a budgeted entry point reaches a heavy helper through a thin
// wrapper, and the helper does not take the budget — the cancellation
// promise silently ends at the wrapper call. The budgeted callee and the
// light bookkeeping helper below must NOT fire. Never compiled.

fn run_guarded(g: &Graph, budget: &Budget) -> Partition {
    let zeta = wrapper(g);
    checked_refine(g, budget);
    tally(g);
    zeta
}

fn wrapper(g: &Graph) -> Partition {
    heavy_sweeps(g)
}

fn heavy_sweeps(g: &Graph) -> Partition {
    let mut zeta = Partition::singleton(g.node_count());
    for _sweep in 0..100 {
        for u in g.nodes() {
            zeta.move_to_best(u);
        }
    }
    zeta
}

fn checked_refine(g: &Graph, budget: &Budget) {
    for _sweep in 0..100 {
        if budget.check_sweep().is_err() {
            break;
        }
        for u in g.nodes() {
            refine(u);
        }
    }
}

fn tally(g: &Graph) -> usize {
    let mut total = 0;
    for u in g.nodes() {
        total += u as usize;
    }
    total
}
