// Fixture: static mut global state. Never compiled.
static mut GLOBAL_COUNTER: u64 = 0;

static FINE: u64 = 0; // plain statics are fine

fn touch() -> u64 {
    FINE
}
