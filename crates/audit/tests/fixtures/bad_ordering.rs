// Fixture: atomic Ordering variants used outside an allowlisted module.
// This file is never compiled; the audit tests feed it to the scanner.
use std::sync::atomic::{AtomicU32, Ordering};

fn sneaky_relaxed(counter: &AtomicU32) -> u32 {
    counter.fetch_add(1, Ordering::Relaxed)
}

fn sneaky_seqcst(counter: &AtomicU32) -> u32 {
    counter.load(Ordering::SeqCst)
}

fn fine_cmp(a: u32, b: u32) -> std::cmp::Ordering {
    // cmp::Ordering variants must NOT trip the rule
    match a.cmp(&b) {
        std::cmp::Ordering::Less => std::cmp::Ordering::Less,
        other => other,
    }
}
