// Fixture: regression coverage for the allow-marker matcher. A marker
// above an attribute stack, between an attribute and the item, or on the
// first line of a multi-line statement must still suppress a finding
// whose diagnostic points at a later line. Every violation here is
// suppressed, so the scan must return nothing. Never compiled.

// audit:allow(budget-propagation): reviewed, one bounded pass per call
#[inline]
#[cold]
fn heavy_behind_attributes(g: &Graph) {
    for _s in 0..10 {
        for u in g.nodes() {
            touch(u);
        }
    }
}

fn run_guarded(g: &Graph, budget: &Budget) {
    heavy_behind_attributes(g);
    sized(g);
}

#[inline]
// audit:allow(budget-propagation): marker between attribute and item
fn sized(g: &Graph) {
    g.nodes().par_iter().for_each(touch);
}

fn multiline_statement(v: &[u64]) -> u32 {
    // audit:allow(lossy-cast): bounded by the u32 id space
    let narrowed = v
        .len() as u32;
    narrowed
}
