// Fixture: the negative shapes for budget-propagation. Every heavy
// helper reachable from the budgeted root either takes the budget itself
// or carries a reviewed allow marker; the scan must return nothing.
// Never compiled.

fn run_guarded(g: &Graph, budget: &Budget) -> Partition {
    let zeta = threaded(g, budget);
    amortized(g);
    zeta
}

fn threaded(g: &Graph, budget: &Budget) -> Partition {
    let mut zeta = Partition::singleton(g.node_count());
    for _sweep in 0..100 {
        if budget.check_sweep().is_err() {
            break;
        }
        for u in g.nodes() {
            zeta.move_to_best(u);
        }
    }
    zeta
}

// audit:allow(budget-propagation): one bounded pass per call, reviewed
fn amortized(g: &Graph) {
    g.nodes().par_iter().for_each(touch);
}
