// Fixture: a mutex guard bound before a parallel region and still live
// when the workers fan out — they serialize on (or deadlock against) the
// held lock. The temporary, dropped and scoped shapes below must NOT
// fire. Never compiled.

fn guard_held_across_par(m: &Mutex<Vec<u32>>, xs: &[u32]) -> u32 {
    let guard = m.lock().unwrap();
    xs.par_iter().map(|x| x + guard.first().copied().unwrap_or(0)).sum()
}

fn temporary_guard_is_fine(m: &Mutex<Vec<u32>>, xs: &[u32]) -> Option<u32> {
    // the ScratchPool idiom: lock, pop, guard dies with the statement
    let popped = m.lock().unwrap_or_else(|e| e.into_inner()).pop();
    xs.par_iter().for_each(touch);
    popped
}

fn dropped_guard_is_fine(m: &Mutex<Vec<u32>>, xs: &[u32]) -> u32 {
    let guard = m.lock().unwrap();
    let n = guard.first().copied().unwrap_or(0);
    drop(guard);
    xs.par_iter().map(|x| x + n).sum()
}

fn scoped_guard_is_fine(m: &Mutex<Vec<u32>>, xs: &[u32]) -> u32 {
    let n = {
        let guard = m.lock().unwrap();
        guard.first().copied().unwrap_or(0)
    };
    xs.par_iter().map(|x| x + n).sum()
}
