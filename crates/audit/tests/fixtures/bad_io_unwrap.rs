// Fixture: unwrap in parsing code. The test scans this with a synthetic
// crates/io/ path, where the rule applies. Never compiled.

fn parse_header(line: &str) -> (usize, usize) {
    let mut it = line.split_whitespace();
    let n: usize = it.next().unwrap().parse().unwrap();
    let m: usize = it.next().expect("missing edge count").parse().unwrap();
    (n, m)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u32, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
    }
}
