// Fixture: partial_cmp().unwrap() comparators. Never compiled.

fn sort_floats(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn sort_floats_multiline(xs: &mut [f64]) {
    xs.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("NaN")
    });
}

fn fine(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

fn also_fine(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}
