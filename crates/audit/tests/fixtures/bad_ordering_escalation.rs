// Fixture: ordering escalation inside an allowlisted atomics module. The
// test scans this at a synthetic ORDERING_ALLOWED path, where plain
// Relaxed/Acquire usage is the documented protocol but Release, AcqRel
// and SeqCst mean the benign-race argument changed and needs re-review.
// Never compiled.
use std::sync::atomic::{AtomicU32, Ordering};

fn documented_protocol(flag: &AtomicU32) -> u32 {
    flag.store(1, Ordering::Relaxed);
    flag.load(Ordering::Acquire)
}

fn escalated_store(flag: &AtomicU32) {
    flag.store(1, Ordering::Release);
}

fn escalated_rmw(flag: &AtomicU32) -> u32 {
    flag.swap(2, Ordering::AcqRel)
}

fn escalated_load(flag: &AtomicU32) -> u32 {
    flag.load(Ordering::SeqCst)
}
