// Fixture: every violation is suppressed by an audit:allow marker, so the
// scanner must return nothing. Never compiled.

fn ids(labels: &[u64]) -> u32 {
    // the id space is checked against u32::MAX at construction
    labels.len() as u32 // audit:allow(lossy-cast)
}

// audit:allow(static-mut)
static mut LEGACY: u64 = 0;

fn sort_floats(xs: &mut [f64]) {
    // audit:allow(partial-cmp-unwrap)
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn delegated(members: &[Member], g: &Graph, budget: &Budget) -> Vec<Partition> {
    // every member run checks the shared budget internally
    // audit:allow(budget-check)
    for m in members {
        for _ in 0..2 {
            m.detect_guarded(g, budget);
        }
    }
    Vec::new()
}
