#![allow(dead_code)]
// Fixture: unsafe block outside the allowlist. Never compiled.

fn read_first(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}

// The string "unsafe" and the ident unsafe_code must not trip the rule:
const MSG: &str = "unsafe";
fn unsafe_code_mention() {}
