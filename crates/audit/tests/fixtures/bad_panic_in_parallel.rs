// Fixture: panicking constructs inside rayon closures — one worker
// panicking tears down the whole pool mid-run. The sequential unwrap and
// the test-module unwrap below must NOT fire. Never compiled.

fn unwrap_in_par_closure(xs: &[Option<u32>]) -> u32 {
    xs.par_iter().map(|x| x.unwrap()).sum()
}

fn panic_macro_in_join(flag: bool) {
    rayon::join(|| work(), || if flag { panic!("boom") });
}

fn sequential_unwrap_is_fine(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    xs.par_iter().map(|x| x + first).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_in_par_closure_is_fine() {
        let xs = vec![Some(1u32)];
        let total: u32 = xs.par_iter().map(|x| x.unwrap()).sum();
        assert_eq!(total, 1);
    }
}
