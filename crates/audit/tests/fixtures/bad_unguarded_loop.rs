// Fixture: a `budget: &Budget` function whose outermost loop does heavy
// work (nested loop, then a par_ call) without ever checking the budget —
// a deadline or cancel would go unnoticed for the whole run. The compliant
// and exempt shapes below must NOT fire. Never compiled.

fn run_guarded_bad(g: &Graph, budget: &Budget) -> Partition {
    let mut zeta = Partition::singleton(g.node_count());
    for _sweep in 0..100 {
        for u in g.nodes() {
            zeta.move_to_best(u);
        }
    }
    zeta
}

fn run_guarded_bad_parallel(g: &Graph, budget: &Budget) -> Partition {
    let mut zeta = Partition::singleton(g.node_count());
    loop {
        let moved = g.nodes().par_iter().map(|u| zeta.move_to_best(*u)).sum();
        if moved == 0 {
            break;
        }
    }
    zeta
}

fn run_guarded_good(g: &Graph, budget: &Budget) -> Partition {
    let mut zeta = Partition::singleton(g.node_count());
    for _sweep in 0..100 {
        if budget.check_sweep().is_err() {
            break;
        }
        for u in g.nodes() {
            zeta.move_to_best(u);
        }
    }
    zeta
}

fn run_guarded_bookkeeping(g: &Graph, budget: &Budget) -> usize {
    // single-level bookkeeping loop: exempt by design — checks are
    // amortized at sweep granularity, never per element
    let mut total = 0;
    for u in g.nodes() {
        total += u as usize;
    }
    total
}

fn unbudgeted(g: &Graph) -> usize {
    // no budget parameter, no promise to keep: heavy loops are fine here
    let mut total = 0;
    for _ in 0..10 {
        for u in g.nodes() {
            total += u as usize;
        }
    }
    total
}
