//! One test per lint rule: each committed fixture must trip exactly its
//! rule, the escape-hatch fixture must scan clean, and the workspace
//! itself must be violation-free.

use parcom_audit::{scan_source, scan_workspace, Rule};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Scans a fixture under a synthetic workspace-relative path and returns
/// the rules that fired (with multiplicity).
fn rules_fired(path: &str, source: &str) -> Vec<Rule> {
    scan_source(path, source)
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

#[test]
fn detects_atomic_ordering_outside_allowlist() {
    let fired = rules_fired("crates/core/src/sneaky.rs", &fixture("bad_ordering.rs"));
    assert_eq!(fired, vec![Rule::AtomicOrdering; 2], "{fired:?}");
}

#[test]
fn permits_atomic_ordering_in_allowlisted_module() {
    // the allowlist admits the *module*; the SeqCst in the fixture still
    // trips the strength rule there (see ordering-escalation tests)
    let fired = rules_fired("crates/graph/src/atomicf64.rs", &fixture("bad_ordering.rs"));
    assert_eq!(fired, vec![Rule::OrderingEscalation], "{fired:?}");
}

#[test]
fn detects_static_mut() {
    let fired = rules_fired("crates/core/src/sneaky.rs", &fixture("bad_static_mut.rs"));
    assert_eq!(fired, vec![Rule::StaticMut], "{fired:?}");
}

#[test]
fn detects_unsafe_code() {
    let fired = rules_fired("crates/graph/src/sneaky.rs", &fixture("bad_unsafe.rs"));
    assert_eq!(fired, vec![Rule::UnsafeCode], "{fired:?}");
}

#[test]
fn detects_partial_cmp_unwrap_comparators() {
    let fired = rules_fired("crates/core/src/sneaky.rs", &fixture("bad_partial_cmp.rs"));
    // one single-line unwrap, one multi-line expect
    assert_eq!(fired, vec![Rule::PartialCmpUnwrap; 2], "{fired:?}");
}

#[test]
fn detects_lossy_casts() {
    let fired = rules_fired("crates/graph/src/sneaky.rs", &fixture("bad_lossy_cast.rs"));
    assert_eq!(fired, vec![Rule::LossyCast; 3], "{fired:?}");
}

#[test]
fn detects_io_unwrap_outside_tests() {
    let fired = rules_fired("crates/io/src/sneaky.rs", &fixture("bad_io_unwrap.rs"));
    // line with two unwraps counts once; expect+unwrap line counts once
    assert_eq!(fired, vec![Rule::IoUnwrap; 2], "{fired:?}");
}

#[test]
fn io_unwrap_rule_only_applies_to_io_crate() {
    let fired = rules_fired("crates/core/src/sneaky.rs", &fixture("bad_io_unwrap.rs"));
    assert!(fired.is_empty(), "{fired:?}");
}

#[test]
fn io_unwrap_rule_exempts_integration_tests() {
    let fired = rules_fired("crates/io/tests/sneaky.rs", &fixture("bad_io_unwrap.rs"));
    assert!(fired.is_empty(), "{fired:?}");
}

#[test]
fn detects_unguarded_heavy_loops_in_budget_functions() {
    let fired = rules_fired(
        "crates/core/src/sneaky.rs",
        &fixture("bad_unguarded_loop.rs"),
    );
    // the nested-loop body and the par_ body each fire once; the checked,
    // bookkeeping, and unbudgeted shapes stay silent
    assert_eq!(fired, vec![Rule::BudgetCheck; 2], "{fired:?}");
}

#[test]
fn budget_check_fires_at_the_outermost_loop_header() {
    let violations = scan_source(
        "crates/core/src/sneaky.rs",
        &fixture("bad_unguarded_loop.rs"),
    );
    let budget: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::BudgetCheck)
        .collect();
    assert!(
        budget[0].excerpt.starts_with("for _sweep"),
        "{:?}",
        budget[0]
    );
    assert!(budget[1].excerpt.starts_with("loop {"), "{:?}", budget[1]);
}

#[test]
fn audit_allow_markers_suppress_diagnostics() {
    let fired = rules_fired("crates/core/src/sneaky.rs", &fixture("allowed_escapes.rs"));
    assert!(fired.is_empty(), "{fired:?}");
}

#[test]
fn detects_budget_propagation_with_call_chain() {
    let violations = scan_source(
        "crates/core/src/sneaky.rs",
        &fixture("bad_budget_propagation.rs"),
    );
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.rule, Rule::BudgetPropagation);
    assert!(v.excerpt.starts_with("fn heavy_sweeps"), "{v:?}");
    let chain: Vec<&str> = v
        .call_chain
        .iter()
        .map(|link| link.function.as_str())
        .collect();
    assert_eq!(
        chain,
        vec!["run_guarded", "wrapper", "heavy_sweeps"],
        "{v:?}"
    );
}

#[test]
fn budget_propagation_accepts_threaded_and_allow_marked_helpers() {
    let fired = rules_fired(
        "crates/core/src/sneaky.rs",
        &fixture("good_budget_propagation.rs"),
    );
    assert!(fired.is_empty(), "{fired:?}");
}

#[test]
fn detects_lock_guard_live_across_parallel_region() {
    let violations = scan_source(
        "crates/core/src/sneaky.rs",
        &fixture("bad_lock_across_parallel.rs"),
    );
    // only the bound-guard shape fires; temporary, dropped and scoped
    // guards are fine
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::LockAcrossParallel);
    assert!(
        violations[0].excerpt.contains("let guard = m.lock()"),
        "{:?}",
        violations[0]
    );
}

#[test]
fn detects_panics_inside_parallel_closures() {
    let violations = scan_source(
        "crates/core/src/sneaky.rs",
        &fixture("bad_panic_in_parallel.rs"),
    );
    // the par-closure unwrap and the panic! in rayon::join; the
    // sequential unwrap and the test-module unwrap stay silent
    let fired: Vec<Rule> = violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, vec![Rule::PanicInParallel; 2], "{violations:?}");
}

#[test]
fn detects_ordering_escalation_in_allowlisted_module() {
    let violations = scan_source(
        "crates/graph/src/atomicf64.rs",
        &fixture("bad_ordering_escalation.rs"),
    );
    // Release, AcqRel, SeqCst escalate; Relaxed and Acquire are the
    // documented protocol
    let fired: Vec<Rule> = violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, vec![Rule::OrderingEscalation; 3], "{violations:?}");
}

#[test]
fn ordering_escalation_defers_to_atomic_ordering_outside_allowlist() {
    let fired = rules_fired(
        "crates/core/src/sneaky.rs",
        &fixture("bad_ordering_escalation.rs"),
    );
    // outside the allowlist every variant is an atomic-ordering hit
    // (5 sites) and escalation stays quiet — no double report
    assert_eq!(fired, vec![Rule::AtomicOrdering; 5], "{fired:?}");
}

#[test]
fn allow_markers_cover_attributed_items_and_multiline_statements() {
    let fired = rules_fired(
        "crates/core/src/sneaky.rs",
        &fixture("allow_above_attribute.rs"),
    );
    assert!(fired.is_empty(), "{fired:?}");
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = scan_workspace(&root).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "workspace has audit violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
