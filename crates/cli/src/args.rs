//! Minimal command-line argument parsing (no external dependencies).
//!
//! Grammar: `parcom <command> [--flag value]... [--switch]...`. Flags may be
//! given as `--name value` or `--name=value`; a `--name` not followed by a
//! value is a boolean switch. Positional arguments beyond the command word
//! are rejected.
//!
//! Flags shared across subcommands:
//!
//! | flag | commands | meaning |
//! |------|----------|---------|
//! | `--input FILE` | detect, stats, cg, convert | graph file (`.pcg` magic = parcom binary, `.metis`/`.graph` = METIS, else edge list; format sniffed by content first) |
//! | `--algo NAME` | detect | a name from the `parcom_core::spec` registry (`parcom detect` with a bad name prints the current list); knob applicability is validated there too |
//! | `--threads N` | detect | run inside a pool of `N` workers (0 = the default pool) |
//! | `--seed S` | generate, detect | seed applied uniformly via `CommunityDetector::set_seed` (default 1) |
//! | `--report json` | detect | emit the structured `RunReport` as JSON on stdout; the human summary moves to stderr. The report's leading phases are `ingest/parse` and `ingest/build` (graph file ingest timings, with `bytes`/`edges` counters), followed by the algorithm's own phases |
//! | `--gamma X` | detect | resolution parameter, for algorithms whose spec accepts the `gamma` knob |
//! | `--ensemble B` | detect | ensemble size, for algorithms whose spec accepts the `ensemble` knob |
//! | `--randomized` | detect | randomized node order, for algorithms whose spec accepts the `randomized` knob |
//! | `--move racy\|coloring\|sync` | detect | PLM move-phase strategy, for algorithms whose spec accepts the `move` knob (`plm`, `plmr`, `epp`, `eppr`); `coloring` and `sync` produce bit-identical partitions at any `--threads` (DESIGN.md §14) |
//! | `--timeout SECS` | detect | cooperative wall-clock budget: the run stops at the next sweep/level boundary after `SECS` seconds and returns the best valid partition so far; the termination cause lands in the summary and in `--report json` |
//! | `--max-sweeps N` | detect | cap on total sweeps/levels across the run, with the same graceful degradation |
//! | `--max-nodes N` / `--max-edges M` | detect, serve | ingest limits: reject input whose header claims more, before allocating |
//! | `--relabel` | detect, convert | degree-ordered (hub-first) node relabeling for cache locality (DESIGN.md §15): `convert` stores the reordered view plus its permutation in the `.pcg`; `detect` reorders at load. Per-node output is always mapped back to original ids |
//! | `--out FILE` | generate, detect, cg, convert | output file (`convert` writes `parcom-graph-bin/v1`) |
//! | `--socket PATH` / `--listen ADDR` | serve | where the resident daemon listens (Unix socket path / TCP address) |
//! | `--state-dir DIR` | serve | crash-safe state directory (DESIGN.md §16): per-graph write-ahead logs + `.pcg` checkpoints, replayed on boot; omit to run volatile |
//! | `--fsync always\|never` | serve | WAL durability: `always` (default) fsyncs each record before acknowledging, surviving power loss; `never` rides the page cache, surviving only process crashes |
//! | `--max-detects N` | serve | cap concurrent detections; excess requests are shed with `429 Retry-After` (0 = unlimited, default 4) |

use std::collections::BTreeMap;

/// Parsed arguments: the command word plus flag/value pairs.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The leading subcommand (e.g. `detect`).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a raw argument list (without the binary name).
    pub fn parse(raw: &[String]) -> Result<Self, ArgError> {
        let mut it = raw.iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?
            .clone();
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a command, got flag `{command}`"
            )));
        }
        let mut flags = BTreeMap::new();
        let rest: Vec<&String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let tok = rest[i];
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("expected `--flag`, got `{tok}`")));
            };
            if let Some((k, v)) = name.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
                i += 1;
            } else if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                flags.insert(name.to_string(), rest[i + 1].clone());
                i += 2;
            } else {
                // boolean switch
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        }
        Ok(Self { command, flags })
    }

    /// A string flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("bad value `{raw}` for --{name}"))),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        matches!(self.get(name), Some("true") | Some("1") | Some("yes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["detect", "--input", "g.metis", "--algo", "plm"]).unwrap();
        assert_eq!(a.command, "detect");
        assert_eq!(a.get("input"), Some("g.metis"));
        assert_eq!(a.require("algo").unwrap(), "plm");
    }

    #[test]
    fn parses_equals_form() {
        let a = parse(&["generate", "--model=lfr", "--n=1000"]).unwrap();
        assert_eq!(a.get("model"), Some("lfr"));
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 1000);
    }

    #[test]
    fn boolean_switches() {
        let a = parse(&["detect", "--verbose", "--input", "x"]).unwrap();
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn typed_defaults() {
        let a = parse(&["detect"]).unwrap();
        assert_eq!(a.get_or("threads", 4usize).unwrap(), 4);
        assert_eq!(a.get_or("gamma", 1.0f64).unwrap(), 1.0);
    }

    #[test]
    fn rejects_missing_command() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--input", "x"]).is_err());
    }

    #[test]
    fn rejects_bad_values_and_positional_garbage() {
        let a = parse(&["detect", "--threads", "abc"]).unwrap();
        assert!(a.get_or::<usize>("threads", 1).is_err());
        assert!(parse(&["detect", "stray"]).is_err());
    }

    #[test]
    fn missing_required_flag() {
        let a = parse(&["detect"]).unwrap();
        assert!(a.require("input").is_err());
    }
}
