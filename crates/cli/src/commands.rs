//! Implementations of the CLI subcommands.

use crate::args::Args;
use parcom_core::{compare, quality, Budget, CommunityDetector, CommunityGraph, DetectorSpec};
use parcom_graph::relabel::Relabeling;
use parcom_graph::stats::{summarize, SummaryOptions};
use parcom_graph::{Graph, Partition};
use parcom_io::LoadedGraph;
use std::error::Error;

type CmdResult = Result<(), Box<dyn Error>>;

/// Reads a graph, sniffing the format by magic first (`.pcg` binary) and
/// extension second (`.metis`/`.graph`/`.pcg` = METIS text, everything
/// else = edge list). Binary files written with `--relabel` come back with
/// their [`Relabeling`] attached; commands that emit per-node output must
/// map it to original ids.
fn load_graph(path: &str) -> Result<LoadedGraph, Box<dyn Error>> {
    load_graph_recorded(
        path,
        &parcom_obs::Recorder::disabled(),
        &Budget::unlimited(),
    )
}

/// [`load_graph`] recording ingest phase spans (`ingest/load` for binary,
/// `ingest/parse`/`ingest/build` for text) on `recorder` (a disabled
/// recorder keeps the zero-overhead path) and enforcing the budget's
/// ingest limits: METIS and binary headers exceeding them are rejected
/// before allocation, edge lists after their (header-free) parse. Thin
/// wrapper over [`parcom_io::load_graph_auto`], the ingest entry point
/// shared with `parcom-serve`.
fn load_graph_recorded(
    path: &str,
    recorder: &parcom_obs::Recorder,
    budget: &Budget,
) -> Result<LoadedGraph, Box<dyn Error>> {
    Ok(parcom_io::load_graph_auto(path, recorder, budget)?)
}

/// Applies `--relabel`: reorders the graph hub-first unless the file
/// already stored a relabeled view (then the stored permutation stands).
fn maybe_relabel(
    args: &Args,
    graph: Graph,
    relabeling: Option<Relabeling>,
) -> (Graph, Option<Relabeling>) {
    if args.switch("relabel") && relabeling.is_none() {
        let r = Relabeling::degree_ordered(&graph);
        let g = r.apply(&graph);
        (g, Some(r))
    } else {
        (graph, relabeling)
    }
}

/// Builds the requested algorithm through the [`DetectorSpec`] registry —
/// the single construction path shared with `parcom-serve`. An unknown
/// `--algo` errors with the full list of registered names; a knob the
/// algorithm does not accept (e.g. `--gamma` on `plp`) errors with the
/// knobs it does. `--seed` is applied uniformly through
/// [`CommunityDetector::set_seed`]; algorithms without randomized state
/// ignore it.
fn make_algorithm(args: &Args) -> Result<Box<dyn CommunityDetector + Send>, Box<dyn Error>> {
    let mut spec = DetectorSpec::new(args.require("algo")?)?;
    if args.get("gamma").is_some() {
        spec = spec.with_gamma(args.get_or("gamma", 1.0)?);
    }
    if args.get("ensemble").is_some() {
        spec = spec.with_ensemble(args.get_or("ensemble", 4)?);
    }
    if args.get("randomized").is_some() {
        spec = spec.with_randomized(args.switch("randomized"));
    }
    if let Some(raw) = args.get("move") {
        let strategy = parcom_core::MoveStrategy::from_wire(raw).map_err(|m| {
            parcom_core::SpecError::BadValue {
                key: "move".into(),
                message: m,
            }
        })?;
        spec = spec.with_move(strategy);
    }
    spec = spec.with_seed(args.get_or("seed", 1)?);
    Ok(spec.build()?)
}

/// `parcom generate`
pub fn generate(args: &Args) -> CmdResult {
    use parcom_generators as gen;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 1)?;
    let n: usize = args.get_or("n", 10_000)?;
    let (g, truth): (Graph, Option<Partition>) = match args.require("model")? {
        "lfr" => {
            let mu: f64 = args.get_or("mu", 0.3)?;
            let (g, t) = gen::lfr(gen::LfrParams::benchmark(n, mu), seed);
            (g, Some(t))
        }
        "rmat" => {
            let scale: u32 = args.get_or("scale", 14)?;
            let ef: usize = args.get_or("edge-factor", 16)?;
            (
                gen::rmat(gen::RmatParams::paper_with_edge_factor(scale, ef), seed),
                None,
            )
        }
        "ba" => {
            let attach: usize = args.get_or("attach", 2)?;
            (gen::barabasi_albert(n, attach, seed), None)
        }
        "ws" => {
            let k: usize = args.get_or("k", 2)?;
            let beta: f64 = args.get_or("beta", 0.05)?;
            (gen::watts_strogatz(n, k, beta, seed), None)
        }
        "er" => {
            let p: f64 = args.get_or("p", 0.001)?;
            (gen::erdos_renyi(n, p, seed), None)
        }
        "grid" => {
            let w: usize = args.get_or("width", 100)?;
            let h: usize = args.get_or("height", 100)?;
            (gen::grid2d(w, h), None)
        }
        "planted" => {
            let k: usize = args.get_or("k", 10)?;
            let p_in: f64 = args.get_or("p-in", 0.05)?;
            let p_out: f64 = args.get_or("p-out", 0.002)?;
            let (g, t) =
                gen::planted_partition(gen::PlantedPartitionParams { n, k, p_in, p_out }, seed);
            (g, Some(t))
        }
        "cliques" => {
            let k: usize = args.get_or("k", 10)?;
            let s: usize = args.get_or("size", 10)?;
            let (g, t) = gen::ring_of_cliques(k, s);
            (g, Some(t))
        }
        other => return Err(format!("unknown model `{other}`").into()),
    };
    parcom_io::write_metis(&g, out)?;
    println!("wrote {out}: n={}, m={}", g.node_count(), g.edge_count());
    if let Some(truth_path) = args.get("truth") {
        match truth {
            Some(t) => {
                parcom_io::write_partition(&t, truth_path)?;
                println!(
                    "wrote ground truth ({} communities) to {truth_path}",
                    t.number_of_subsets()
                );
            }
            None => eprintln!("note: model has no ground truth; --truth ignored"),
        }
    }
    Ok(())
}

/// `parcom detect`
pub fn detect(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let report_json = match args.get("report") {
        None => false,
        Some("json") => true,
        Some(other) => {
            return Err(format!("unknown report format `{other}` (supported: json)").into())
        }
    };
    // ingest limits apply while loading (METIS headers are rejected
    // before allocation); the run budget is assembled after the load so a
    // `--timeout` deadline covers detection only
    let max_nodes: usize = args.get_or("max-nodes", 0)?;
    let max_edges: usize = args.get_or("max-edges", 0)?;
    let limited = max_nodes > 0 || max_edges > 0;
    let make_limits = || {
        if limited {
            Budget::unlimited().with_input_limits(
                if max_nodes > 0 { max_nodes } else { usize::MAX },
                if max_edges > 0 { max_edges } else { usize::MAX },
            )
        } else {
            Budget::unlimited()
        }
    };

    // with --report, graph ingest is instrumented too: its phases
    // (`ingest/parse`, `ingest/build`) are prepended to the run report
    let ingest_rec = if report_json {
        parcom_obs::Recorder::enabled()
    } else {
        parcom_obs::Recorder::disabled()
    };
    let loaded = load_graph_recorded(input, &ingest_rec, &make_limits())?;
    // Detection runs on the (possibly relabeled) resident view; per-node
    // output below is mapped back to original ids, so `--relabel` changes
    // cache behavior, never results.
    let (g, relabeling) = maybe_relabel(args, loaded.graph, loaded.relabeling);
    let mut algo = make_algorithm(args)?;
    let threads: usize = args.get_or("threads", 0)?;

    let timeout: f64 = args.get_or("timeout", 0.0)?;
    let max_sweeps: u64 = args.get_or("max-sweeps", 0)?;
    let guarded = timeout > 0.0 || max_sweeps > 0;
    let mut budget = make_limits();
    if timeout > 0.0 {
        budget = budget.with_deadline(std::time::Duration::from_secs_f64(timeout));
    }
    if max_sweeps > 0 {
        budget = budget.with_max_sweeps(max_sweeps);
    }

    // with --timeout/--max-sweeps the run is guarded (and reported);
    // with --report it is instrumented; without either, detect() keeps
    // the zero-overhead path
    let run = |algo: &mut Box<dyn CommunityDetector + Send>| {
        let start = std::time::Instant::now();
        let (zeta, report, termination) = if guarded {
            let r = algo.detect_guarded(&g, &budget);
            (r.partition, r.report, Some(r.termination))
        } else if report_json {
            let (zeta, report) = algo.detect_with_report(&g);
            (zeta, report, None)
        } else {
            (algo.detect(&g), parcom_obs::RunReport::default(), None)
        };
        (zeta, report, termination, start.elapsed())
    };
    let (zeta, mut report, termination, elapsed) = if threads > 0 {
        parcom_graph::parallel::with_threads(threads, || run(&mut algo))
    } else {
        run(&mut algo)
    };
    if report_json {
        let ingest = ingest_rec.finish("ingest");
        report.phases.splice(0..0, ingest.phases);
    }

    let termination_note = match termination {
        Some(t) if t.interrupted() => match report.cut_phase.as_deref() {
            Some(phase) => format!(", terminated early ({t}, in {phase})"),
            None => format!(", terminated early ({t})"),
        },
        _ => String::new(),
    };
    let summary = format!(
        "{} on {input}: n={} m={} -> {} communities, modularity {:.4}, coverage {:.4}, {:.3}s ({:.1}M edges/s){termination_note}",
        algo.name(),
        g.node_count(),
        g.edge_count(),
        zeta.number_of_subsets(),
        quality::modularity(&g, &zeta),
        quality::coverage(&g, &zeta),
        elapsed.as_secs_f64(),
        g.edge_count() as f64 / elapsed.as_secs_f64().max(1e-12) / 1e6,
    );
    if report_json {
        // stdout carries exactly one JSON object; the human summary moves
        // to stderr so the output stays pipeable
        eprintln!("{summary}");
        println!("{}", report.to_json());
    } else {
        println!("{summary}");
    }
    if let Some(out) = args.get("out") {
        // Emit in original ids whatever id space detection ran in.
        let emitted = match &relabeling {
            Some(r) => r.to_original(&zeta),
            None => zeta,
        };
        parcom_io::write_partition(&emitted, out)?;
        if report_json {
            eprintln!("wrote partition to {out}");
        } else {
            println!("wrote partition to {out}");
        }
    }
    Ok(())
}

/// `parcom convert` — write a graph in the `parcom-graph-bin/v1` binary
/// format (`.pcg`), optionally relabeled hub-first for cache locality.
/// Reopening the output skips parsing and CSR assembly entirely
/// (DESIGN.md §15).
pub fn convert(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let out = args.require("out")?;
    let loaded = load_graph(input)?;
    let (g, relabeling) = maybe_relabel(args, loaded.graph, loaded.relabeling);
    parcom_io::write_pcg(&g, relabeling.as_ref(), out)?;
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out}: n={} m={} ({bytes} bytes{})",
        g.node_count(),
        g.edge_count(),
        if relabeling.is_some() {
            ", degree-ordered"
        } else {
            ""
        }
    );
    Ok(())
}

/// `parcom stats`
pub fn stats(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_graph(input)?.graph;
    let s = summarize(&g, SummaryOptions::default());
    println!("graph {input}");
    println!("  nodes:       {}", s.nodes);
    println!("  edges:       {}", s.edges);
    println!("  max degree:  {}", s.max_degree);
    println!("  components:  {}", s.components);
    println!("  avg LCC:     {:.4}", s.avg_lcc);
    println!(
        "  avg degree:  {:.2}",
        parcom_graph::stats::average_degree(&g)
    );
    match parcom_graph::assortativity::degree_assortativity(&g) {
        Some(r) => println!("  assortativity: {r:+.3}"),
        None => println!("  assortativity: undefined"),
    }
    Ok(())
}

/// `parcom compare`
pub fn compare(args: &Args) -> CmdResult {
    let a = parcom_io::read_partition(args.require("a")?)?;
    let b = parcom_io::read_partition(args.require("b")?)?;
    if a.len() != b.len() {
        return Err(format!(
            "partitions cover different node sets ({} vs {})",
            a.len(),
            b.len()
        )
        .into());
    }
    println!("jaccard index:  {:.4}", compare::jaccard_index(&a, &b));
    println!("rand index:     {:.4}", compare::rand_index(&a, &b));
    println!(
        "adjusted rand:  {:.4}",
        compare::adjusted_rand_index(&a, &b)
    );
    println!("NMI:            {:.4}", compare::nmi(&a, &b));
    Ok(())
}

/// `parcom serve` — run the resident clustering daemon (parcom-serve).
///
/// Listens on `--socket PATH` (Unix domain) and/or `--listen ADDR` (TCP),
/// holding loaded graphs in memory across requests; `--max-nodes` /
/// `--max-edges` bound what `PUT /graphs/{name}` will admit. Runs until
/// killed.
pub fn serve(args: &Args) -> CmdResult {
    let max_nodes: usize = args.get_or("max-nodes", 0)?;
    let max_edges: usize = args.get_or("max-edges", 0)?;
    let fsync = match args.get("fsync") {
        Some(value) => parcom_serve::wal::FsyncPolicy::from_flag(value)?,
        None => parcom_serve::wal::FsyncPolicy::Always,
    };
    let config = parcom_serve::ServeConfig {
        socket: args.get("socket").map(std::path::PathBuf::from),
        addr: args.get("listen").map(String::from),
        max_nodes: if max_nodes > 0 { max_nodes } else { usize::MAX },
        max_edges: if max_edges > 0 { max_edges } else { usize::MAX },
        state_dir: args.get("state-dir").map(std::path::PathBuf::from),
        fsync,
        max_detects: args.get_or("max-detects", parcom_serve::DEFAULT_MAX_DETECTS)?,
    };
    let server = parcom_serve::Server::bind(config)?;
    match (args.get("socket"), args.get("listen")) {
        (Some(path), Some(addr)) => eprintln!("parcom-serve listening on {path} and {addr}"),
        (Some(path), None) => eprintln!("parcom-serve listening on {path}"),
        (None, Some(addr)) => eprintln!("parcom-serve listening on {addr}"),
        (None, None) => {}
    }
    if let Some(dir) = args.get("state-dir") {
        eprintln!(
            "parcom-serve durable state in {dir} (fsync {})",
            fsync.as_str()
        );
    }
    server.run()?;
    Ok(())
}

/// `parcom cg` — export the community graph as DOT.
pub fn community_graph(args: &Args) -> CmdResult {
    let loaded = load_graph(args.require("input")?)?;
    let g = loaded.graph;
    let mut zeta = parcom_io::read_partition(args.require("partition")?)?;
    if zeta.len() != g.node_count() {
        return Err("partition does not cover the graph".into());
    }
    // Partition files are in original ids; a relabeled binary graph needs
    // the assignment permuted into its id space before aggregation.
    if let Some(r) = &loaded.relabeling {
        zeta = r.to_new(&zeta);
    }
    let out = args.require("out")?;
    let cg = CommunityGraph::build(&g, &zeta);
    parcom_io::write_community_graph_dot(&cg, "communities", out)?;
    println!(
        "wrote community graph ({} communities, largest {}) to {out}",
        cg.community_count(),
        cg.max_community_size()
    );
    Ok(())
}
