//! `parcom` — command-line front-end for the library.
//!
//! The paper ships its algorithms inside NetworKit, whose Python layer
//! supports interactive analysis workflows; this binary is the equivalent
//! scriptable entry point:
//!
//! ```text
//! parcom generate --model lfr --n 10000 --mu 0.3 --out g.metis [--truth t.part]
//! parcom detect   --input g.metis --algo plm [--out z.part] [--threads 4] [--seed 1] [--report json]
//! parcom stats    --input g.metis
//! parcom compare  --a z.part --b t.part
//! parcom cg       --input g.metis --partition z.part --out communities.dot
//! ```

use parcom_cli::{args::Args, commands};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print_usage();
        return;
    }
    let parsed = match Args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate(&parsed),
        "detect" => commands::detect(&parsed),
        "stats" => commands::stats(&parsed),
        "compare" => commands::compare(&parsed),
        "convert" => commands::convert(&parsed),
        "cg" => commands::community_graph(&parsed),
        "serve" => commands::serve(&parsed),
        other => {
            eprintln!("error: unknown command `{other}`");
            print_usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn print_usage() {
    // the algorithm list comes from the DetectorSpec registry, so the help
    // text can never drift from what `--algo` actually accepts
    eprintln!(
        "parcom — parallel community detection\n\
         \n\
         commands:\n\
         \x20 generate --model <lfr|rmat|ba|ws|er|grid|planted|cliques> --out FILE [model flags] [--truth FILE]\n\
         \x20 detect   --input FILE --algo <{algos}>\n\
         \x20          [--out FILE] [--threads N] [--gamma X] [--ensemble B] [--seed S] [--report json]\n\
         \x20          [--timeout SECS] [--max-sweeps N] [--max-nodes N] [--max-edges M] [--relabel]\n\
         \x20 convert  --input FILE --out FILE.pcg [--relabel]\n\
         \x20 stats    --input FILE\n\
         \x20 compare  --a PARTITION --b PARTITION\n\
         \x20 cg       --input FILE --partition FILE --out FILE.dot\n\
         \x20 serve    [--socket PATH] [--listen ADDR] [--max-nodes N] [--max-edges M]\n\
         \x20          [--state-dir DIR] [--fsync always|never] [--max-detects N]\n\
         \n\
         graph files: .pcg (parcom binary, sniffed by magic), .metis/.graph (METIS),\n\
         anything else (edge list). `convert` writes .pcg for instant reopen;\n\
         --relabel stores a hub-first cache order (output stays in original ids).",
        algos = parcom_core::spec::algorithm_list(),
    );
}
