#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Library surface of the `parcom` CLI (exposed for integration testing;
//! the binary in `main.rs` is a thin wrapper).

pub mod args;
pub mod commands;
