//! Integration tests of the CLI subcommands, exercising the full
//! generate → detect → compare → community-graph workflow through
//! temporary files.

use parcom_cli::args::Args;
use parcom_cli::commands;

fn args(words: &[&str]) -> Args {
    Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("parcom_cli_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_then_detect_then_compare() {
    let dir = tmp_dir("full");
    let graph = dir.join("g.metis");
    let truth = dir.join("truth.part");
    let detected = dir.join("plm.part");

    commands::generate(&args(&[
        "generate",
        "--model",
        "cliques",
        "--k",
        "8",
        "--size",
        "10",
        "--out",
        graph.to_str().unwrap(),
        "--truth",
        truth.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(graph.exists() && truth.exists());

    commands::detect(&args(&[
        "detect",
        "--input",
        graph.to_str().unwrap(),
        "--algo",
        "plm",
        "--out",
        detected.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(detected.exists());

    commands::compare(&args(&[
        "compare",
        "--a",
        detected.to_str().unwrap(),
        "--b",
        truth.to_str().unwrap(),
    ]))
    .unwrap();

    // the detected partition should match the planted cliques exactly
    let a = parcom_io::read_partition(&detected).unwrap();
    let b = parcom_io::read_partition(&truth).unwrap();
    assert_eq!(
        parcom_core::compare::jaccard_index(&a, &b),
        1.0,
        "PLM failed to recover planted cliques via CLI"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_and_community_graph() {
    let dir = tmp_dir("stats");
    let graph = dir.join("g.metis");
    let part = dir.join("z.part");
    let dot = dir.join("cg.dot");

    commands::generate(&args(&[
        "generate",
        "--model",
        "lfr",
        "--n",
        "500",
        "--mu",
        "0.2",
        "--out",
        graph.to_str().unwrap(),
    ]))
    .unwrap();
    commands::stats(&args(&["stats", "--input", graph.to_str().unwrap()])).unwrap();
    commands::detect(&args(&[
        "detect",
        "--input",
        graph.to_str().unwrap(),
        "--algo",
        "plp",
        "--out",
        part.to_str().unwrap(),
    ]))
    .unwrap();
    commands::community_graph(&args(&[
        "cg",
        "--input",
        graph.to_str().unwrap(),
        "--partition",
        part.to_str().unwrap(),
        "--out",
        dot.to_str().unwrap(),
    ]))
    .unwrap();
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("graph"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_algorithm_flag_resolves() {
    let dir = tmp_dir("algos");
    let graph = dir.join("g.metis");
    commands::generate(&args(&[
        "generate",
        "--model",
        "cliques",
        "--k",
        "4",
        "--size",
        "6",
        "--out",
        graph.to_str().unwrap(),
    ]))
    .unwrap();
    // drive the sweep off the registry so new algorithms are covered
    // automatically, passing each algorithm exactly the knobs its spec
    // accepts (inapplicable knobs are a validation error now)
    for info in parcom_core::spec::REGISTRY {
        let mut argv = vec![
            "detect".to_string(),
            "--input".into(),
            graph.to_str().unwrap().into(),
            "--algo".into(),
            info.name.into(),
        ];
        if info.accepts(parcom_core::spec::Knob::Ensemble) {
            argv.extend(["--ensemble".to_string(), "2".into()]);
        }
        if info.accepts(parcom_core::spec::Knob::Gamma) {
            argv.extend(["--gamma".to_string(), "1.0".into()]);
        }
        let argv: Vec<&str> = argv.iter().map(String::as_str).collect();
        commands::detect(&args(&argv)).unwrap_or_else(|e| panic!("algo {} failed: {e}", info.name));
    }
    // an inapplicable knob is rejected with a message naming the accepted ones
    let err = commands::detect(&args(&[
        "detect",
        "--input",
        graph.to_str().unwrap(),
        "--algo",
        "plp",
        "--ensemble",
        "2",
    ]))
    .unwrap_err();
    assert!(err.to_string().contains("accepts no knob"), "{err}");
    // an unknown algorithm enumerates the registry
    let err = commands::detect(&args(&[
        "detect",
        "--input",
        graph.to_str().unwrap(),
        "--algo",
        "florp",
    ]))
    .unwrap_err();
    for info in parcom_core::spec::REGISTRY {
        assert!(err.to_string().contains(info.name), "{err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_not_panics() {
    assert!(commands::detect(&args(&[
        "detect",
        "--input",
        "/nonexistent",
        "--algo",
        "plm"
    ]))
    .is_err());
    assert!(commands::detect(&args(&["detect"])).is_err());
    let dir = tmp_dir("err");
    let graph = dir.join("g.metis");
    commands::generate(&args(&[
        "generate",
        "--model",
        "cliques",
        "--k",
        "2",
        "--size",
        "3",
        "--out",
        graph.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(commands::detect(&args(&[
        "detect",
        "--input",
        graph.to_str().unwrap(),
        "--algo",
        "bogus"
    ]))
    .is_err());
    assert!(
        commands::generate(&args(&["generate", "--model", "bogus", "--out", "/tmp/x"])).is_err()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_all_models() {
    let dir = tmp_dir("models");
    for (model, extra) in [
        ("lfr", vec!["--n", "300", "--mu", "0.2"]),
        ("rmat", vec!["--scale", "8", "--edge-factor", "4"]),
        ("ba", vec!["--n", "300", "--attach", "2"]),
        ("ws", vec!["--n", "300", "--k", "2", "--beta", "0.1"]),
        ("er", vec!["--n", "300", "--p", "0.02"]),
        ("grid", vec!["--width", "10", "--height", "12"]),
        ("planted", vec!["--n", "300", "--k", "5"]),
        ("cliques", vec!["--k", "5", "--size", "5"]),
    ] {
        let out = dir.join(format!("{model}.metis"));
        let mut words = vec!["generate", "--model", model, "--out", out.to_str().unwrap()];
        words.extend(extra.iter());
        commands::generate(&args(&words)).unwrap_or_else(|e| panic!("{model} failed: {e}"));
        assert!(out.exists(), "{model}: no output written");
    }
    std::fs::remove_dir_all(&dir).ok();
}
