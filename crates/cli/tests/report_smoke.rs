//! End-to-end smoke test of `parcom detect --report json`: the binary must
//! emit exactly one syntactically valid JSON object on stdout, carrying the
//! pinned report schema with per-level PLM phase timings.

use std::process::Command;

fn parcom() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parcom"))
}

fn temp_graph(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("parcom_cli_report_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let (g, _) = parcom_generators::ring_of_cliques(16, 8);
    parcom_io::write_metis(&g, &path).unwrap();
    path
}

#[test]
fn detect_report_json_emits_a_valid_run_report() {
    let graph = temp_graph("report.metis");
    let out = parcom()
        .args(["detect", "--algo", "plm", "--report", "json"])
        .arg("--input")
        .arg(&graph)
        .env_remove("PARCOM_OBS")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stdout is exactly one JSON object (one line), pipeable as-is
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.lines().count(),
        1,
        "stdout not a single line: {stdout}"
    );
    parcom_obs::json::validate(stdout.trim()).expect("stdout is valid JSON");
    assert!(stdout.contains(&format!("\"schema\":\"{}\"", parcom_obs::SCHEMA)));
    assert!(stdout.contains("\"algorithm\":\"PLM\""));
    // the acceptance bar: per-level phases with move/coarsen timings present
    assert!(stdout.contains("\"name\":\"level-0\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"move-phase\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"coarsen\""), "{stdout}");
    // graph ingest phases lead the report
    assert!(stdout.contains("\"name\":\"ingest/parse\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"ingest/build\""), "{stdout}");

    // the human summary moved to stderr
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("communities"), "{stderr}");
}

#[test]
fn detect_with_max_sweeps_reports_termination() {
    let graph = temp_graph("budget.metis");
    let out = parcom()
        .args([
            "detect",
            "--algo",
            "louvain",
            "--max-sweeps",
            "1",
            "--report",
            "json",
        ])
        .arg("--input")
        .arg(&graph)
        .env_remove("PARCOM_OBS")
        .output()
        .expect("binary runs");
    // a budget expiry degrades gracefully: exit 0, valid JSON, cause named
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    parcom_obs::json::validate(stdout.trim()).expect("stdout is valid JSON");
    assert!(
        stdout.contains("\"termination\":\"iteration-cap\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"cut_phase\":"), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("terminated early"), "{stderr}");
}

#[test]
fn detect_with_generous_timeout_converges() {
    let graph = temp_graph("deadline.metis");
    let out = parcom()
        .args([
            "detect",
            "--algo",
            "plm",
            "--timeout",
            "300",
            "--report",
            "json",
        ])
        .arg("--input")
        .arg(&graph)
        .env_remove("PARCOM_OBS")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // far-away deadline: the run converges and says so in the report
    assert!(stdout.contains("\"termination\":\"converged\""), "{stdout}");
    assert!(stdout.contains("\"cut_phase\":null"), "{stdout}");
}

#[test]
fn detect_rejects_input_beyond_ingest_limit() {
    let graph = temp_graph("toolarge.metis");
    let out = parcom()
        .args(["detect", "--algo", "plm", "--max-nodes", "10"])
        .arg("--input")
        .arg(&graph)
        .output()
        .expect("binary runs");
    // the 128-node fixture exceeds the 10-node limit: hard error, context
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("ingest limit"), "{stderr}");
    assert!(stderr.contains("toolarge.metis"), "{stderr}");
}

#[test]
fn detect_without_report_keeps_stdout_human() {
    let graph = temp_graph("plain.metis");
    let out = parcom()
        .args(["detect", "--algo", "plp", "--seed", "7"])
        .arg("--input")
        .arg(&graph)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("communities"), "{stdout}");
    assert!(!stdout.contains("\"schema\""), "{stdout}");
}

#[test]
fn detect_rejects_unknown_report_format() {
    let graph = temp_graph("badfmt.metis");
    let out = parcom()
        .args(["detect", "--algo", "plm", "--report", "xml"])
        .arg("--input")
        .arg(&graph)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown report format"), "{stderr}");
}
