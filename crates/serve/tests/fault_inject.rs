//! In-process abort-path tests for the daemon's durability fault sites
//! (`serve/store-rebuild`, `serve/wal-append`, `serve/checkpoint-write`).
//!
//! Each test arms a seeded [`FaultPlan`] action — `Panic` to poison a
//! mutation mid-flight, `Cancel` to fire a cooperative token — and then
//! proves the invariant the WAL design promises: *no armed abort ever
//! corrupts the resident graph or its log*. Acknowledged batches stay
//! replayable; unacknowledged ones vanish atomically; a poisoned lock or
//! wedged writer degrades to explicit errors, never to silent damage.
//!
//! Run with `cargo test -p parcom-serve --features fault-inject`.

#![cfg(all(unix, feature = "fault-inject"))]

use parcom_graph::Graph;
use parcom_guard::fault::{serial_guard, FaultAction, FaultPlan};
use parcom_guard::CancelToken;
use parcom_obs::json::{self, Value};
use parcom_serve::persist::{csr_bit_identical, Durability};
use parcom_serve::store::{lock_entry, EdgeOp, GraphEntry, GraphStore};
use parcom_serve::wal::{self, FsyncPolicy};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-test scratch directory, clean at entry.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("parcom_fault_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seed_graph() -> Graph {
    parcom_generators::ring_of_cliques(4, 5).0
}

/// Deterministic distinct edits: batch `i` inserts two edges that do not
/// exist in the 4×5 ring-of-cliques seed graph.
fn batch(i: u64) -> Vec<EdgeOp> {
    let u = (i % 5) as u32;
    let v = 5 + ((u64::from(u) + i) % 15) as u32;
    vec![
        EdgeOp::Insert(u, v, 1.0 + i as f64),
        EdgeOp::Insert(u + 15, (i % 10) as u32, 2.0 + i as f64),
    ]
}

/// The synchronous reference: apply `batches` to a fresh seed graph with
/// no WAL or checkpointing involved, fold, and return the CSR.
fn reference_csr(batches: &[Vec<EdgeOp>]) -> Graph {
    let mut entry = GraphEntry::new(seed_graph(), None);
    for ops in batches {
        entry.buffer_ops(ops.iter().copied());
    }
    entry.rebuild();
    let (csr, _, _) = entry.current();
    Graph::clone(&csr)
}

/// Recovers `dir` into a fresh store, folds the replayed tail, and
/// returns the resulting CSR plus the number of records replayed.
fn recovered_csr(dir: &std::path::Path) -> (Graph, usize) {
    let durability = Durability::open(dir, FsyncPolicy::Always).unwrap();
    let store = GraphStore::new();
    let report = durability.recover(&store).unwrap();
    assert_eq!(report.graphs, 1, "exactly one graph in {}", dir.display());
    assert!(report.unrecovered.is_empty(), "{:?}", report.unrecovered);
    let entry = store.get("g").unwrap();
    let mut entry = lock_entry(&entry);
    entry.rebuild();
    let (csr, _, _) = entry.current();
    (Graph::clone(&csr), report.records_replayed)
}

/// A panic injected inside the CSR fold — after the un-relabeled builder
/// is populated but before the commit point — must leave the resident
/// graph, the pending buffer, and the WAL exactly as they were, even
/// though the entry's mutex is now poisoned.
#[test]
fn panicked_rebuild_never_corrupts_the_resident_graph_or_wal() {
    let _serial = serial_guard();
    FaultPlan::clear();
    let dir = scratch("rebuild");
    let durability = Durability::open(&dir, FsyncPolicy::Always).unwrap();

    let mut entry = GraphEntry::new(seed_graph(), None);
    durability.persist_new("g", &mut entry).unwrap();
    let first = batch(0);
    entry.commit_ops(first.clone()).unwrap();
    let store = GraphStore::new();
    store.insert_entry("g", entry);
    let entry = store.get("g").unwrap();

    FaultPlan::arm("serve/store-rebuild", 1, FaultAction::Panic);
    let poisoner = std::thread::spawn({
        let entry = entry.clone();
        move || lock_entry(&entry).rebuild()
    });
    assert!(poisoner.join().is_err(), "armed rebuild should panic");
    FaultPlan::clear();

    // The poisoned lock is tolerated and nothing moved: generation,
    // buffer, sequence, and the resident CSR are untouched.
    let mut locked = lock_entry(&entry);
    let stats = locked.stats();
    assert_eq!(stats.generation, 0);
    assert_eq!(stats.pending, first.len());
    assert_eq!(locked.seq(), 1);
    let (resident, _, _) = locked.current();
    assert!(csr_bit_identical(&resident, &seed_graph()));

    // With the fault gone the same entry folds cleanly...
    locked.rebuild();
    assert_eq!(locked.stats().generation, 1);
    let (rebuilt, _, _) = locked.current();
    drop(locked);

    // ...and the WAL it wrote before the poisoning still replays to the
    // bit-identical state on a cold recovery.
    let (recovered, replayed) = recovered_csr(&dir);
    assert_eq!(replayed, 1);
    assert!(csr_bit_identical(&recovered, &rebuilt));
    assert!(csr_bit_identical(&recovered, &reference_csr(&[first])));
    std::fs::remove_dir_all(&dir).ok();
}

/// A panic between the WAL record head and its payload (a genuinely torn
/// tail) must wedge the writer fail-stop: the interrupted batch is never
/// acknowledged and never recovered, later appends are refused rather
/// than corrupting the log, and a checkpoint installs a fresh era that
/// writes again. Seeded: the crashing append index is derived per seed.
#[test]
fn torn_wal_append_wedges_the_writer_and_loses_only_the_unacked_batch() {
    let _serial = serial_guard();
    for seed in [1u64, 2, 3] {
        FaultPlan::clear();
        let dir = scratch(&format!("append_{seed}"));
        let durability = Durability::open(&dir, FsyncPolicy::Always).unwrap();
        let mut entry = GraphEntry::new(seed_graph(), None);
        durability.persist_new("g", &mut entry).unwrap();

        let total = 4u64;
        let k = FaultPlan::derive_k(seed, "serve/wal-append", total);
        FaultPlan::arm("serve/wal-append", k, FaultAction::Panic);

        let mut acked: Vec<Vec<EdgeOp>> = Vec::new();
        let mut refused = 0usize;
        for i in 0..total {
            let ops = batch(i);
            match catch_unwind(AssertUnwindSafe(|| entry.commit_ops(ops.clone()))) {
                Ok(Ok(_)) => acked.push(ops),
                // Fail-stop: every append after the torn one is refused
                // with an error, not silently dropped or half-written.
                Ok(Err(e)) => {
                    assert!(e.to_string().contains("wedged"), "{e}");
                    refused += 1;
                }
                Err(_) => assert_eq!(i + 1, k, "panic must fire at the armed crossing"),
            }
        }
        FaultPlan::clear();
        assert_eq!(acked.len() as u64, k - 1);
        assert_eq!(refused as u64, total - k);

        // On disk: an intact prefix of k-1 records, then a torn tail.
        let replayed = wal::replay(&parcom_io::state_paths(&dir, "g").wal).unwrap();
        assert!(replayed.torn, "seed {seed}: tail should be torn");
        assert_eq!(replayed.records.len() as u64, k - 1);

        // Only the acknowledged prefix was buffered in memory.
        assert_eq!(
            entry.stats().pending,
            acked.iter().map(Vec::len).sum::<usize>()
        );

        // A checkpoint heals the wedge: fresh log era, appends work again.
        durability.checkpoint("g", &mut entry).unwrap();
        let healed = batch(99);
        entry.commit_ops(healed.clone()).unwrap();
        drop(entry);

        let (recovered, _) = recovered_csr(&dir);
        acked.push(healed);
        assert!(
            csr_bit_identical(&recovered, &reference_csr(&acked)),
            "seed {seed}: recovery must equal the acknowledged history"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A panic during checkpoint staging — after the new `.pcg` and log are
/// written to `.tmp` names but before any rename — must leave the
/// previous era fully live: the old WAL keeps accepting appends and a
/// cold recovery replays every acknowledged record against the old
/// checkpoint.
#[test]
fn panicked_checkpoint_leaves_the_previous_era_live() {
    let _serial = serial_guard();
    FaultPlan::clear();
    let dir = scratch("checkpoint");
    let durability = Durability::open(&dir, FsyncPolicy::Always).unwrap();
    let mut entry = GraphEntry::new(seed_graph(), None);
    durability.persist_new("g", &mut entry).unwrap();
    let batches = vec![batch(0), batch(1)];
    for ops in &batches {
        entry.commit_ops(ops.clone()).unwrap();
    }

    FaultPlan::arm("serve/checkpoint-write", 1, FaultAction::Panic);
    let aborted = catch_unwind(AssertUnwindSafe(|| durability.checkpoint("g", &mut entry)));
    assert!(aborted.is_err(), "armed checkpoint should panic");
    FaultPlan::clear();

    // The old era is still the live one: its writer appends record 3.
    let mut tail = batches.clone();
    tail.push(batch(7));
    entry.commit_ops(tail.last().unwrap().clone()).unwrap();
    assert_eq!(entry.seq(), 3);
    drop(entry);

    // Stale .tmp staging files must not confuse recovery.
    let paths = parcom_io::state_paths(&dir, "g");
    assert!(paths.pcg_tmp.exists() || paths.wal_tmp.exists());
    let (recovered, replayed) = recovered_csr(&dir);
    assert_eq!(replayed, 3);
    assert!(csr_bit_identical(&recovered, &reference_csr(&tail)));
    std::fs::remove_dir_all(&dir).ok();
}

/// The `Cancel` action: an armed token at the rebuild site fires during
/// the fold, degrading any detection that shares the token to a graceful
/// `cancelled` termination — while the fold itself still commits a
/// consistent CSR.
#[test]
fn cancel_at_rebuild_site_degrades_detection_without_corrupting_the_fold() {
    let _serial = serial_guard();
    FaultPlan::clear();
    let token = CancelToken::new();
    FaultPlan::arm("serve/store-rebuild", 1, FaultAction::Cancel(token.clone()));

    let store = GraphStore::new();
    store.insert("g", seed_graph(), None);
    let entry = store.get("g").unwrap();
    let first = batch(0);
    {
        let mut locked = lock_entry(&entry);
        locked.buffer_ops(first.iter().copied());
        assert!(!token.is_cancelled());
        locked.rebuild();
    }
    FaultPlan::clear();
    assert!(
        token.is_cancelled(),
        "crossing the site must fire the token"
    );

    // The fold committed a consistent CSR despite the cancellation.
    let (csr, _, _) = lock_entry(&entry).current();
    assert!(csr_bit_identical(&csr, &reference_csr(&[first])));

    // A detection holding the fired token degrades gracefully instead of
    // running: 200 with an explicit `cancelled` termination.
    let (status, body) =
        parcom_serve::handlers::detect(&store, br#"{"graph":"g","spec":"plm:seed=1"}"#, token);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(
        v.get("termination").and_then(Value::as_str),
        Some("cancelled"),
        "{body}"
    );
}
