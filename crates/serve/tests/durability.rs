//! Tier-1 durability integration test — no fault-injection features
//! required. Exercises the durable daemon lifecycle end-to-end over a
//! Unix socket: readiness probes, WAL-before-ack acknowledgements, the
//! explicit checkpoint endpoint, bounded-queue overload shedding, and a
//! warm restart against the same state directory that must answer a
//! deterministic detection identically to the pre-restart daemon.

#![cfg(unix)]

mod util;

use parcom_obs::json::Value;
use parcom_serve::store::MAX_PENDING_OPS;
use parcom_serve::{ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::time::Duration;
use util::{get_bool, get_u64, wait_ready, Client};

/// Boots an in-process daemon on `socket`, optionally durable.
fn boot(socket: &Path, state_dir: Option<&Path>) -> Client {
    let server = Server::bind(ServeConfig {
        socket: Some(socket.to_path_buf()),
        state_dir: state_dir.map(Path::to_path_buf),
        ..ServeConfig::default()
    })
    .unwrap();
    std::thread::spawn(move || server.run());
    wait_ready(socket, Duration::from_secs(10))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parcom_durab_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn durable_lifecycle_probes_shedding_and_warm_restart() {
    let dir = scratch("lifecycle");
    let state_dir = dir.join("state");
    let mut client = boot(&dir.join("a.sock"), Some(&state_dir));

    // Probes: alive, ready, durable.
    let (status, v) = client.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(get_bool(&v, "ready") && get_bool(&v, "durable"));
    assert!(!get_bool(&v, "draining"));
    let (status, v) = client.request("GET", "/readyz", "");
    assert_eq!(status, 200);
    assert!(get_bool(&v, "ready"));

    // Loading a graph persists its first checkpoint + empty log.
    let (g, _) = parcom_generators::ring_of_cliques(4, 5);
    let (status, v) = client.request("PUT", "/graphs/ring", &util::metis_body(&g));
    assert_eq!(status, 201, "{v:?}");
    assert!(get_bool(&v, "durable"));
    let paths = parcom_io::state_paths(&state_dir, "ring");
    assert!(paths.pcg.exists() && paths.wal.exists());

    // A batch is WAL-appended before it is acknowledged: the ack carries
    // the record's sequence number.
    let (status, v) = client.request(
        "POST",
        "/graphs/ring/edges",
        "{\"insert\":[[0,7,2.5],[3,12,1.5]]}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_u64(&v, "accepted"), 2);
    assert_eq!(get_u64(&v, "seq"), 1);
    assert!(get_bool(&v, "durable"));
    assert!(!get_bool(&v, "checkpointed"));

    // Overload shedding: one batch that would overflow the bounded
    // mutation queue is refused with 429 (Retry-After asserted by the
    // client) and leaves no trace — the sequence number does not move.
    let rows: Vec<String> = (0..=MAX_PENDING_OPS)
        .map(|i| format!("[{},{}]", i % 50, 50 + i % 50))
        .collect();
    let huge = format!("{{\"insert\":[{}]}}", rows.join(","));
    let (status, v) = client.request("POST", "/graphs/ring/edges", &huge);
    assert_eq!(status, 429, "{v:?}");
    let (status, v) = client.request("GET", "/graphs", "");
    assert_eq!(status, 200);
    let listed = v.get("graphs").and_then(Value::as_array).unwrap();
    assert_eq!(get_u64(&listed[0], "seq"), 1);
    assert!(get_bool(&listed[0], "durable"));

    // Explicit checkpoint: folds the pending tail and rotates the log.
    let (status, v) = client.request("POST", "/graphs/ring/checkpoint", "");
    assert_eq!(status, 200, "{v:?}");
    assert!(get_bool(&v, "checkpointed"));
    assert_eq!(get_u64(&v, "seq"), 1);
    let (status, _) = client.request("POST", "/graphs/nope/checkpoint", "");
    assert_eq!(status, 404);

    // Deterministic detection answer before the restart.
    let detect_body =
        "{\"graph\":\"ring\",\"spec\":\"plm:move=coloring,seed=1\",\"include_partition\":true}";
    let (status, before) = client.request("POST", "/detect", detect_body);
    assert_eq!(status, 200, "{before:?}");

    // Warm restart: a second daemon over the same state directory
    // recovers the graph and answers bit-identically. (The first daemon
    // stays idle; recovery only reads its files.)
    let mut client2 = boot(&dir.join("b.sock"), Some(&state_dir));
    let (status, v) = client2.request("GET", "/graphs", "");
    assert_eq!(status, 200);
    let listed = v.get("graphs").and_then(Value::as_array).unwrap();
    assert_eq!(listed.len(), 1, "{v:?}");
    assert_eq!(get_u64(&listed[0], "seq"), 1);
    let (status, after) = client2.request("POST", "/detect", detect_body);
    assert_eq!(status, 200, "{after:?}");
    for key in ["nodes", "edges", "communities"] {
        assert_eq!(get_u64(&before, key), get_u64(&after, key), "{key}");
    }
    assert_eq!(
        before.get("partition").and_then(Value::as_array),
        after.get("partition").and_then(Value::as_array)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn volatile_daemon_reports_not_durable_and_refuses_checkpoints() {
    let dir = scratch("volatile");
    let mut client = boot(&dir.join("v.sock"), None);
    let (status, v) = client.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(!get_bool(&v, "durable"));

    let (g, _) = parcom_generators::ring_of_cliques(2, 4);
    let (status, v) = client.request("PUT", "/graphs/tiny", &util::metis_body(&g));
    assert_eq!(status, 201);
    assert!(!get_bool(&v, "durable"));
    let (status, v) = client.request("POST", "/graphs/tiny/checkpoint", "");
    assert_eq!(status, 409, "{v:?}");
    std::fs::remove_dir_all(&dir).ok();
}
