//! End-to-end daemon test over a Unix domain socket: boot the server, load
//! an inline METIS graph, detect, exhaust a deadline, mutate edges, and
//! detect again on the rebuilt CSR — all through the HTTP API with a
//! hand-rolled client on one keep-alive connection.

#![cfg(unix)]

use parcom_obs::json::{self, Value};
use parcom_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// A minimal HTTP/1.1 client over one keep-alive connection, understanding
/// both Content-Length and chunked framing.
struct Client {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(socket: &PathBuf) -> Self {
        let mut last_err = None;
        for _ in 0..100 {
            match UnixStream::connect(socket) {
                Ok(stream) => {
                    return Self {
                        stream,
                        buf: Vec::new(),
                    }
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        }
        panic!("daemon never came up: {last_err:?}");
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Value) {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: parcom\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        self.stream.flush().unwrap();
        self.read_response()
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed mid-response");
        self.buf.extend_from_slice(&chunk[..n]);
    }

    fn take(&mut self, n: usize) -> Vec<u8> {
        while self.buf.len() < n {
            self.fill();
        }
        self.buf.drain(..n).collect()
    }

    fn take_line(&mut self) -> String {
        loop {
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let line = String::from_utf8(self.buf.drain(..pos + 2).collect()).unwrap();
                return line.trim_end().to_string();
            }
            self.fill();
        }
    }

    fn read_response(&mut self) -> (u16, Value) {
        let status_line = self.take_line();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
        let mut content_length = None;
        let mut chunked = false;
        loop {
            let line = self.take_line();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').unwrap();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => content_length = Some(value.trim().parse::<usize>().unwrap()),
                "transfer-encoding" => chunked = value.trim().eq_ignore_ascii_case("chunked"),
                _ => {}
            }
        }
        let body = if chunked {
            let mut body = Vec::new();
            loop {
                let size_line = self.take_line();
                let size = usize::from_str_radix(&size_line, 16).unwrap();
                if size == 0 {
                    assert_eq!(self.take_line(), "");
                    break;
                }
                body.extend(self.take(size));
                assert_eq!(self.take_line(), "");
            }
            body
        } else {
            self.take(content_length.expect("response without framing"))
        };
        let text = String::from_utf8(body).unwrap();
        let value = json::parse(&text).unwrap_or_else(|e| panic!("bad body `{text}`: {e}"));
        (status, value)
    }
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing numeric `{key}`"))
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}`"))
}

#[test]
fn full_lifecycle_over_unix_socket() {
    let dir = std::env::temp_dir().join(format!("parcom_serve_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("daemon.sock");
    let server = Server::bind(ServeConfig {
        socket: Some(socket.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    std::thread::spawn(move || server.run());
    let mut client = Client::connect(&socket);

    // liveness
    let (status, v) = client.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(get_str(&v, "status"), "ok");
    assert_eq!(get_u64(&v, "graphs"), 0);

    // load an inline METIS graph: 4 cliques of 5 in a ring
    let (g, _) = parcom_generators::ring_of_cliques(4, 5);
    let mut metis = Vec::new();
    parcom_io::write_metis_to(&g, &mut metis).unwrap();
    let mut body = String::from("{\"content\":");
    json::write_str(&mut body, std::str::from_utf8(&metis).unwrap());
    body.push('}');
    let (status, v) = client.request("PUT", "/graphs/ring", &body);
    assert_eq!(status, 201, "{v:?}");
    assert_eq!(get_u64(&v, "nodes"), 20);
    assert_eq!(get_u64(&v, "edges"), g.edge_count() as u64);

    // a clean detection recovers the 4 cliques and embeds a v2 run report
    let (status, v) = client.request(
        "POST",
        "/detect",
        "{\"graph\":\"ring\",\"spec\":\"plm:seed=3\",\"include_partition\":true}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_str(&v, "schema"), "parcom-serve-detect/v1");
    assert_eq!(get_str(&v, "termination"), "converged");
    assert_eq!(get_u64(&v, "communities"), 4);
    assert_eq!(get_u64(&v, "generation"), 0);
    let report = v.get("report").expect("embedded report");
    assert_eq!(get_str(report, "schema"), "parcom-run-report/v2");
    assert_eq!(get_str(report, "algorithm"), "PLM");
    let partition = v.get("partition").and_then(Value::as_array).unwrap();
    assert_eq!(partition.len(), 20);

    // an already-expired deadline terminates with "deadline" but still
    // returns a valid (degraded) result
    let (status, v) = client.request(
        "POST",
        "/detect",
        "{\"graph\":\"ring\",\"spec\":\"plm\",\"budget\":{\"timeout_ms\":0}}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_str(&v, "termination"), "deadline");

    // spec errors surface with the registry enumerated
    let (status, v) = client.request("POST", "/detect", "{\"graph\":\"ring\",\"spec\":\"florp\"}");
    assert_eq!(status, 422);
    assert!(get_str(&v, "error").contains("plmr"), "{v:?}");

    // merge cliques 0 and 1 by inserting the missing pairs, forcing a
    // rebuild; the next detection sees 3 communities at generation 1
    let mut inserts = Vec::new();
    for u in 0..5u32 {
        for w in 5..10u32 {
            inserts.push(format!("[{u},{w}]"));
        }
    }
    let body = format!("{{\"insert\":[{}],\"rebuild\":true}}", inserts.join(","));
    let (status, v) = client.request("POST", "/graphs/ring/edges", &body);
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_str(&v, "schema"), "parcom-serve/v1");
    assert_eq!(get_u64(&v, "generation"), 1);
    assert_eq!(v.get("rebuilt").and_then(Value::as_bool), Some(true));
    assert_eq!(get_u64(&v, "pending"), 0);

    let (status, v) = client.request(
        "POST",
        "/detect",
        "{\"graph\":\"ring\",\"spec\":{\"algo\":\"plm\",\"seed\":3}}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_u64(&v, "communities"), 3);
    assert_eq!(get_u64(&v, "generation"), 1);

    // listing reflects the rebuilt graph; eviction empties the store
    let (status, v) = client.request("GET", "/graphs", "");
    assert_eq!(status, 200);
    let graphs = v.get("graphs").and_then(Value::as_array).unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(get_str(&graphs[0], "name"), "ring");
    assert_eq!(get_u64(&graphs[0], "rebuilds"), 1);

    let (status, _) = client.request("DELETE", "/graphs/ring", "");
    assert_eq!(status, 200);
    let (status, v) = client.request("POST", "/detect", "{\"graph\":\"ring\",\"spec\":\"plp\"}");
    assert_eq!(status, 404, "{v:?}");

    std::fs::remove_dir_all(&dir).ok();
}
