//! End-to-end daemon test over a Unix domain socket: boot the server, load
//! an inline METIS graph, detect, exhaust a deadline, mutate edges, and
//! detect again on the rebuilt CSR — all through the HTTP API with a
//! hand-rolled client on one keep-alive connection.

#![cfg(unix)]

mod util;

use parcom_obs::json::{self, Value};
use parcom_serve::{ServeConfig, Server};
use util::{get_str, get_u64, Client};

#[test]
fn full_lifecycle_over_unix_socket() {
    let dir = std::env::temp_dir().join(format!("parcom_serve_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("daemon.sock");
    let server = Server::bind(ServeConfig {
        socket: Some(socket.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    std::thread::spawn(move || server.run());
    let mut client = Client::connect(&socket);

    // liveness
    let (status, v) = client.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(get_str(&v, "status"), "ok");
    assert_eq!(get_u64(&v, "graphs"), 0);

    // load an inline METIS graph: 4 cliques of 5 in a ring
    let (g, _) = parcom_generators::ring_of_cliques(4, 5);
    let mut metis = Vec::new();
    parcom_io::write_metis_to(&g, &mut metis).unwrap();
    let mut body = String::from("{\"content\":");
    json::write_str(&mut body, std::str::from_utf8(&metis).unwrap());
    body.push('}');
    let (status, v) = client.request("PUT", "/graphs/ring", &body);
    assert_eq!(status, 201, "{v:?}");
    assert_eq!(get_u64(&v, "nodes"), 20);
    assert_eq!(get_u64(&v, "edges"), g.edge_count() as u64);

    // a clean detection recovers the 4 cliques and embeds a v2 run report
    let (status, v) = client.request(
        "POST",
        "/detect",
        "{\"graph\":\"ring\",\"spec\":\"plm:seed=3\",\"include_partition\":true}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_str(&v, "schema"), "parcom-serve-detect/v1");
    assert_eq!(get_str(&v, "termination"), "converged");
    assert_eq!(get_u64(&v, "communities"), 4);
    assert_eq!(get_u64(&v, "generation"), 0);
    let report = v.get("report").expect("embedded report");
    assert_eq!(get_str(report, "schema"), "parcom-run-report/v2");
    assert_eq!(get_str(report, "algorithm"), "PLM");
    let partition = v.get("partition").and_then(Value::as_array).unwrap();
    assert_eq!(partition.len(), 20);

    // an already-expired deadline terminates with "deadline" but still
    // returns a valid (degraded) result
    let (status, v) = client.request(
        "POST",
        "/detect",
        "{\"graph\":\"ring\",\"spec\":\"plm\",\"budget\":{\"timeout_ms\":0}}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_str(&v, "termination"), "deadline");

    // spec errors surface with the registry enumerated
    let (status, v) = client.request("POST", "/detect", "{\"graph\":\"ring\",\"spec\":\"florp\"}");
    assert_eq!(status, 422);
    assert!(get_str(&v, "error").contains("plmr"), "{v:?}");

    // merge cliques 0 and 1 by inserting the missing pairs, forcing a
    // rebuild; the next detection sees 3 communities at generation 1
    let mut inserts = Vec::new();
    for u in 0..5u32 {
        for w in 5..10u32 {
            inserts.push(format!("[{u},{w}]"));
        }
    }
    let body = format!("{{\"insert\":[{}],\"rebuild\":true}}", inserts.join(","));
    let (status, v) = client.request("POST", "/graphs/ring/edges", &body);
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_str(&v, "schema"), "parcom-serve/v1");
    assert_eq!(get_u64(&v, "generation"), 1);
    assert_eq!(v.get("rebuilt").and_then(Value::as_bool), Some(true));
    assert_eq!(get_u64(&v, "pending"), 0);

    let (status, v) = client.request(
        "POST",
        "/detect",
        "{\"graph\":\"ring\",\"spec\":{\"algo\":\"plm\",\"seed\":3}}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(get_u64(&v, "communities"), 3);
    assert_eq!(get_u64(&v, "generation"), 1);

    // listing reflects the rebuilt graph; eviction empties the store
    let (status, v) = client.request("GET", "/graphs", "");
    assert_eq!(status, 200);
    let graphs = v.get("graphs").and_then(Value::as_array).unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(get_str(&graphs[0], "name"), "ring");
    assert_eq!(get_u64(&graphs[0], "rebuilds"), 1);

    let (status, _) = client.request("DELETE", "/graphs/ring", "");
    assert_eq!(status, 200);
    let (status, v) = client.request("POST", "/detect", "{\"graph\":\"ring\",\"spec\":\"plp\"}");
    assert_eq!(status, 404, "{v:?}");

    std::fs::remove_dir_all(&dir).ok();
}
