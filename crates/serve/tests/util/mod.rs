//! Shared test harness bits: a minimal HTTP/1.1 client over a Unix
//! socket (Content-Length and chunked framing), JSON accessors, and
//! daemon-readiness polling. Used by every integration test and by the
//! crash-recovery kill matrix, where requests must be *fallible* — the
//! server is expected to die mid-exchange.

#![allow(dead_code)]

use parcom_obs::json::{self, Value};
use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// A minimal HTTP/1.1 client over one keep-alive connection.
pub struct Client {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects, retrying while the daemon boots.
    pub fn connect(socket: &Path) -> Self {
        Self::try_connect(socket, 100).expect("daemon never came up")
    }

    /// Connects with a bounded retry count.
    pub fn try_connect(socket: &Path, attempts: u32) -> io::Result<Self> {
        let mut last_err = None;
        for _ in 0..attempts {
            match UnixStream::connect(socket) {
                Ok(stream) => {
                    return Ok(Self {
                        stream,
                        buf: Vec::new(),
                    })
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no attempts")))
    }

    /// One request/response exchange; panics on transport failure.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Value) {
        self.try_request(method, path, body)
            .unwrap_or_else(|e| panic!("{method} {path} failed: {e}"))
    }

    /// One request/response exchange, surfacing transport failures — the
    /// kill matrix sends requests that are *expected* to die mid-flight.
    pub fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, Value)> {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: parcom\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.stream.flush()?;
        self.read_response()
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn take(&mut self, n: usize) -> io::Result<Vec<u8>> {
        while self.buf.len() < n {
            self.fill()?;
        }
        Ok(self.buf.drain(..n).collect())
    }

    fn take_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let line = String::from_utf8(self.buf.drain(..pos + 2).collect())
                    .map_err(|_| io::Error::other("non-UTF-8 header line"))?;
                return Ok(line.trim_end().to_string());
            }
            self.fill()?;
        }
    }

    fn read_response(&mut self) -> io::Result<(u16, Value)> {
        let status_line = self.take_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::other(format!("bad status line `{status_line}`")))?;
        let mut content_length = None;
        let mut chunked = false;
        let mut retry_after = false;
        loop {
            let line = self.take_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| io::Error::other(format!("bad header `{line}`")))?;
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = Some(value.trim().parse::<usize>().map_err(io::Error::other)?)
                }
                "transfer-encoding" => chunked = value.trim().eq_ignore_ascii_case("chunked"),
                "retry-after" => retry_after = true,
                _ => {}
            }
        }
        // Every shed response must tell clients when to come back.
        if matches!(status, 429 | 503) {
            assert!(retry_after, "{status} response without Retry-After");
        }
        let body = if chunked {
            let mut body = Vec::new();
            loop {
                let size_line = self.take_line()?;
                let size = usize::from_str_radix(&size_line, 16).map_err(io::Error::other)?;
                if size == 0 {
                    self.take_line()?;
                    break;
                }
                body.extend(self.take(size)?);
                self.take_line()?;
            }
            body
        } else {
            let n = content_length.ok_or_else(|| io::Error::other("response without framing"))?;
            self.take(n)?
        };
        let text = String::from_utf8(body).map_err(|_| io::Error::other("non-UTF-8 body"))?;
        let value =
            json::parse(&text).map_err(|e| io::Error::other(format!("bad body `{text}`: {e}")))?;
        Ok((status, value))
    }
}

/// Numeric field accessor that panics with the key name.
pub fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing numeric `{key}` in {v:?}"))
}

/// String field accessor that panics with the key name.
pub fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}` in {v:?}"))
}

/// Boolean field accessor that panics with the key name.
pub fn get_bool(v: &Value, key: &str) -> bool {
    v.get(key)
        .and_then(Value::as_bool)
        .unwrap_or_else(|| panic!("missing boolean `{key}` in {v:?}"))
}

/// Polls `GET /readyz` until it answers `200` (recovery finished) or the
/// deadline passes. Reconnects between attempts so a daemon that boots
/// slowly (or restarts) is tolerated.
pub fn wait_ready(socket: &Path, deadline: Duration) -> Client {
    let end = std::time::Instant::now() + deadline;
    loop {
        if let Ok(mut client) = Client::try_connect(socket, 1) {
            if let Ok((status, _)) = client.try_request("GET", "/readyz", "") {
                if status == 200 {
                    return client;
                }
            }
        }
        assert!(
            std::time::Instant::now() < end,
            "daemon at {} never became ready",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Serializes a graph as an inline-METIS `PUT /graphs/{name}` body.
pub fn metis_body(g: &parcom_graph::Graph) -> String {
    let mut metis = Vec::new();
    parcom_io::write_metis_to(g, &mut metis).unwrap();
    let mut body = String::from("{\"content\":");
    json::write_str(&mut body, std::str::from_utf8(&metis).unwrap());
    body.push('}');
    body
}
