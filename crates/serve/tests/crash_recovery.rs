//! Process-level crash-recovery kill matrix.
//!
//! Each case spawns the `crash_harness` binary — a real durable daemon
//! whose panic hook is `process::abort()` — arms one durability fault
//! site at a seeded crossing, drives it over HTTP until the process dies
//! mid-operation, then restarts a clean daemon against the same state
//! directory and asserts the recovered CSR is **bit-identical** to a
//! synchronous in-process reference built from the acknowledged history.
//!
//! The matrix covers, per ISSUE durability contract:
//!
//! * `kill -9` between batches (baseline: everything acknowledged
//!   survives, detection answers are identical across the crash);
//! * `serve/wal-append` — torn final record: the interrupted batch was
//!   never acknowledged and is discarded on replay;
//! * `serve/store-rebuild` — crash after the WAL append but before the
//!   fold: the batch is unacknowledged yet durable, and recovery keeps it
//!   (the documented acked+1 case);
//! * `serve/checkpoint-write` — crash during checkpoint staging: the
//!   previous era stays live and nothing acknowledged is lost;
//! * corrupt current checkpoint — recovery falls back to `pcg.prev` and
//!   replays the full log chain.
//!
//! Run with `cargo test -p parcom-serve --features fault-inject`.

#![cfg(all(unix, feature = "fault-inject"))]

mod util;

use parcom_graph::Graph;
use parcom_guard::fault::FaultPlan;
use parcom_guard::Budget;
use parcom_obs::json::Value;
use parcom_obs::Recorder;
use parcom_serve::persist::csr_bit_identical;
use parcom_serve::store::{EdgeOp, GraphEntry};
use parcom_serve::wal;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use util::{get_bool, get_u64, wait_ready, Client};

const READY_DEADLINE: Duration = Duration::from_secs(20);

/// One spawned crash-harness daemon; killed on drop so a failing test
/// never leaks a process.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(state_dir: &Path, socket: &Path, fault: Option<&str>) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_harness"));
        cmd.env("PARCOM_HARNESS_SOCKET", socket)
            .env("PARCOM_HARNESS_STATE_DIR", state_dir)
            .env("PARCOM_HARNESS_FSYNC", "always")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        match fault {
            Some(spec) => cmd.env("PARCOM_FAULT", spec),
            None => cmd.env_remove("PARCOM_FAULT"),
        };
        let child = cmd.spawn().expect("spawn crash_harness");
        Self {
            child,
            socket: socket.to_path_buf(),
        }
    }

    fn wait_ready(&self) -> Client {
        wait_ready(&self.socket, READY_DEADLINE)
    }

    /// SIGKILL — `Child::kill` is an unblockable kill on Unix.
    fn kill9(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }

    /// Waits for the daemon to die on its own (an armed fault aborted it).
    fn wait_dead(&mut self) {
        let status = self.child.wait().expect("wait on crash_harness");
        assert!(
            !status.success(),
            "harness should die by abort, got {status}"
        );
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// Per-case scratch directory (state dir + socket), clean at entry.
fn scratch(name: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("parcom_crash_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    (dir.join("state"), dir.join("daemon.sock"))
}

fn seed_graph() -> Graph {
    parcom_generators::ring_of_cliques(4, 5).0
}

/// Batch `i` as both the HTTP body sent to the daemon and the in-process
/// ops for the reference — the same edits through both paths.
fn batch(i: u64) -> (String, Vec<EdgeOp>) {
    let u = (i % 5) as u32;
    let v = 5 + ((u64::from(u) + i) % 15) as u32;
    let w1 = 1.0 + i as f64;
    let w2 = 2.0 + i as f64;
    let (u2, v2) = (u + 15, (i % 10) as u32);
    let body = format!("{{\"insert\":[[{u},{v},{w1}],[{u2},{v2},{w2}]]}}");
    let ops = vec![EdgeOp::Insert(u, v, w1), EdgeOp::Insert(u2, v2, w2)];
    (body, ops)
}

/// The synchronous reference: the seed graph loaded through the same
/// METIS round-trip the daemon uses, with `batches` applied and folded.
fn reference_csr(batches: &[Vec<EdgeOp>]) -> Graph {
    let mut metis = Vec::new();
    parcom_io::write_metis_to(&seed_graph(), &mut metis).unwrap();
    let g = parcom_io::read_metis_bytes_budgeted(&metis, &Budget::unlimited()).unwrap();
    let mut entry = GraphEntry::new(g, None);
    for ops in batches {
        entry.buffer_ops(ops.iter().copied());
    }
    entry.rebuild();
    let (csr, _, _) = entry.current();
    Graph::clone(&csr)
}

/// Boots a recovery daemon on `socket`, asserts `/readyz` turns green,
/// checkpoints the recovered graph (folding any replayed tail), and reads
/// the resulting `.pcg` back for bit-exact comparison. Returns the CSR
/// and the recovered sequence number.
fn recover_and_read(state_dir: &Path, socket: &Path) -> (Graph, u64) {
    let daemon = Daemon::spawn(state_dir, socket, None);
    let mut client = daemon.wait_ready();
    let (status, v) = client.request("GET", "/graphs", "");
    assert_eq!(status, 200);
    let rows = v.get("graphs").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), 1, "{v:?}");
    let seq = get_u64(&rows[0], "seq");
    assert!(get_bool(&rows[0], "durable"));
    let (status, v) = client.request("POST", "/graphs/ring/checkpoint", "");
    assert_eq!(status, 200, "{v:?}");
    drop(daemon);
    let snapshot = parcom_io::read_pcg_budgeted(
        parcom_io::state_paths(state_dir, "ring").pcg,
        &Recorder::enabled(),
        &Budget::unlimited(),
    )
    .unwrap();
    (snapshot.graph, seq)
}

/// Load the seed graph into a freshly spawned daemon.
fn put_ring(client: &mut Client) {
    let body = util::metis_body(&seed_graph());
    let (status, v) = client.request("PUT", "/graphs/ring", &body);
    assert_eq!(status, 201, "{v:?}");
    assert!(get_bool(&v, "durable"), "{v:?}");
}

/// Baseline: `kill -9` between acknowledged batches. Everything acked
/// must survive, and a deterministic detection must give the exact same
/// answer before and after the crash.
#[test]
fn kill9_between_batches_preserves_every_acked_record_and_detections() {
    let (state_dir, socket) = scratch("kill9");
    let mut daemon = Daemon::spawn(&state_dir, &socket, None);
    let mut client = daemon.wait_ready();
    put_ring(&mut client);

    let mut acked = Vec::new();
    for i in 0..3u64 {
        let (body, ops) = batch(i);
        let (status, v) = client.request("POST", "/graphs/ring/edges", &body);
        assert_eq!(status, 200, "{v:?}");
        assert_eq!(get_u64(&v, "seq"), i + 1);
        assert!(get_bool(&v, "durable"));
        acked.push(ops);
    }
    // Fold via a checkpoint, then capture a deterministic detection
    // answer pre-crash.
    let (status, _) = client.request("POST", "/graphs/ring/checkpoint", "");
    assert_eq!(status, 200);
    let detect_body =
        "{\"graph\":\"ring\",\"spec\":\"plm:move=coloring,seed=1\",\"include_partition\":true}";
    let (status, before) = client.request("POST", "/detect", detect_body);
    assert_eq!(status, 200, "{before:?}");

    daemon.kill9();

    // Restart against the same state dir: ready, same seq, same answer.
    let daemon = Daemon::spawn(&state_dir, &socket, None);
    let mut client = daemon.wait_ready();
    let (status, v) = client.request("GET", "/graphs", "");
    assert_eq!(status, 200);
    let rows = v.get("graphs").and_then(Value::as_array).unwrap();
    assert_eq!(get_u64(&rows[0], "seq"), 3);
    let (status, after) = client.request("POST", "/detect", detect_body);
    assert_eq!(status, 200, "{after:?}");
    for key in ["nodes", "edges", "communities"] {
        assert_eq!(get_u64(&before, key), get_u64(&after, key), "{key}");
    }
    assert_eq!(
        before.get("partition").and_then(Value::as_array),
        after.get("partition").and_then(Value::as_array),
        "partition must be bit-identical across the crash"
    );
    drop(daemon);

    let (recovered, _) = recover_and_read(&state_dir, &socket);
    assert!(csr_bit_identical(&recovered, &reference_csr(&acked)));
}

/// Torn final record, seeded: the daemon aborts between a WAL record's
/// head and payload on the `k`-th append. The interrupted batch was never
/// acknowledged; recovery must discard the torn tail and reproduce
/// exactly the acknowledged prefix.
#[test]
fn wal_append_kill_matrix_recovers_exactly_the_acked_prefix() {
    for seed in [1u64, 2, 3] {
        let total = 4u64;
        let k = FaultPlan::derive_k(seed, "serve/wal-append", total);
        let (state_dir, socket) = scratch(&format!("append_{seed}"));
        let mut daemon = Daemon::spawn(&state_dir, &socket, Some(&format!("serve/wal-append:{k}")));
        let mut client = daemon.wait_ready();
        put_ring(&mut client);

        let mut acked = Vec::new();
        for i in 0..total {
            let (body, ops) = batch(i);
            match client.try_request("POST", "/graphs/ring/edges", &body) {
                Ok((200, _)) => acked.push(ops),
                Ok((status, v)) => panic!("seed {seed} batch {i}: unexpected {status} {v:?}"),
                Err(_) => {
                    // The daemon aborted mid-append, exactly at the armed
                    // crossing; nothing after it can be delivered.
                    assert_eq!(i + 1, k, "seed {seed}: died at the wrong batch");
                    break;
                }
            }
        }
        daemon.wait_dead();
        assert_eq!(acked.len() as u64, k - 1, "seed {seed}");

        // On disk right now: an intact prefix and a genuinely torn tail.
        let replay = wal::replay(&parcom_io::state_paths(&state_dir, "ring").wal).unwrap();
        assert!(replay.torn, "seed {seed}: tail should be torn");
        assert_eq!(replay.records.len() as u64, k - 1, "seed {seed}");

        let (recovered, seq) = recover_and_read(&state_dir, &socket);
        assert_eq!(seq, k - 1, "seed {seed}");
        assert!(
            csr_bit_identical(&recovered, &reference_csr(&acked)),
            "seed {seed}: recovery must equal the acked history"
        );
    }
}

/// Crash between the WAL append and the fold: the batch that triggered
/// the armed rebuild is durable but unacknowledged. Recovery keeps it —
/// the documented "acked + 1 in-flight" outcome — and the result equals
/// the synchronous reference over all durable records.
#[test]
fn store_rebuild_kill_keeps_the_durable_but_unacked_batch() {
    for seed in [5u64, 6] {
        // Vary how many batches precede the fatal forced-rebuild one.
        let quiet = 1 + FaultPlan::derive_k(seed, "serve/store-rebuild", 3);
        let (state_dir, socket) = scratch(&format!("rebuild_{seed}"));
        let mut daemon = Daemon::spawn(&state_dir, &socket, Some("serve/store-rebuild:1"));
        let mut client = daemon.wait_ready();
        put_ring(&mut client);

        let mut durable = Vec::new();
        for i in 0..quiet {
            let (body, ops) = batch(i);
            let (status, v) = client.request("POST", "/graphs/ring/edges", &body);
            assert_eq!(status, 200, "{v:?}");
            durable.push(ops);
        }
        // The fatal batch forces a rebuild: its WAL record lands (the
        // append precedes the fold), then the armed fold aborts the
        // process before the 200 can be written.
        let (body, ops) = batch(quiet);
        let fatal = format!("{{\"rebuild\":true,{}", &body[1..]);
        assert!(
            client
                .try_request("POST", "/graphs/ring/edges", &fatal)
                .is_err(),
            "seed {seed}: the forced-rebuild batch should kill the daemon"
        );
        durable.push(ops);
        daemon.wait_dead();

        // The log is intact (not torn): the crash hit after the append.
        let replay = wal::replay(&parcom_io::state_paths(&state_dir, "ring").wal).unwrap();
        assert!(!replay.torn, "seed {seed}");
        assert_eq!(replay.records.len() as u64, quiet + 1, "seed {seed}");

        let (recovered, seq) = recover_and_read(&state_dir, &socket);
        assert_eq!(seq, quiet + 1, "seed {seed}");
        assert!(
            csr_bit_identical(&recovered, &reference_csr(&durable)),
            "seed {seed}: durable history must survive a mid-fold crash"
        );
    }
}

/// Crash during checkpoint staging: the `.tmp` files are written but no
/// rename has happened. The previous era must stay live — every
/// acknowledged batch survives via the old checkpoint + old log.
#[test]
fn checkpoint_write_kill_leaves_the_previous_era_authoritative() {
    for seed in [11u64, 12] {
        let batches = 1 + FaultPlan::derive_k(seed, "serve/checkpoint-write", 3);
        let (state_dir, socket) = scratch(&format!("ckpt_{seed}"));
        let mut daemon = Daemon::spawn(&state_dir, &socket, Some("serve/checkpoint-write:1"));
        let mut client = daemon.wait_ready();
        put_ring(&mut client);

        let mut acked = Vec::new();
        for i in 0..batches {
            let (body, ops) = batch(i);
            let (status, v) = client.request("POST", "/graphs/ring/edges", &body);
            assert_eq!(status, 200, "{v:?}");
            acked.push(ops);
        }
        assert!(
            client
                .try_request("POST", "/graphs/ring/checkpoint", "")
                .is_err(),
            "seed {seed}: the armed checkpoint should kill the daemon"
        );
        daemon.wait_dead();

        // Staging artifacts exist; the old era files are untouched.
        let paths = parcom_io::state_paths(&state_dir, "ring");
        assert!(
            paths.pcg_tmp.exists() || paths.wal_tmp.exists(),
            "seed {seed}"
        );

        let (recovered, seq) = recover_and_read(&state_dir, &socket);
        assert_eq!(seq, batches, "seed {seed}");
        assert!(
            csr_bit_identical(&recovered, &reference_csr(&acked)),
            "seed {seed}: no acked record may be lost to a checkpoint crash"
        );
    }
}

/// Corrupt current checkpoint: flip one byte in `ring.pcg` while the
/// daemon is down. Recovery must fall back to the previous-generation
/// checkpoint and replay the full log chain to the identical state.
#[test]
fn corrupt_checkpoint_falls_back_to_previous_generation_end_to_end() {
    let (state_dir, socket) = scratch("corrupt");
    let mut daemon = Daemon::spawn(&state_dir, &socket, None);
    let mut client = daemon.wait_ready();
    put_ring(&mut client);

    // Two batches, a checkpoint (rotating both generations), two more.
    let mut acked = Vec::new();
    for i in 0..2u64 {
        let (body, ops) = batch(i);
        let (status, _) = client.request("POST", "/graphs/ring/edges", &body);
        assert_eq!(status, 200);
        acked.push(ops);
    }
    let (status, _) = client.request("POST", "/graphs/ring/checkpoint", "");
    assert_eq!(status, 200);
    for i in 2..4u64 {
        let (body, ops) = batch(i);
        let (status, _) = client.request("POST", "/graphs/ring/edges", &body);
        assert_eq!(status, 200);
        acked.push(ops);
    }
    daemon.kill9();

    // Damage the current checkpoint body.
    let paths = parcom_io::state_paths(&state_dir, "ring");
    let mut bytes = std::fs::read(&paths.pcg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&paths.pcg, &bytes).unwrap();

    let (recovered, seq) = recover_and_read(&state_dir, &socket);
    assert_eq!(seq, 4);
    assert!(
        csr_bit_identical(&recovered, &reference_csr(&acked)),
        "fallback recovery must replay the full chain over pcg.prev"
    );
}
