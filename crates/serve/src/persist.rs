//! The durability layer: `.pcg` checkpoints + WAL rotation + boot-time
//! recovery over a state directory (DESIGN.md §16).
//!
//! Two checkpoint generations are retained per graph. A checkpoint era is
//! installed by a six-step rotation whose every crash window recovers:
//!
//! 1. fold the pending buffer (`rebuild`), giving the state at WAL seq `S`
//! 2. stage `<name>.pcg.tmp` — a binfmt snapshot whose `wal-seq` section
//!    records `S`
//! 3. stage `<name>.wal.tmp` — a fresh, empty log with base sequence `S`
//! 4. rename `pcg → pcg.prev` and `wal → wal.prev`
//! 5. rename `pcg.tmp → pcg` and `wal.tmp → wal`
//! 6. fsync the directory
//!
//! Recovery reads `pcg` (falling back to `pcg.prev` if it is missing or
//! fails its checksums) and replays the `[wal.prev, wal]` chain filtered
//! to records with sequence **greater than** the checkpoint's embedded
//! `wal-seq`, requiring contiguity — so whichever side of each rename the
//! crash landed on, exactly the acknowledged suffix is reapplied. Because
//! the CSR builder is bit-deterministic for a given edge multiset, the
//! recovered graph is bit-identical to one that applied every batch
//! synchronously.

use crate::store::{lock_entry, GraphEntry, GraphStore};
use crate::wal::{self, FsyncPolicy, WalWriter};
use parcom_graph::Graph;
use parcom_guard::Budget;
use parcom_io::binfmt::{pcg_bytes_with_wal_seq, read_pcg_budgeted};
use parcom_io::corpus::{fsync_dir, scan_corpus, state_paths, write_atomic, StatePaths};
use parcom_obs::Recorder;
use std::io;
use std::path::{Path, PathBuf};

/// Fold-count between automatic checkpoints: once a graph has accumulated
/// this many operations since its last checkpoint, the next edge batch
/// triggers one. A multiple of [`crate::store::REBUILD_BATCH`] so the
/// checkpoint usually rides on an already-due rebuild.
pub const CHECKPOINT_OPS: usize = 8 * crate::store::REBUILD_BATCH;

/// Handle on a state directory: owns naming, checkpoint rotation, and
/// recovery. Cheap to share (`Arc`); all per-graph mutual exclusion comes
/// from the entry locks of the store.
pub struct Durability {
    dir: PathBuf,
    policy: FsyncPolicy,
}

/// What boot-time recovery found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Graphs restored into the store.
    pub graphs: usize,
    /// WAL records replayed across all graphs.
    pub records_replayed: usize,
    /// Graphs whose current-era log ended in a torn record (the crash
    /// interrupted an append that was never acknowledged).
    pub torn_tails: usize,
    /// Graphs restored from `pcg.prev` because `pcg` was missing or
    /// corrupt.
    pub fallbacks: usize,
    /// Graphs whose state was reopened in place (clean log, no new
    /// checkpoint era written) — the warm-restart fast path.
    pub warm: usize,
    /// Graphs that could not be restored (both checkpoint generations
    /// unreadable); their files are left untouched for inspection.
    pub unrecovered: Vec<String>,
}

impl Durability {
    /// Opens (creating if needed) a state directory.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            policy,
        })
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy WALs are written under.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    fn paths(&self, name: &str) -> StatePaths {
        state_paths(&self.dir, name)
    }

    /// Persists a freshly loaded graph *before* it becomes visible in the
    /// store: any previous state set of the name is deleted, a checkpoint
    /// is written, and a fresh WAL is created and attached to the entry.
    /// The replace is not atomic — a crash inside it can lose the name
    /// entirely (the client never got its `2xx`) but can never mix old and
    /// new state, because the old set is fully removed first.
    pub fn persist_new(&self, name: &str, entry: &mut GraphEntry) -> io::Result<()> {
        let paths = self.paths(name);
        for path in paths.all() {
            remove_if_exists(path)?;
        }
        let (graph, relabeling, _) = entry.current();
        let bytes = pcg_bytes_with_wal_seq(&graph, relabeling.as_deref(), Some(entry.seq()))
            .map_err(io_err)?;
        write_atomic(&paths.pcg_tmp, &paths.pcg, &bytes, true)?;
        let wal = WalWriter::create(&paths.wal, entry.seq(), self.policy)?;
        fsync_dir(&self.dir)?;
        entry.attach_wal(wal);
        Ok(())
    }

    /// Installs a new checkpoint era for `entry` (the rotation in the
    /// module docs). On error or unwind the entry keeps its previous WAL
    /// and stays fully consistent — the fold performed by the embedded
    /// `rebuild` is covered by the old log, so nothing acknowledged is
    /// lost; the checkpoint is simply retried later.
    pub fn checkpoint(&self, name: &str, entry: &mut GraphEntry) -> io::Result<()> {
        entry.rebuild();
        let seq = entry.seq();
        let paths = self.paths(name);
        let (graph, relabeling, _) = entry.current();
        let bytes =
            pcg_bytes_with_wal_seq(&graph, relabeling.as_deref(), Some(seq)).map_err(io_err)?;
        stage(&paths.pcg_tmp, &bytes)?;
        let wal = WalWriter::create(&paths.wal_tmp, seq, self.policy)?;
        parcom_guard::faultpoint!("serve/checkpoint-write");
        rename_if_exists(&paths.pcg, &paths.pcg_prev)?;
        rename_if_exists(&paths.wal, &paths.wal_prev)?;
        std::fs::rename(&paths.pcg_tmp, &paths.pcg)?;
        std::fs::rename(&paths.wal_tmp, &paths.wal)?;
        fsync_dir(&self.dir)?;
        // The writer's fd follows the rename: it now appends to `.wal`.
        entry.attach_wal(wal);
        Ok(())
    }

    /// Deletes every state file of `name` (the eviction path).
    pub fn remove(&self, name: &str) -> io::Result<()> {
        for path in self.paths(name).all() {
            remove_if_exists(path)?;
        }
        fsync_dir(&self.dir)
    }

    /// Scans the state directory and restores every recoverable graph
    /// into `store`. Individually damaged graphs are skipped (listed in
    /// [`RecoveryReport::unrecovered`]) rather than failing the boot.
    pub fn recover(&self, store: &GraphStore) -> Result<RecoveryReport, String> {
        let mut report = RecoveryReport::default();
        let entries = scan_corpus(&self.dir).map_err(|e| e.to_string())?;
        for corpus_entry in entries {
            match self.recover_one(&corpus_entry.name, &corpus_entry.paths, &mut report) {
                Ok(entry) => {
                    store.insert_entry(&corpus_entry.name, entry);
                    report.graphs += 1;
                }
                Err(message) => {
                    eprintln!(
                        "parcom-serve: recovery skipped `{}`: {message}",
                        corpus_entry.name
                    );
                    report.unrecovered.push(corpus_entry.name);
                }
            }
        }
        Ok(report)
    }

    fn recover_one(
        &self,
        name: &str,
        paths: &StatePaths,
        report: &mut RecoveryReport,
    ) -> Result<GraphEntry, String> {
        // Recovery admits whatever the checkpoint holds: resident graphs
        // may legitimately have grown past the ingest limits via
        // acknowledged mutations.
        let budget = Budget::unlimited();
        let recorder = Recorder::disabled();
        let (snapshot, fallback) = match read_pcg_budgeted(&paths.pcg, &recorder, &budget) {
            Ok(snapshot) => (snapshot, false),
            Err(primary) => match read_pcg_budgeted(&paths.pcg_prev, &recorder, &budget) {
                Ok(snapshot) => (snapshot, true),
                Err(secondary) => {
                    return Err(format!(
                        "checkpoint unreadable ({primary}) and fallback unreadable ({secondary})"
                    ));
                }
            },
        };
        if fallback {
            report.fallbacks += 1;
        }
        let base = snapshot.wal_seq.unwrap_or(0);
        let mut entry = GraphEntry::new(snapshot.graph, snapshot.relabeling);
        entry.set_seq(base);

        // Replay the log chain, keeping only records past the checkpoint
        // and requiring contiguous sequences. `wal.prev` usually holds
        // nothing newer (its era ended at the checkpoint) but after a
        // mid-rotation crash it can carry the whole acknowledged tail.
        let mut last = base;
        let mut current_torn = false;
        let mut current_clean_end = None;
        for (is_current, path) in [(false, &paths.wal_prev), (true, &paths.wal)] {
            if !path.exists() {
                continue;
            }
            match wal::replay(path) {
                Ok(replayed) => {
                    for (seq, ops) in replayed.records {
                        if seq == last + 1 {
                            entry.buffer_ops(ops);
                            last = seq;
                            report.records_replayed += 1;
                        }
                        // seq <= last: already covered by the checkpoint
                        // or the previous file; a gap beyond last+1 cannot
                        // arise from contiguous per-file sequences.
                    }
                    if is_current {
                        current_torn = replayed.torn;
                        if !replayed.torn && replayed.base_seq <= last {
                            current_clean_end = Some(last);
                        }
                    }
                }
                Err(e) => {
                    if is_current {
                        current_torn = true;
                        eprintln!("parcom-serve: `{name}` log unreadable, re-checkpointing: {e}");
                    }
                }
            }
        }
        entry.set_seq(last);
        if current_torn {
            report.torn_tails += 1;
        }

        match current_clean_end {
            Some(end) if !fallback => {
                // Warm path: the current log is intact and continues the
                // checkpoint on disk — reopen it and keep appending.
                // Replayed ops stay buffered; the next rebuild folds them.
                let wal = WalWriter::append_to(&paths.wal, end, self.policy)
                    .map_err(|e| e.to_string())?;
                entry.attach_wal(wal);
                report.warm += 1;
            }
            _ => {
                // Dirty path (torn tail, fallback restore, or missing
                // log): fold everything and install a fresh era, which
                // also rotates the damaged log out of the way.
                self.checkpoint(name, &mut entry)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(entry)
    }

    /// Flushes and checkpoints every resident graph — the graceful
    /// shutdown path. Returns the number of graphs checkpointed.
    pub fn checkpoint_all(&self, store: &GraphStore) -> usize {
        let mut done = 0;
        for (name, _) in store.list() {
            let Some(entry) = store.get(&name) else {
                continue;
            };
            let mut entry = lock_entry(&entry);
            if let Err(e) = entry.sync_wal() {
                eprintln!("parcom-serve: `{name}` WAL flush failed at shutdown: {e}");
            }
            if entry.ops_since_checkpoint() > 0 {
                match self.checkpoint(&name, &mut entry) {
                    Ok(()) => done += 1,
                    Err(e) => {
                        eprintln!("parcom-serve: `{name}` checkpoint failed at shutdown: {e}")
                    }
                }
            }
        }
        done
    }
}

/// Stages checkpoint bytes at `tmp`, always fsynced: checkpoints are rare
/// and a checkpoint that may vanish in a power cut is worthless, whatever
/// the per-record WAL policy says.
fn stage(tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = std::fs::File::create(tmp)?;
    io::Write::write_all(&mut file, bytes)?;
    file.sync_data()
}

fn remove_if_exists(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

fn rename_if_exists(from: &Path, to: &Path) -> io::Result<()> {
    match std::fs::rename(from, to) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

fn io_err(e: parcom_io::IoError) -> io::Error {
    io::Error::other(e.to_string())
}

/// A reference graph check used by tests and the recovery docs: whether
/// two graphs are bit-identical as CSRs (offsets, targets, weight bits).
pub fn csr_bit_identical(a: &Graph, b: &Graph) -> bool {
    let (av, bv) = (a.csr_view(), b.csr_view());
    av.offsets == bv.offsets
        && av.targets == bv.targets
        && av.weights.len() == bv.weights.len()
        && av
            .weights
            .iter()
            .zip(bv.weights.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EdgeOp;
    use parcom_graph::GraphBuilder;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parcom-persist-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_graph() -> Graph {
        GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
    }

    #[test]
    fn persist_commit_restart_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        let durability = Durability::open(&dir, FsyncPolicy::Never).unwrap();
        let mut entry = GraphEntry::new(seed_graph(), None);
        durability.persist_new("g", &mut entry).unwrap();
        entry
            .commit_ops(vec![EdgeOp::Insert(0, 3, 2.0), EdgeOp::Remove(1, 2)])
            .unwrap();
        entry.commit_ops(vec![EdgeOp::Insert(2, 5, 0.5)]).unwrap();
        // Reference: the same ops applied synchronously.
        let mut reference = GraphEntry::new(seed_graph(), None);
        reference.buffer_ops([
            EdgeOp::Insert(0, 3, 2.0),
            EdgeOp::Remove(1, 2),
            EdgeOp::Insert(2, 5, 0.5),
        ]);
        reference.rebuild();
        // Simulated crash: drop the entry (WAL already has both records).
        drop(entry);
        let store = GraphStore::new();
        let report = durability.recover(&store).unwrap();
        assert_eq!(report.graphs, 1);
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.warm, 1, "intact log reopens in place");
        assert!(report.unrecovered.is_empty());
        let (recovered, _, _) = store.snapshot("g").unwrap();
        let (expected, _, _) = reference.current();
        assert!(csr_bit_identical(&recovered, &expected));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_and_truncates_the_log() {
        let dir = temp_dir("rotate");
        let durability = Durability::open(&dir, FsyncPolicy::Never).unwrap();
        let mut entry = GraphEntry::new(seed_graph(), None);
        durability.persist_new("g", &mut entry).unwrap();
        entry.commit_ops(vec![EdgeOp::Insert(0, 2, 1.0)]).unwrap();
        durability.checkpoint("g", &mut entry).unwrap();
        let paths = state_paths(&dir, "g");
        assert!(paths.pcg.exists() && paths.pcg_prev.exists());
        assert!(paths.wal.exists() && paths.wal_prev.exists());
        let fresh = wal::replay(&paths.wal).unwrap();
        assert_eq!(fresh.base_seq, 1, "new era starts at the checkpoint seq");
        assert!(fresh.records.is_empty(), "log truncated by rotation");
        // The attached writer appends to the *renamed* current log.
        entry.commit_ops(vec![EdgeOp::Insert(1, 3, 1.0)]).unwrap();
        assert_eq!(wal::replay(&paths.wal).unwrap().records.len(), 1);
        // Restart picks up checkpoint@1 + one record.
        let store = GraphStore::new();
        let report = durability.recover(&store).unwrap();
        assert_eq!(report.records_replayed, 1);
        let stats = lock_entry(&store.get("g").unwrap()).stats();
        assert_eq!(stats.seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_previous_generation() {
        let dir = temp_dir("fallback");
        let durability = Durability::open(&dir, FsyncPolicy::Never).unwrap();
        let mut entry = GraphEntry::new(seed_graph(), None);
        durability.persist_new("g", &mut entry).unwrap();
        entry.commit_ops(vec![EdgeOp::Insert(0, 2, 1.0)]).unwrap();
        durability.checkpoint("g", &mut entry).unwrap();
        entry.commit_ops(vec![EdgeOp::Insert(1, 4, 1.0)]).unwrap();
        let mut reference = GraphEntry::new(seed_graph(), None);
        reference.buffer_ops([EdgeOp::Insert(0, 2, 1.0), EdgeOp::Insert(1, 4, 1.0)]);
        reference.rebuild();
        drop(entry);
        // Flip a byte in the current checkpoint's body.
        let paths = state_paths(&dir, "g");
        let mut bytes = std::fs::read(&paths.pcg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&paths.pcg, &bytes).unwrap();
        let store = GraphStore::new();
        let report = durability.recover(&store).unwrap();
        assert_eq!(report.graphs, 1);
        assert_eq!(report.fallbacks, 1);
        // prev checkpoint is seq 0; both acknowledged records replay.
        assert_eq!(report.records_replayed, 2);
        let (recovered, _, _) = store.snapshot("g").unwrap();
        let (expected, _, _) = reference.current();
        assert!(csr_bit_identical(&recovered, &expected));
        // The dirty path re-checkpointed: a fresh intact era is on disk.
        let fresh = wal::replay(&paths.wal).unwrap();
        assert_eq!(fresh.base_seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_deletes_the_whole_state_set() {
        let dir = temp_dir("remove");
        let durability = Durability::open(&dir, FsyncPolicy::Never).unwrap();
        let mut entry = GraphEntry::new(seed_graph(), None);
        durability.persist_new("g", &mut entry).unwrap();
        durability.checkpoint("g", &mut entry).unwrap();
        durability.remove("g").unwrap();
        assert!(scan_corpus(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
