//! The admission gate: bounded concurrency and lifecycle state for the
//! daemon (DESIGN.md §16).
//!
//! Three independent concerns share one small struct because the request
//! path consults them together, in order:
//!
//! 1. **Readiness** — until crash recovery has finished replaying the
//!    state directory, every route except `GET /healthz` answers `503`
//!    with `Retry-After`. `GET /readyz` flips to `200` the moment the
//!    store reflects all acknowledged pre-crash state.
//! 2. **Draining** — after SIGTERM the daemon stops admitting new
//!    requests (`503`) while in-flight ones run to completion, then
//!    flushes WALs and checkpoints before exiting.
//! 3. **Detect admission** — at most `max_detects` detections run
//!    concurrently; excess requests are shed with `429` instead of piling
//!    threads onto an already-saturated machine. (The other half of
//!    overload shedding — the per-graph mutation queue depth — lives in
//!    [`crate::store::MAX_PENDING_OPS`].)
//!
//! Counters are plain atomics with RAII permits; a permit dropped on a
//! panicking thread still decrements, so a crashed request can never leak
//! a slot.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared admission state. Constructed not-ready; recovery (or the
/// absence of a state dir) calls [`Gate::set_ready`].
pub struct Gate {
    ready: AtomicBool,
    draining: AtomicBool,
    inflight: AtomicUsize,
    detects: AtomicUsize,
    max_detects: usize,
}

impl Gate {
    /// A gate admitting at most `max_detects` concurrent detections
    /// (`0` = unlimited).
    pub fn new(max_detects: usize) -> Self {
        Self {
            ready: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            detects: AtomicUsize::new(0),
            max_detects,
        }
    }

    /// Marks recovery complete: `/readyz` turns `200` and requests are
    /// admitted. Release pairs with the Acquire in [`Gate::is_ready`] so a
    /// request thread that observes readiness also observes every store
    /// insert recovery performed.
    pub fn set_ready(&self) {
        self.ready.store(true, Ordering::Release); // audit:allow(atomic-ordering)
    }

    /// Whether recovery has completed.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) // audit:allow(atomic-ordering)
    }

    /// Enters drain mode: new requests are refused, in-flight ones keep
    /// running. One-way; there is no undrain.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::Release); // audit:allow(atomic-ordering)
    }

    /// Whether the daemon is draining for shutdown.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire) // audit:allow(atomic-ordering)
    }

    /// Requests currently being served (health probes excluded).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire) // audit:allow(atomic-ordering)
    }

    /// Configured detect-concurrency cap (`0` = unlimited).
    pub fn max_detects(&self) -> usize {
        self.max_detects
    }

    /// Detections currently running.
    pub fn detects(&self) -> usize {
        self.detects.load(Ordering::Acquire) // audit:allow(atomic-ordering)
    }

    /// Admits one request unless draining. The permit's drop releases the
    /// slot; hold it across the whole handler.
    pub fn enter_request(self: &Arc<Self>) -> Option<RequestPermit> {
        if self.is_draining() {
            return None;
        }
        self.inflight.fetch_add(1, Ordering::AcqRel); // audit:allow(atomic-ordering)
                                                      // A drain that started between the check and the increment still
                                                      // sees this request in `inflight` and waits for it: admission may
                                                      // race the flag, completion accounting never does.
        Some(RequestPermit(Arc::clone(self)))
    }

    /// Admits one detection unless the cap is reached. Compare-and-swap so
    /// concurrent arrivals cannot overshoot the cap.
    pub fn enter_detect(self: &Arc<Self>) -> Option<DetectPermit> {
        if self.max_detects == 0 {
            self.detects.fetch_add(1, Ordering::AcqRel); // audit:allow(atomic-ordering)
            return Some(DetectPermit(Arc::clone(self)));
        }
        let mut current = self.detects.load(Ordering::Acquire); // audit:allow(atomic-ordering)
        loop {
            if current >= self.max_detects {
                return None;
            }
            match self.detects.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,  // audit:allow(atomic-ordering)
                Ordering::Acquire, // audit:allow(atomic-ordering)
            ) {
                Ok(_) => return Some(DetectPermit(Arc::clone(self))),
                Err(seen) => current = seen,
            }
        }
    }
}

/// RAII in-flight marker; dropping it (normally or by unwind) releases
/// the request slot.
pub struct RequestPermit(Arc<Gate>);

impl Drop for RequestPermit {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel); // audit:allow(atomic-ordering)
    }
}

/// RAII detect-concurrency marker.
pub struct DetectPermit(Arc<Gate>);

impl Drop for DetectPermit {
    fn drop(&mut self) {
        self.0.detects.fetch_sub(1, Ordering::AcqRel); // audit:allow(atomic-ordering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_flags_start_cold() {
        let gate = Arc::new(Gate::new(2));
        assert!(!gate.is_ready());
        assert!(!gate.is_draining());
        gate.set_ready();
        assert!(gate.is_ready());
        gate.start_drain();
        assert!(gate.is_draining());
        assert!(gate.enter_request().is_none(), "draining refuses admission");
    }

    #[test]
    fn detect_cap_is_exact_and_released_on_drop() {
        let gate = Arc::new(Gate::new(2));
        let a = gate.enter_detect().unwrap();
        let _b = gate.enter_detect().unwrap();
        assert!(gate.enter_detect().is_none(), "third detect is shed");
        drop(a);
        assert!(gate.enter_detect().is_some(), "slot frees on drop");
    }

    #[test]
    fn request_permits_track_inflight_even_on_unwind() {
        let gate = Arc::new(Gate::new(0));
        let permit = gate.enter_request().unwrap();
        assert_eq!(gate.inflight(), 1);
        let gate2 = Arc::clone(&gate);
        let r = std::panic::catch_unwind(move || {
            let _inner = gate2.enter_request().unwrap();
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(gate.inflight(), 1, "unwound permit released its slot");
        drop(permit);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn zero_cap_means_unlimited_detects() {
        let gate = Arc::new(Gate::new(0));
        let permits: Vec<_> = (0..64).map(|_| gate.enter_detect().unwrap()).collect();
        assert_eq!(gate.detects(), 64);
        drop(permits);
        assert_eq!(gate.detects(), 0);
    }
}
